"""The seven range-skyline query variants of Figure 2.

Every query is an axis-parallel rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``
with some sides grounded at infinity.  A query object knows which points it
contains; the skyline *within* the query is computed by
:func:`repro.core.skyline.range_skyline` or by the I/O structures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.core.point import Point

INF = math.inf


@dataclass(frozen=True)
class RangeQuery:
    """A general (possibly unbounded) axis-parallel query rectangle."""

    x_lo: float = -INF
    x_hi: float = INF
    y_lo: float = -INF
    y_hi: float = INF

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi:
            raise ValueError(f"empty x-range [{self.x_lo}, {self.x_hi}]")
        if self.y_lo > self.y_hi:
            raise ValueError(f"empty y-range [{self.y_lo}, {self.y_hi}]")

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the (closed) rectangle."""
        return (
            self.x_lo <= point.x <= self.x_hi
            and self.y_lo <= point.y <= self.y_hi
        )

    def filter(self, points: Iterable[Point]) -> List[Point]:
        """All points of the iterable inside the rectangle."""
        return [p for p in points if self.contains(p)]

    # ------------------------------------------------------------------
    # Shape predicates used to route queries to specialised structures
    # ------------------------------------------------------------------
    @property
    def is_top_open(self) -> bool:
        """Whether the top edge is grounded (``y_hi = +inf``)."""
        return self.y_hi == INF

    @property
    def is_bottom_open(self) -> bool:
        return self.y_lo == -INF

    @property
    def is_left_open(self) -> bool:
        return self.x_lo == -INF

    @property
    def is_right_open(self) -> bool:
        return self.x_hi == INF

    @property
    def open_side_count(self) -> int:
        """How many of the four sides are at infinity."""
        return sum(
            (
                self.is_top_open,
                self.is_bottom_open,
                self.is_left_open,
                self.is_right_open,
            )
        )

    @property
    def is_four_sided(self) -> bool:
        """Whether all four sides are finite."""
        return self.open_side_count == 0


class TopOpenQuery(RangeQuery):
    """``[x_lo, x_hi] x [y_lo, +inf[`` -- Figure 2a."""

    def __init__(self, x_lo: float, x_hi: float, y_lo: float) -> None:
        super().__init__(x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=INF)


class RightOpenQuery(RangeQuery):
    """``[x_lo, +inf[ x [y_lo, y_hi]`` -- Figure 2b."""

    def __init__(self, x_lo: float, y_lo: float, y_hi: float) -> None:
        super().__init__(x_lo=x_lo, x_hi=INF, y_lo=y_lo, y_hi=y_hi)


class BottomOpenQuery(RangeQuery):
    """``[x_lo, x_hi] x ]-inf, y_hi]`` -- Figure 2c."""

    def __init__(self, x_lo: float, x_hi: float, y_hi: float) -> None:
        super().__init__(x_lo=x_lo, x_hi=x_hi, y_lo=-INF, y_hi=y_hi)


class LeftOpenQuery(RangeQuery):
    """``]-inf, x_hi] x [y_lo, y_hi]`` -- Figure 2d."""

    def __init__(self, x_hi: float, y_lo: float, y_hi: float) -> None:
        super().__init__(x_lo=-INF, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi)


class DominanceQuery(RangeQuery):
    """2-sided with top and right edges grounded -- Figure 2e."""

    def __init__(self, x_lo: float, y_lo: float) -> None:
        super().__init__(x_lo=x_lo, x_hi=INF, y_lo=y_lo, y_hi=INF)


class AntiDominanceQuery(RangeQuery):
    """2-sided with bottom and left edges grounded -- Figure 2f."""

    def __init__(self, x_hi: float, y_hi: float) -> None:
        super().__init__(x_lo=-INF, x_hi=x_hi, y_lo=-INF, y_hi=y_hi)


class ContourQuery(RangeQuery):
    """1-sided half-plane to the left of a vertical line -- Figure 2g."""

    def __init__(self, x_hi: float) -> None:
        super().__init__(x_lo=-INF, x_hi=x_hi, y_lo=-INF, y_hi=INF)


class FourSidedQuery(RangeQuery):
    """A fully bounded rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``."""

    def __init__(self, x_lo: float, x_hi: float, y_lo: float, y_hi: float) -> None:
        super().__init__(x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi)


def classify(query: RangeQuery) -> str:
    """A human-readable label of the query's shape (used in reports)."""
    top, bottom = query.is_top_open, query.is_bottom_open
    left, right = query.is_left_open, query.is_right_open
    open_count = query.open_side_count
    if open_count == 0:
        return "4-sided"
    if open_count == 1:
        if top:
            return "top-open"
        if bottom:
            return "bottom-open"
        if left:
            return "left-open"
        return "right-open"
    if open_count == 2:
        if top and right:
            return "dominance"
        if bottom and left:
            return "anti-dominance"
        if top and bottom:
            return "x-slab"
        if left and right:
            return "y-slab"
        return "2-sided"
    if open_count == 3:
        if not right:
            return "contour"
        return "1-sided"
    return "unbounded"
