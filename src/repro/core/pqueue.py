"""A pooled skip-list priority queue for the merge hot paths.

:class:`SkipListPQ` is a min-ordered priority queue backed by a skip list
whose nodes live in preallocated blocks of parallel arrays -- keys in one
list, heights and forward links in typed ``array`` buffers -- and are
addressed by integer index instead of object reference.  Freed nodes are
chained through their level-0 link slot into a free list, so allocation
after warm-up is O(1) with zero per-node object churn: the pop/push cycle
of a multiway merge reuses the same handful of slots over and over.

Node heights are deterministic: the ``i``-th insertion gets height
``1 + ctz(i)`` (capped), the classic binary-counter profile -- half the
nodes at height 1, a quarter at height 2, and so on.  This matches the
expected geometric distribution of a randomized skip list while keeping
runs byte-for-byte reproducible, which the bench and the hypothesis
equivalence tests rely on.

The minimum is the head's level-0 successor, and -- being first at every
level it occupies -- unlinks by copying its forward links into the head,
so :meth:`~SkipListPQ.pop` costs O(height of the minimum) with no search.

Keys must be totally ordered: callers enqueue ``(priority, tiebreak, ...)``
tuples with a unique counter in the second slot, exactly as the ``heapq``
idiom does, so pop order (tiebreaks included) is identical to a binary
heap's.  :class:`HeapQueue` wraps ``heapq`` behind the same push/pop API;
the hot-path benchmark and the equivalence tests swap it in to compare
the two implementations on identical workloads.

Everything here is in-memory compute; no block transfers are charged on
any path (see DESIGN.md, "Columnar kernels and the charging boundary").
"""

from __future__ import annotations

import heapq
from array import array
from typing import Any, List, Optional

_NIL = -1

#: Fixed per-node link stride.  Height 12 tops out around 2**12 nodes of
#: height one between consecutive top-level towers; beyond that the top
#: level degrades gracefully into a linked list, which the merge fan-ins
#: used here (dozens of runs, not millions) never approach.
MAX_LEVEL = 12

#: Nodes reserved per pool growth step.  One block of 256 nodes is
#: ``256`` key slots plus ``256 * MAX_LEVEL`` links in a typed array.
BLOCK_NODES = 256


class SkipListPQ:
    """Min priority queue over totally ordered keys (see module docstring)."""

    __slots__ = ("_keys", "_heights", "_forward", "_free", "_size", "_seq", "_level")

    def __init__(self) -> None:
        # Node 0 is the head: full height, no key, never compared.
        self._keys: List[Any] = [None]
        self._heights = array("b", [MAX_LEVEL])
        self._forward = array("q", [_NIL] * MAX_LEVEL)
        self._free = _NIL
        self._size = 0
        self._seq = 0
        self._level = 1

    # ------------------------------------------------------------------
    # Node pool
    # ------------------------------------------------------------------
    def _alloc(self) -> int:
        """Take a node off the free list, growing the pool by one block."""
        if self._free == _NIL:
            base = len(self._keys)
            self._keys.extend([None] * BLOCK_NODES)
            self._heights.extend(bytes(BLOCK_NODES))
            self._forward.extend([_NIL] * (BLOCK_NODES * MAX_LEVEL))
            forward = self._forward
            free = self._free
            for idx in range(base + BLOCK_NODES - 1, base - 1, -1):
                forward[idx * MAX_LEVEL] = free
                free = idx
            self._free = free
        idx = self._free
        self._free = self._forward[idx * MAX_LEVEL]
        return idx

    def _release(self, idx: int) -> None:
        """Return a node to the free list (its level-0 slot is the chain)."""
        self._keys[idx] = None
        self._forward[idx * MAX_LEVEL] = self._free
        self._free = idx

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, key: Any) -> None:
        """Insert ``key``; O(log n) comparisons, no allocation after warm-up."""
        self._seq += 1
        seq = self._seq
        height = 1
        while not seq & 1 and height < MAX_LEVEL:
            height += 1
            seq >>= 1
        node = self._alloc()
        keys = self._keys
        forward = self._forward
        keys[node] = key
        self._heights[node] = height
        node_base = node * MAX_LEVEL
        pred = 0
        for level in range(self._level - 1, -1, -1):
            nxt = forward[pred * MAX_LEVEL + level]
            while nxt != _NIL and keys[nxt] < key:
                pred = nxt
                nxt = forward[pred * MAX_LEVEL + level]
            if level < height:
                forward[node_base + level] = nxt
                forward[pred * MAX_LEVEL + level] = node
        if height > self._level:
            for level in range(self._level, height):
                forward[node_base + level] = _NIL
                forward[level] = node
            self._level = height
        self._size += 1

    def pop(self) -> Any:
        """Remove and return the minimum key; O(height of the minimum)."""
        forward = self._forward
        first = forward[0]
        if first == _NIL:
            raise IndexError("pop from an empty SkipListPQ")
        key = self._keys[first]
        base = first * MAX_LEVEL
        # The minimum is the first node at every level it occupies, so its
        # predecessors are all the head: unlink by copying links across.
        for level in range(self._heights[first]):
            forward[level] = forward[base + level]
        self._release(first)
        self._size -= 1
        return key

    def peek(self) -> Optional[Any]:
        """The minimum key without removing it, or ``None`` when empty."""
        first = self._forward[0]
        return None if first == _NIL else self._keys[first]

    def clear(self) -> None:
        """Empty the queue, returning every live node to the pool."""
        while self._size:
            self.pop()
        self._level = 1

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def capacity(self) -> int:
        """Pooled node slots (head excluded) -- growth happens in blocks."""
        return len(self._keys) - 1


class HeapQueue:
    """``heapq`` behind the :class:`SkipListPQ` API, for benches and tests."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Any] = []

    def push(self, key: Any) -> None:
        heapq.heappush(self._heap, key)

    def pop(self) -> Any:
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Any]:
        return self._heap[0] if self._heap else None

    def clear(self) -> None:
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
