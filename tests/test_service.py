"""Tests for the sharded skyline service (repro.service).

The acceptance property is *shard-count invariance*: whatever the shard
count, with or without a pending delta, before and after compaction, the
service answers exactly like the naive scan baseline
(:class:`repro.baselines.naive.NaiveScanSkyline`).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FourSidedQuery,
    Point,
    RangeQuery,
    RangeSkylineIndex,
    RightOpenQuery,
    TopOpenQuery,
)
from repro.baselines.naive import NaiveScanSkyline
from repro.core.skyline import range_skyline
from repro.em import EMConfig, StorageManager
from repro.service import (
    DeltaBuffer,
    ResultCache,
    ServiceConfig,
    ShardRouter,
    SkylineService,
    merge_shard_skylines,
    size_balanced_cuts,
)
from repro.workloads import (
    anticorrelated_points,
    clustered_points,
    correlated_points,
    grid_permutation_points,
    uniform_points,
)

DISTRIBUTIONS = {
    "uniform": uniform_points,
    "correlated": correlated_points,
    "anticorrelated": anticorrelated_points,
    "clustered": clustered_points,
    "grid": grid_permutation_points,
}


def canon(points):
    return sorted((p.x, p.y) for p in points)


def random_queries(points, count, rng):
    """A mix of top-open, right-open and 4-sided rectangles over the data."""
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    queries = []
    for _ in range(count):
        a, b = sorted(rng.uniform(x_lo, x_hi) for _ in range(2))
        c, d = sorted(rng.uniform(y_lo, y_hi) for _ in range(2))
        queries.append(TopOpenQuery(a, b, c))
        queries.append(RightOpenQuery(a, c, d))
        queries.append(FourSidedQuery(a, b, c, d))
    return queries


def naive_answers(points, queries):
    baseline = NaiveScanSkyline(
        StorageManager(EMConfig(block_size=16, memory_blocks=16)), points
    )
    return [canon(baseline.query(query)) for query in queries]


# ----------------------------------------------------------------------
# Acceptance: shard-count invariance at n ~ 5k, through updates + compact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shard_count", [1, 4, 16])
def test_shard_count_invariance_5k(shard_count):
    rng = random.Random(shard_count)
    points = uniform_points(5_000, universe=1_000_000, seed=11)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=32,
            memory_blocks=16,
            delta_threshold=10_000,  # compaction is triggered explicitly below
        ),
    )
    live = list(points)
    queries = random_queries(points, 4, rng)

    # Static phase: fresh service vs the naive scan baseline.
    expected = naive_answers(live, queries)
    got = service.query_many(queries)
    assert [canon(r) for r in got] == expected

    # Interleaved updates: inserts at off-grid coordinates (the original
    # points have integer x), deletes of both static and pending points.
    fresh = [
        Point(p.x + 0.5, p.y + 0.25, ident=100_000 + i)
        for i, p in enumerate(uniform_points(250, universe=1_000_000, seed=97))
    ]
    for index, point in enumerate(fresh):
        service.insert(point)
        live.append(point)
        if index % 2 == 0:
            victim = live.pop(rng.randrange(len(live)))
            assert service.delete(victim)
    assert len(service) == len(live)

    # With the delta pending.
    expected = naive_answers(live, queries)
    got = service.query_many(queries)
    assert [canon(r) for r in got] == expected

    # After compaction the same answers come from rebuilt static shards.
    service.compact()
    assert len(service.delta) == 0
    got = service.query_many(queries)
    assert [canon(r) for r in got] == expected
    assert canon(service.skyline()) == canon(range_skyline(live, RangeQuery()))


# ----------------------------------------------------------------------
# Property test: every distribution, random shard counts, with delta
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    distribution=st.sampled_from(sorted(DISTRIBUTIONS)),
    shard_count=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**20),
    with_delta=st.booleans(),
)
def test_service_matches_naive_baseline(distribution, shard_count, seed, with_delta):
    rng = random.Random(seed)
    points = DISTRIBUTIONS[distribution](150, seed=seed)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=16,
            memory_blocks=8,
            delta_threshold=10_000,
        ),
    )
    live = list(points)
    if with_delta:
        for i in range(12):
            base = live[rng.randrange(len(live))]
            point = Point(base.x + 0.25 + i * 1e-6, base.y + 0.25 + i * 1e-6, 10_000 + i)
            service.insert(point)
            live.append(point)
        for _ in range(6):
            victim = live.pop(rng.randrange(len(live)))
            assert service.delete(victim)
    queries = random_queries(points, 3, rng)
    expected = naive_answers(live, queries)
    got = service.query_many(queries)
    assert [canon(r) for r in got] == expected


# ----------------------------------------------------------------------
# Component behaviour
# ----------------------------------------------------------------------
def test_router_prunes_and_routes():
    points = [Point(float(i), float(i % 7) + i * 1e-3, i) for i in range(40)]
    cuts = size_balanced_cuts(points, 4)
    router = ShardRouter(cuts)
    assert router.shard_count == 4
    for point in points:
        sid = router.route_point(point.x)
        lo, hi = router.shard_range(sid)
        assert lo <= point.x < hi
    # A query inside one shard's range touches exactly that shard.
    sid = router.route_point(points[5].x)
    lo, hi = router.shard_range(sid)
    probe = TopOpenQuery(points[5].x, min(hi - 1e-9, points[5].x + 0.1), 0.0)
    assert router.shards_for(probe) == [sid]
    # An unbounded query touches every shard.
    assert router.shards_for(RangeQuery()) == [0, 1, 2, 3]


def test_merge_shard_skylines_running_max():
    left = [Point(0, 9), Point(1, 5)]
    middle = [Point(4, 6), Point(5, 2)]
    right = [Point(8, 5), Point(9, 1)]
    merged = merge_shard_skylines([left, middle, right])
    # (1,5) is dominated by (4,6); (5,2) by (8,5); (0,9) and the whole
    # right shard survive.
    assert canon(merged) == [(0.0, 9.0), (4.0, 6.0), (8.0, 5.0), (9.0, 1.0)]
    assert merge_shard_skylines([[], [], []]) == []


def test_result_cache_epochs_and_writes():
    points = uniform_points(300, seed=3)
    service = SkylineService(points, shard_count=3, delta_threshold=10_000)
    query = TopOpenQuery(points[10].x, points[10].x + 50_000, points[10].y - 1)
    first = service.query(query)
    assert service.cache.hits == 0
    again = service.query(query)
    assert again == first
    assert service.cache.hits == 1
    # A write inside the query's rectangle bumps the write version of a
    # visited shard: the old entry is unreachable.
    service.insert(Point(points[10].x + 0.5, points[10].y + 0.5, 999))
    hits_before = service.cache.hits
    service.query(query)
    assert service.cache.hits == hits_before
    # Compaction empties the cache outright.
    service.compact()
    assert len(service.cache) == 0
    # LRU eviction respects capacity.
    cache = ResultCache(capacity=2)
    cache.put(("a",), [Point(1, 1)])
    cache.put(("b",), [Point(2, 2)])
    cache.put(("c",), [Point(3, 3)])
    assert len(cache) == 2
    assert cache.get(("a",)) is None


def test_result_cache_invalidation_scoped_per_shard():
    """Satellite regression: cache keys embed per-shard write versions, so
    an update routed into one shard's x-range keeps cached answers whose
    rectangles live entirely in *other* shards' ranges valid -- before the
    fix any write bumped a global version and evicted everything."""
    points = uniform_points(400, universe=1_000_000, seed=19)
    service = SkylineService(points, shard_count=4, delta_threshold=10_000)
    # Warm a query confined to shard 0's range.
    lo0, hi0 = service.router.shard_range(0)
    probe0 = TopOpenQuery(max(lo0, 0.0), hi0 - 1e-6, 0.0)
    assert service.router.shards_for(probe0) == [0]
    first = service.query(probe0)
    hits_before = service.cache.hits
    # An insert routed to the last shard must not evict it...
    lo3, _ = service.router.shard_range(3)
    service.insert(Point(lo3 + 0.5, 2_000_000.5, 9_000))
    again = service.query(probe0)
    assert service.cache.hits == hits_before + 1
    assert canon(again) == canon(first)
    # ...and a delete there must not either.
    victim = next(p for p in points if p.x >= lo3)
    assert service.delete(victim)
    service.query(probe0)
    assert service.cache.hits == hits_before + 2
    # A write into shard 0's own range does invalidate the cached answer.
    service.insert(Point(probe0.x_lo + 0.25, 3_000_000.5, 9_001))
    fresh = service.query(probe0)
    assert service.cache.hits == hits_before + 2  # miss: recomputed
    assert canon(fresh) == canon(
        range_skyline(service.live_points(), probe0)
    )


def test_disabled_cache_counts_misses_and_reports_disabled_state():
    """Satellite regression: a disabled cache (capacity <= 0) used to
    count neither hits nor misses, so `describe()["cache_hit_rate"]`
    reported 0.0 as if it were measuring real traffic.  Disabled lookups
    now count as misses and the state is surfaced explicitly."""
    cache = ResultCache(capacity=0)
    assert not cache.enabled
    assert cache.get(("k",)) is None
    cache.put(("k",), [Point(1, 1)])
    assert cache.get(("k",)) is None
    assert cache.misses == 2 and cache.hits == 0
    assert cache.describe()["state"] == "disabled"
    assert cache.hit_rate() == 0.0
    # Through the service: queries on a cache-disabled service count as
    # real misses, so the reported rate measures actual traffic.
    points = uniform_points(100, seed=23)
    service = SkylineService(points, shard_count=2, cache_capacity=0)
    service.query(TopOpenQuery(0.0, 500_000.0, 0.0))
    service.query(TopOpenQuery(0.0, 500_000.0, 0.0))
    status = service.describe()
    assert status["result_cache"]["state"] == "disabled"
    assert status["result_cache"]["misses"] == 2
    assert status["cache_hit_rate"] == 0.0
    # An enabled cache reports its state too.
    assert ResultCache(capacity=4).describe()["state"] == "enabled"


def test_cache_hit_rate_before_any_lookup_is_pinned_zero():
    """Satellite: 0/0 is pinned to exactly 0.0, not incidental."""
    cache = ResultCache(capacity=8)
    assert cache.hit_rate() == 0.0
    assert cache.describe()["hit_rate"] == 0.0
    points = uniform_points(50, seed=24)
    service = SkylineService(points, shard_count=2)
    assert service.describe()["cache_hit_rate"] == 0.0
    disabled = ResultCache(capacity=0)
    assert disabled.hit_rate() == 0.0


def test_batch_coalesces_duplicates_and_parallel_matches():
    points = uniform_points(400, seed=5)
    queries = random_queries(points, 3, random.Random(1)) * 2  # duplicates
    serial = SkylineService(points, shard_count=4)
    threaded = SkylineService(points, shard_count=4, parallelism=4)
    expected = naive_answers(points, queries)
    assert [canon(r) for r in serial.query_many(queries, use_cache=False)] == expected
    assert [canon(r) for r in threaded.query_many(queries)] == expected


def test_parallel_and_serial_charge_identical_io():
    """Satellite regression: per-shard ledgers make fan-out accounting exact.

    Before the fix, ``parallelism > 1`` raced one shared ``IOStats`` and
    dropped increments; now each shard machine charges its own ledger and
    the totals must be bit-identical to a serial run of the same batch --
    including the tombstone-fallback charges that deletes trigger.
    """
    points = uniform_points(1_200, universe=1_000_000, seed=21)
    queries = random_queries(points, 8, random.Random(13))

    def run(parallelism):
        service = SkylineService(
            points,
            ServiceConfig(
                shard_count=8,
                block_size=16,
                memory_blocks=8,
                parallelism=parallelism,
                delta_threshold=10_000,
            ),
        )
        # Deletes in several shards exercise the recompute fallback path.
        for victim in points[::200]:
            assert service.delete(victim)
        before = service.snapshot()
        service.query_many(queries, use_cache=False)
        after = service.snapshot()
        return after - before

    serial, threaded = run(1), run(4)
    assert (serial.reads, serial.writes) == (threaded.reads, threaded.writes)
    assert serial.total > 0


def test_tombstone_fallback_charges_io():
    """Satellite regression: recomputing a shard skyline from resident
    points is charged as ceil(resident / B) block reads, so delete-heavy
    workloads cannot flatter the sharded service."""
    points = uniform_points(600, universe=1_000_000, seed=8)
    service = SkylineService(
        points,
        ServiceConfig(shard_count=3, block_size=16, memory_blocks=8,
                      delta_threshold=10_000, cache_capacity=0),
    )
    victim = max(points, key=lambda p: p.y)  # on every full skyline
    probe = RangeQuery()
    service.query(probe)  # warm the static path
    assert service.delete(victim)
    sid = service.router.route_point(victim.x)
    resident = len(service.shards[sid].points)
    before = service.snapshot()
    service.query(probe)
    charged = service.snapshot() - before
    # The fallback shard alone must charge at least its scan cost.
    assert charged.reads >= -(-resident // service.config.block_size)
    assert service.io_total() == service.stats.total


def test_io_totals_monotone_across_compaction():
    """Retired ledgers keep io_total() monotone when shards are rebuilt."""
    points = uniform_points(300, seed=17)
    service = SkylineService(points, shard_count=3, delta_threshold=10_000)
    service.query_many(random_queries(points, 3, random.Random(0)))
    before = service.io_total()
    service.compact()
    assert service.io_total() > before  # rebuild I/O added, nothing lost


def test_delta_buffer_semantics():
    delta = DeltaBuffer()
    p = Point(1.0, 2.0, 7)
    delta.insert(p)
    assert len(delta) == 1
    # Deleting a pending insert cancels it.
    assert delta.remove_insert(Point(1.0, 2.0, 7))
    assert len(delta) == 0
    # Tombstone + re-insert of the same point revives it.
    delta.add_tombstone(p)
    assert delta.is_deleted(p)
    delta.insert(p)
    assert not delta.is_deleted(p)
    assert len(delta) == 0
    # Tombstones only affect queries whose rectangle contains them.
    delta.add_tombstone(Point(5.0, 5.0, 1))
    assert delta.tombstone_hits(FourSidedQuery(0, 10, 0, 10), 0.0, 10.0)
    assert not delta.tombstone_hits(FourSidedQuery(0, 10, 6, 10), 0.0, 10.0)
    assert not delta.tombstone_hits(FourSidedQuery(0, 10, 0, 10), 6.0, 10.0)


def test_tombstone_buckets_by_shard_and_revive():
    """Satellite regression: tombstones are bucketed by owning shard id so
    a batch of Q queries over S shards no longer sweeps every tombstone
    Q*S times; buckets survive every mutation path, including revival."""
    delta = DeltaBuffer()
    a, b = Point(1.0, 1.0, 1), Point(9.0, 9.0, 2)
    delta.add_tombstone(a, sid=0)
    delta.add_tombstone(b, sid=1)
    assert canon(delta.shard_tombstones(0)) == [(1.0, 1.0)]
    assert canon(delta.shard_tombstones(1)) == [(9.0, 9.0)]
    # A probe with a shard id only sees its own bucket.
    everywhere = FourSidedQuery(0, 10, 0, 10)
    assert delta.tombstone_hits(everywhere, 0.0, 10.0, sid=0)
    assert delta.tombstone_hits(everywhere, 0.0, 10.0, sid=1)
    assert not delta.tombstone_hits(FourSidedQuery(0, 5, 0, 5), 0.0, 10.0, sid=1)
    # Revival: re-inserting a tombstoned point empties its bucket entry.
    delta.insert(a)
    assert not delta.is_deleted(a)
    assert delta.shard_tombstones(0) == []
    assert delta.tombstone_hits(everywhere, 0.0, 10.0, sid=1)
    assert not delta.tombstone_hits(everywhere, 0.0, 10.0, sid=0)
    # Unknown-owner tombstones land in a catch-all every shard checks.
    delta.add_tombstone(Point(5.0, 5.0, 3))
    assert delta.tombstone_hits(everywhere, 0.0, 10.0, sid=0)
    assert canon(delta.shard_tombstones(None)) == [(5.0, 5.0)]
    # Re-tombstoning under a different owner moves the bucket entry.
    delta.add_tombstone(Point(5.0, 5.0, 3), sid=2)
    assert delta.shard_tombstones(None) == []
    assert canon(delta.shard_tombstones(2)) == [(5.0, 5.0)]
    # clear() empties buckets along with the tables.
    delta.clear()
    assert delta.shard_tombstones(1) == [] and delta.shard_tombstones(2) == []
    assert not delta.tombstone_hits(everywhere, 0.0, 10.0, sid=1)


def test_service_buckets_tombstones_under_owning_shard():
    points = uniform_points(400, universe=1_000_000, seed=31)
    service = SkylineService(points, shard_count=4, delta_threshold=10_000)
    victims = [points[50], points[170], points[333]]
    for victim in victims:
        assert service.delete(victim)
    for victim in victims:
        owner = service.shards[service.router.route_point(victim.x)].owner
        assert (victim.x, victim.y) in {
            (t.x, t.y) for t in service.delta.shard_tombstones(owner)
        }
    assert service.delta.shard_tombstones(None) == []
    # Queries still see exactly the naive answers through the buckets.
    queries = random_queries(points, 3, random.Random(2))
    live = [p for p in points if not service.delta.is_deleted(p)]
    assert [canon(r) for r in service.query_many(queries)] == naive_answers(
        live, queries
    )


def test_auto_compaction_threshold_legacy_path():
    """The legacy threshold-compact path still triggers a stop-the-world
    rebuild when the flat delta fills."""
    points = uniform_points(200, seed=9)
    service = SkylineService(
        points, shard_count=2, delta_threshold=8, auto_compact=True,
        update_path="threshold-compact",
    )
    for i in range(8):
        service.insert(Point(points[i].x + 0.5, points[i].y + 0.5, 500 + i))
    assert service.compactions == 1
    assert len(service.delta) == 0
    # Shard boundaries were rebalanced over the grown point set.
    assert sum(len(s) for s in service.shards) == 208


def test_leveled_path_seals_instead_of_compacting():
    """On the leveled path the same threshold seals the memtable into the
    merge scheduler: no compaction, no O(n/B) rebuild on the update."""
    points = uniform_points(200, seed=9)
    service = SkylineService(
        points, shard_count=2, delta_threshold=8, auto_compact=True,
    )
    for i in range(8):
        service.insert(Point(points[i].x + 0.5, points[i].y + 0.5, 500 + i))
    assert service.compactions == 0
    assert len(service.delta.inserts) == 0  # sealed into frozen memtables
    assert service.towers()
    assert sum(t.scheduler.pending_jobs for t in service.towers()) >= 1
    # The base shards were not rebuilt; the new points live in the
    # frozen/leveled components (each shard's cut in its own tower)
    # until merges push them down.
    assert sum(len(s) for s in service.shards) == 200
    assert len(service) == 208
    service.drain()
    assert sum(t.scheduler.pending_jobs for t in service.towers()) == 0
    assert (
        sum(len(c) for t in service.towers() for c in t.components()) == 8
    )


def test_general_position_enforced_on_insert():
    points = uniform_points(50, seed=2)
    service = SkylineService(points, shard_count=2)
    with pytest.raises(ValueError):
        service.insert(Point(points[0].x, points[0].y + 123.25))
    with pytest.raises(ValueError):
        SkylineService([Point(1, 1, 0), Point(1, 2, 1)], shard_count=1)


def test_delete_prefers_ident_match():
    pts = [Point(float(i), float(100 - i), i) for i in range(30)]
    service = SkylineService(pts, shard_count=2)
    assert not service.delete(Point(500.0, 500.0))
    assert service.delete(Point(3.0, 97.0, 3))
    assert len(service) == 29
    assert canon(service.skyline()) == canon(
        range_skyline([p for p in pts if p.ident != 3], RangeQuery())
    )


def test_monolithic_query_many_matches_sequential():
    """Satellite: RangeSkylineIndex.query_many shares the batch API."""
    points = uniform_points(300, seed=4)
    index = RangeSkylineIndex(
        StorageManager(EMConfig(block_size=16, memory_blocks=16)), points
    )
    queries = random_queries(points, 4, random.Random(2))
    batch = index.query_many(queries)
    assert [canon(r) for r in batch] == [canon(index.query(q)) for q in queries]


def test_api_delete_removes_exactly_one_ident():
    """Satellite: delete drops exactly the identified point from .points."""
    storage = StorageManager(EMConfig(block_size=16, memory_blocks=16))
    points = [Point(float(i), float(i * 3 % 11) + i * 1e-3, i) for i in range(40)]
    index = RangeSkylineIndex(storage, points, dynamic=True)
    assert index.delete(Point(7.0, points[7].y, 7))
    assert len(index.points) == 39
    assert all(p.ident != 7 for p in index.points)
    # Deleting with a mismatched ident still removes one coordinate match,
    # never more.
    assert index.delete(Point(9.0, points[9].y, ident=None))
    assert len(index.points) == 38


def test_describe_exposes_cache_and_level_counters():
    """`describe()` carries the full result-cache counter set and the
    per-level fill rows ({records, tombstones, capacity, merge_debt})
    that replaced the flat `delta` block, so execution reports can source
    them without private state."""
    points = [Point(float(i * 7 % 101) + i * 1e-3, float(i * 13 % 97) + i * 1e-3, i) for i in range(60)]
    service = SkylineService(points, shard_count=4, cache_capacity=32)
    query = TopOpenQuery(5.0, 80.0, 10.0)
    service.query(query)
    service.query(query)  # second lookup hits the cache
    service.insert(Point(200.5, 200.5, 9_001))
    assert service.delete(points[3])
    status = service.describe()
    cache = status["result_cache"]
    assert cache["hits"] == service.cache.hits
    assert cache["misses"] == service.cache.misses
    assert cache["entries"] == len(service.cache)
    assert cache["capacity"] == 32
    assert cache["hit_rate"] == round(service.cache.hit_rate(), 3)
    assert cache["hits"] >= 1
    assert status["update_path"] == "leveled"
    assert status["delta_inserts"] == 1
    assert status["delta_tombstones"] == 1
    levels = status["levels"]
    memtable = levels[0]
    assert memtable["level"] == 0
    assert memtable["records"] == 1
    assert memtable["tombstones"] == 1
    assert memtable["capacity"] == service.config.delta_threshold
    assert memtable["merge_debt"] == 0
    assert {"active", "queued_jobs", "merges_completed"} <= set(
        status["scheduler"]
    )
    assert status["maintenance_io"] == service.maintenance_io()
    # The legacy path reports the flat delta as a single level-0 row.
    legacy = SkylineService(
        points, shard_count=2, update_path="threshold-compact"
    )
    legacy.insert(Point(300.5, 300.5, 9_002))
    rows = legacy.describe()["levels"]
    assert len(rows) == 1 and rows[0]["records"] == 1
    assert "scheduler" not in legacy.describe()


def test_service_reexports():
    import repro
    import repro.api

    assert repro.SkylineService is SkylineService
    # The repro.api import path is a deprecation shim: the warning is
    # asserted here (and the suite runs with filterwarnings=error, so an
    # unexpected warning anywhere else fails loudly).
    with pytest.warns(DeprecationWarning, match="repro.api is deprecated"):
        assert repro.api.SkylineService is SkylineService
    assert repro.ServiceConfig is ServiceConfig
    with pytest.raises(AttributeError):
        repro.does_not_exist
