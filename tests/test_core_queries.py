"""Unit tests for the query rectangle variants of Figure 2."""

import math

import pytest

from repro.core.point import Point
from repro.core.queries import (
    AntiDominanceQuery,
    BottomOpenQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    RangeQuery,
    RightOpenQuery,
    TopOpenQuery,
    classify,
)


def test_invalid_ranges_rejected():
    with pytest.raises(ValueError):
        RangeQuery(x_lo=2, x_hi=1)
    with pytest.raises(ValueError):
        RangeQuery(y_lo=3, y_hi=2)


def test_containment_and_filter():
    query = FourSidedQuery(0, 10, 0, 10)
    inside = Point(5, 5)
    outside = Point(11, 5)
    assert query.contains(inside) and not query.contains(outside)
    assert query.filter([inside, outside]) == [inside]


def test_shape_predicates():
    assert TopOpenQuery(0, 1, 0).is_top_open
    assert RightOpenQuery(0, 0, 1).is_right_open
    assert BottomOpenQuery(0, 1, 5).is_bottom_open
    assert LeftOpenQuery(1, 0, 5).is_left_open
    assert FourSidedQuery(0, 1, 0, 1).is_four_sided
    assert DominanceQuery(0, 0).open_side_count == 2
    assert ContourQuery(3).open_side_count == 3


@pytest.mark.parametrize(
    "query, label",
    [
        (TopOpenQuery(0, 1, 0), "top-open"),
        (RightOpenQuery(0, 0, 1), "right-open"),
        (BottomOpenQuery(0, 1, 1), "bottom-open"),
        (LeftOpenQuery(1, 0, 1), "left-open"),
        (DominanceQuery(0, 0), "dominance"),
        (AntiDominanceQuery(0, 0), "anti-dominance"),
        (ContourQuery(1), "contour"),
        (FourSidedQuery(0, 1, 0, 1), "4-sided"),
        (RangeQuery(), "unbounded"),
    ],
)
def test_classification(query, label):
    assert classify(query) == label


def test_dominance_query_matches_definition():
    query = DominanceQuery(2, 3)
    assert query.contains(Point(2, 3))
    assert query.contains(Point(10, 10))
    assert not query.contains(Point(1, 10))


def test_contour_query_is_halfplane():
    query = ContourQuery(5)
    assert query.contains(Point(-100, math.inf if False else 42))
    assert not query.contains(Point(6, 0))
