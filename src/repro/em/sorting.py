"""External merge sort with exact I/O accounting.

Implements the textbook ``O((n/B) log_{M/B}(n/B))`` multiway merge sort of
Aggarwal--Vitter.  The naive range-skyline baseline (Section 1.2 of the
paper) and several construction paths rely on it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Type, Union

from repro.core.pqueue import HeapQueue, SkipListPQ
from repro.em.file import EMFile
from repro.em.storage import StorageManager

#: Queue behind the multiway merge.  :class:`SkipListPQ` pools its nodes,
#: so the steady-state pop/push cycle allocates nothing;
#: ``benchmarks/bench_hotpath.py`` passes :class:`HeapQueue` instead to
#: time the two on identical merges (transfers are charged per block read
#: and written, so the ledger is bit-identical either way).
MergeQueue = Union[SkipListPQ, HeapQueue]


def external_sort(
    storage: StorageManager,
    source: EMFile,
    key: Optional[Callable[[Any], Any]] = None,
) -> EMFile:
    """Sort ``source`` into a new :class:`EMFile` using multiway merge sort.

    The memory budget is taken from ``storage.config``: initial runs hold
    ``M`` records, and each merge pass merges up to ``M/B - 1`` runs.
    """
    key = key or (lambda record: record)
    runs = _build_initial_runs(storage, source, key)
    fan_in = max(2, storage.config.memory_blocks - 1)
    while len(runs) > 1:
        runs = [
            _merge_runs(storage, runs[i : i + fan_in], key)
            for i in range(0, len(runs), fan_in)
        ]
    if not runs:
        empty = EMFile(storage, name=f"{source.name}.sorted")
        empty.close()
        return empty
    return runs[0]


def _build_initial_runs(
    storage: StorageManager, source: EMFile, key: Callable[[Any], Any]
) -> List[EMFile]:
    """Scan the input once, emitting memory-sized sorted runs."""
    memory_records = storage.config.memory_words
    runs: List[EMFile] = []
    buffer: List[Any] = []
    for record in source.scan():
        buffer.append(record)
        if len(buffer) >= memory_records:
            runs.append(_write_run(storage, buffer, key, len(runs), source.name))
            buffer = []
    if buffer:
        runs.append(_write_run(storage, buffer, key, len(runs), source.name))
    return runs


def _write_run(
    storage: StorageManager,
    buffer: List[Any],
    key: Callable[[Any], Any],
    index: int,
    base_name: str,
) -> EMFile:
    buffer.sort(key=key)
    return EMFile.from_records(storage, buffer, name=f"{base_name}.run{index}")


def _merge_runs(
    storage: StorageManager,
    runs: List[EMFile],
    key: Callable[[Any], Any],
    queue_type: Type[MergeQueue] = SkipListPQ,
) -> EMFile:
    """Merge up to ``M/B - 1`` sorted runs into one longer sorted run."""
    if len(runs) == 1:
        return runs[0]
    output = EMFile(storage, name=f"{runs[0].name}.merged")
    iterators: List[Iterator[Any]] = [run.scan() for run in runs]
    queue = queue_type()
    for run_index, iterator in enumerate(iterators):
        _push_next(queue, iterator, run_index, key)
    while queue:
        _, _, record, run_index = queue.pop()
        output.append(record)
        _push_next(queue, iterators[run_index], run_index, key)
    output.close()
    return output


_tiebreak = 0


def _push_next(
    queue: MergeQueue,
    iterator: Iterator[Any],
    run_index: int,
    key: Callable[[Any], Any],
) -> None:
    global _tiebreak
    try:
        record = next(iterator)
    except StopIteration:
        return
    _tiebreak += 1
    queue.push((key(record), _tiebreak, record, run_index))


def merge_sorted_files(
    storage: StorageManager,
    left: EMFile,
    right: EMFile,
    key: Optional[Callable[[Any], Any]] = None,
    queue_type: Type[MergeQueue] = SkipListPQ,
) -> EMFile:
    """Merge two already-sorted files in a single linear pass.

    Used by the SABE construction (Section 2.3): merging the x-sorted left
    endpoints with the stream of right endpoints costs ``O(n/B)`` I/Os.
    """
    key = key or (lambda record: record)
    return _merge_runs(storage, [left, right], key, queue_type)
