"""Typed request objects: the engine's single write/read entry format.

Every call into :class:`repro.engine.SkylineEngine` is a request object.
A :class:`QueryRequest` wraps the query rectangle (any shape of Figure 2;
the variant is auto-classified via :func:`repro.core.queries.classify`)
plus serving options -- ``limit``/``cursor`` pagination and a consistency
hint -- and an :class:`UpdateRequest` names an insert or delete victim.
The streaming tier (:mod:`repro.stream`) adds two more shapes:
a :class:`StreamRequest` opens a resumable top-k iterator over a pinned
snapshot, and a :class:`SubscribeRequest` registers a continuous query
whose answer is pushed as deltas.  Requests are frozen dataclasses, so
they can be logged, hashed, retried and replayed verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.point import Point
from repro.core.queries import RangeQuery, classify

#: ``cached`` lets the backend serve from its (epoch-keyed, always
#: consistent) result cache; ``fresh`` forces recomputation from the
#: structures, e.g. to measure the paper's bounds without cache luck.
CONSISTENCY_LEVELS = ("cached", "fresh")

OP_INSERT = "insert"
OP_DELETE = "delete"


@dataclass(frozen=True)
class QueryRequest:
    """One range-skyline read.

    Attributes
    ----------
    rect:
        The (possibly unbounded) query rectangle.  Its Figure-2 variant is
        derived, never supplied: see :attr:`variant`.
    limit:
        Maximum number of points to return (``None`` = all).  Results are
        in increasing x-order, so a truncated page is a prefix and the
        response carries a cursor for the rest.
    cursor:
        Resume token from a previous page: only points with ``x`` strictly
        greater than the cursor are returned.  Pass the previous
        :attr:`repro.engine.QueryResult.next_cursor` verbatim.
    consistency:
        ``"cached"`` (default) or ``"fresh"`` -- see
        :data:`CONSISTENCY_LEVELS`.
    """

    rect: RangeQuery = field(default_factory=RangeQuery)
    limit: Optional[int] = None
    cursor: Optional[float] = None
    consistency: str = "cached"

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_LEVELS}, "
                f"got {self.consistency!r}"
            )

    @property
    def variant(self) -> str:
        """The Figure-2 label of the rectangle (``classify(rect)``)."""
        return classify(self.rect)


@dataclass(frozen=True)
class UpdateRequest:
    """One write: insert a point, or delete a live point by coordinates.

    Deletes follow the one-victim semantics of the whole stack: among
    coordinate twins a point whose ``ident`` matches is preferred.
    """

    op: str
    point: Point

    def __post_init__(self) -> None:
        if self.op not in (OP_INSERT, OP_DELETE):
            raise ValueError(
                f"op must be {OP_INSERT!r} or {OP_DELETE!r}, got {self.op!r}"
            )

    @classmethod
    def insert(cls, point: Point) -> "UpdateRequest":
        return cls(OP_INSERT, point)

    @classmethod
    def delete(cls, point: Point) -> "UpdateRequest":
        return cls(OP_DELETE, point)


@dataclass(frozen=True)
class StreamRequest:
    """One resumable top-k read: open an incremental iterator.

    Where a :class:`QueryRequest` with ``limit``/``cursor`` re-executes
    the rectangle for every page (and therefore observes updates that
    land between pages), a stream request pins a *component snapshot* at
    open time: the persistent I/O-CPQA descriptors (or the one result
    computed through the engine) are captured once, and every subsequent
    page pops from that immutable value.  Interleaved updates can neither
    tear a page nor make the iterator skip or repeat a point.  See
    :class:`repro.stream.ResumableTopK`.

    Attributes
    ----------
    rect:
        The query rectangle the snapshot answers.
    page_size:
        Points per :class:`~repro.engine.report.StreamPage`.
    consistency:
        Passed to the one snapshot-pinning query (``"cached"`` /
        ``"fresh"``, see :data:`CONSISTENCY_LEVELS`).
    """

    rect: RangeQuery = field(default_factory=RangeQuery)
    page_size: int = 16
    consistency: str = "cached"

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {self.page_size}")
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_LEVELS}, "
                f"got {self.consistency!r}"
            )

    @property
    def variant(self) -> str:
        """The Figure-2 label of the rectangle (``classify(rect)``)."""
        return classify(self.rect)


@dataclass(frozen=True)
class SubscribeRequest:
    """One continuous query: a standing rectangle answered by deltas.

    A subscription receives :class:`~repro.engine.report.SkylineDelta`
    notifications -- the points that *entered* and *left* the rectangle's
    skyline -- instead of full answers.  Recomputation is scoped by the
    per-shard ``(uid, write_version)`` generations the result cache
    already tracks: a subscription whose rectangle overlaps no written
    shard is skipped entirely, costing zero block transfers.  See
    :class:`repro.stream.SubscriptionManager`.

    Attributes
    ----------
    rect:
        The standing query rectangle.
    consistency:
        Consistency of each recomputation (``"cached"`` / ``"fresh"``).
    initial_snapshot:
        Whether registration delivers the current skyline as the first
        delta (every point "entering"); with ``False`` the subscriber
        starts from an empty replay state and only sees changes.
    """

    rect: RangeQuery = field(default_factory=RangeQuery)
    consistency: str = "cached"
    initial_snapshot: bool = True

    def __post_init__(self) -> None:
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_LEVELS}, "
                f"got {self.consistency!r}"
            )

    @property
    def variant(self) -> str:
        """The Figure-2 label of the rectangle (``classify(rect)``)."""
        return classify(self.rect)
