"""Negative tests: each runtime sanitizer must catch an injected violation.

Every test here injects a bug the sanitizers exist to catch -- a racy
double-thread ledger charge, a lock-order inversion in a toy server, a
corrupted report partition -- and asserts the sanitizer raises.  The
positive case (the real system is clean under the sanitizers) is the
whole test suite run with ``REPRO_SANITIZE=1`` in CI.
"""

from __future__ import annotations

import threading

import pytest

from repro import Point, SkylineEngine, TopOpenQuery
from repro.analysis import locks, sanitize
from repro.analysis.locks import LockOrderTracker, TrackedLock, tracked_lock
from repro.analysis.sanitize import (
    LedgerRaceError,
    LockOrderError,
    PartitionError,
)
from repro.em.counters import IOStats
from repro.engine.report import ExecutionReport


@pytest.fixture
def sanitizer_state():
    """Snapshot and restore the global sanitizer switches around a test
    (the suite may already be running under ``REPRO_SANITIZE=1``)."""
    saved = (sanitize.ledger_checks, sanitize.partition_checks, locks.tracker())
    yield
    sanitize.ledger_checks = saved[0]
    sanitize.partition_checks = saved[1]
    locks.install_tracker(saved[2])


def _charge_in_thread(stats: IOStats) -> Exception | None:
    """Charge ``stats`` once from a fresh thread; return what it raised."""
    box: list = [None]

    def run() -> None:
        try:
            stats.record_read()
        except Exception as exc:  # noqa: BLE001 - surfacing for assertion
            box[0] = exc

    thread = threading.Thread(target=run)
    thread.start()
    thread.join()
    return box[0]


# ----------------------------------------------------------------------
# Ledger-ownership sanitizer
# ----------------------------------------------------------------------
def test_unsynchronized_cross_thread_charge_raises(sanitizer_state) -> None:
    sanitize.enable(ledger=True, partition=False, lock_order=False)
    stats = IOStats()
    stats.record_read()  # owned by this thread, at the current epoch
    error = _charge_in_thread(stats)
    assert isinstance(error, LedgerRaceError)


def test_charge_after_sync_point_is_a_legal_handoff(sanitizer_state) -> None:
    sanitize.enable(ledger=True, partition=False, lock_order=False)
    stats = IOStats()
    stats.record_write()
    sanitize.sync_point()  # declared handoff: ownership may move
    assert _charge_in_thread(stats) is None
    assert stats.total == 2


def test_tracked_lock_acquisition_is_a_sync_point(sanitizer_state) -> None:
    sanitize.enable(ledger=True, partition=False, lock_order=False)
    stats = IOStats()
    stats.record_read()
    with tracked_lock("test.handoff"):
        pass
    assert _charge_in_thread(stats) is None


def test_reset_clears_ownership(sanitizer_state) -> None:
    sanitize.enable(ledger=True, partition=False, lock_order=False)
    stats = IOStats()
    stats.record_read()
    stats.reset()
    assert _charge_in_thread(stats) is None


def test_sanitizers_off_by_default_admit_races(sanitizer_state) -> None:
    sanitize.disable()
    stats = IOStats()
    stats.record_read()
    assert _charge_in_thread(stats) is None  # nobody is watching


# ----------------------------------------------------------------------
# Lock-order sanitizer (toy server with two locks)
# ----------------------------------------------------------------------
def test_lock_order_inversion_raises_before_deadlock(sanitizer_state) -> None:
    locks.install_tracker(LockOrderTracker())
    admission = TrackedLock("toy.admission")
    engine = TrackedLock("toy.engine")
    # The dispatcher path establishes admission -> engine...
    with admission:
        with engine:
            pass
    # ...so a writer path taking engine -> admission is an inversion,
    # reported at acquisition time instead of deadlocking under load.
    with pytest.raises(LockOrderError, match="inversion"):
        with engine:
            with admission:
                pass


def test_reacquiring_a_held_lock_raises(sanitizer_state) -> None:
    locks.install_tracker(LockOrderTracker())
    a1 = TrackedLock("toy.same")
    a2 = TrackedLock("toy.same")  # same rank, different instance
    with pytest.raises(LockOrderError, match="already held"):
        with a1:
            with a2:
                pass


def test_dynamic_edges_must_be_in_the_static_graph(sanitizer_state) -> None:
    locks.install_tracker(
        LockOrderTracker(allowed_edges={("toy.a", "toy.b")})
    )
    a = TrackedLock("toy.a")
    b = TrackedLock("toy.b")
    c = TrackedLock("toy.c")
    with a:
        with b:  # declared statically: fine
            pass
    with pytest.raises(LockOrderError, match="static lock-order graph"):
        with a:
            with c:  # never declared: a missing calls() annotation
                pass


def test_tracker_held_stack_bookkeeping(sanitizer_state) -> None:
    tracker = LockOrderTracker()
    locks.install_tracker(tracker)
    a = TrackedLock("toy.outer")
    b = TrackedLock("toy.inner")
    with a:
        with b:
            assert tracker.held_locks() == ("toy.outer", "toy.inner")
    assert tracker.held_locks() == ()
    assert ("toy.outer", "toy.inner") in tracker.observed_edges()


# ----------------------------------------------------------------------
# Report-partition sanitizer
# ----------------------------------------------------------------------
def _small_engine() -> SkylineEngine:
    return SkylineEngine.local(
        [Point(1, 5), Point(2, 3), Point(4, 4), Point(6, 1)], dynamic=True
    )


def test_partition_checks_pass_on_honest_traffic(sanitizer_state) -> None:
    sanitize.enable(ledger=True, partition=True, lock_order=False)
    engine = _small_engine()
    engine.query(TopOpenQuery(0, 5, 0))
    engine.insert(Point(3, 6))
    engine.drop_caches()
    engine.query(TopOpenQuery(0, 7, 0))
    assert (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


def test_corrupted_attribution_is_reported(sanitizer_state) -> None:
    sanitize.enable(ledger=False, partition=True, lock_order=False)
    engine = _small_engine()
    engine.query(TopOpenQuery(0, 5, 0))
    engine._attributed += 7  # inject: a report charged phantom blocks
    with pytest.raises(PartitionError, match="exceed the backend ledger"):
        engine.query(TopOpenQuery(0, 5, 0))


def test_negative_report_component_is_reported(sanitizer_state) -> None:
    sanitize.enable(ledger=False, partition=True, lock_order=False)
    engine = _small_engine()
    bad = ExecutionReport(
        backend="local-index",
        kind="query",
        variant="top-open",
        structure="chunked",
        reads=-1,
        writes=0,
    )
    with pytest.raises(PartitionError, match="negative component"):
        engine._san_post(bad)


def test_backend_traffic_outside_the_engine_is_external(sanitizer_state) -> None:
    sanitize.enable(ledger=False, partition=True, lock_order=False)
    engine = _small_engine()
    engine.query(TopOpenQuery(0, 5, 0))
    # Drive the backend directly, bypassing the engine: legitimate in
    # mixed-layer tests, and must not be blamed on any report.
    engine.backend.drop_caches()
    engine.backend.execute(TopOpenQuery(0, 7, 0), "fresh")
    result = engine.query(TopOpenQuery(0, 7, 0))  # must not raise
    assert result.report.blocks >= 0
    assert engine._external_io > 0
    assert (
        engine.attributed_io()
        + engine.maintenance_io()
        + engine._external_io
        == engine.io_total() - engine.build_io
    )
