"""Opt-in runtime sanitizers for the I/O ledger and the serving tier.

The static passes in :mod:`repro.analysis.iolint` and
:mod:`repro.analysis.locklint` catch what is visible in the source; the
sanitizers here catch what only shows up at runtime.  They are **off by
default** -- production and benchmark runs pay nothing beyond one
module-attribute check per ledger charge -- and are switched on either
explicitly via :func:`enable` or for a whole test run via the
``REPRO_SANITIZE=1`` environment variable (see ``tests/conftest.py``).

Three sanitizers live behind the switch:

*Ledger ownership* -- every :class:`~repro.em.counters.IOStats` records
the thread that last charged it and the value of a global *sync epoch*
at that charge.  The epoch is bumped at every synchronization point the
code declares (tracked-lock acquisitions, batch-executor handoffs, see
:func:`sync_point`).  A charge from a different thread is legal only if
at least one sync point happened since the previous owner's last charge
-- an approximation of happens-before that deterministically catches the
PR 2 class of bug (two threads hammering one shared counter with no
synchronization at all) while admitting the legitimate handoffs the
service tier performs (per-shard worklists, the serving tier's
engine-lock lanes).

*Lock order* -- see :class:`repro.analysis.locks.LockOrderTracker`: the
dynamic acquisition order is checked for inversions and, when the static
graph from :func:`repro.analysis.locklint.static_lock_graph` is
supplied, every observed edge must appear in it.

*Report partition* -- the engine validates
``attributed + maintenance == total - build`` after **every**
:class:`~repro.engine.report.ExecutionReport` it emits (plus
non-negativity of each report's components), instead of only at the
bench/test assertion sites.  Ledger traffic that bypasses the engine
(tests driving the raw service next to an attached engine) is tracked as
*external* and excluded from blame, so the check stays exact over
engine-served traffic without false-positives on mixed-layer tests.

This module deliberately imports nothing from the rest of ``repro`` so
the hot path in :mod:`repro.em.counters` can import it without cycles.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Optional

__all__ = [
    "SanitizerError",
    "LedgerRaceError",
    "LockOrderError",
    "PartitionError",
    "enable",
    "disable",
    "is_enabled",
    "enabled_from_env",
    "sync_point",
    "current_epoch",
    "check_charge",
    "forget_owner",
    "ledger_checks",
    "partition_checks",
]


class SanitizerError(RuntimeError):
    """Base class for every runtime-sanitizer violation."""


class LedgerRaceError(SanitizerError):
    """An unsynchronized cross-thread charge to one ``IOStats`` ledger."""


class LockOrderError(SanitizerError):
    """A lock acquisition violating the (static or dynamic) lock order."""


class PartitionError(SanitizerError):
    """An ``ExecutionReport`` breaking ``attributed + maintenance ==
    total - build`` (or carrying a negative component)."""


#: Ledger-ownership checking is on (read by ``IOStats.record_*``).
ledger_checks: bool = False
#: Report-partition checking is on (read by ``SkylineEngine``).
partition_checks: bool = False

# The global sync epoch.  Monotone; bumped under ``_epoch_lock`` at every
# declared synchronization point.  Reads are unlocked (a stale read can
# only make the ledger check *stricter*, never let a race through that a
# fresh read would have caught).
_epoch: int = 0
_epoch_lock = threading.Lock()


def enabled_from_env() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitizers (``1``/truthy)."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def is_enabled() -> bool:
    """Whether any runtime sanitizer is currently active."""
    from repro.analysis import locks as _locks

    return ledger_checks or partition_checks or _locks.tracker() is not None


def enable(
    *,
    ledger: bool = True,
    partition: bool = True,
    lock_order: bool = True,
    static_edges: Optional[Any] = None,
) -> None:
    """Switch the runtime sanitizers on.

    ``static_edges`` (an iterable of ``(outer, inner)`` lock-name pairs,
    typically :func:`repro.analysis.locklint.static_lock_graph`) makes
    the lock-order tracker additionally reject any dynamically observed
    edge missing from the static graph.
    """
    global ledger_checks, partition_checks
    ledger_checks = ledger
    partition_checks = partition
    from repro.analysis import locks as _locks

    if lock_order:
        _locks.install_tracker(_locks.LockOrderTracker(static_edges))
    else:
        _locks.install_tracker(None)


def disable() -> None:
    """Switch every runtime sanitizer off (the default state)."""
    global ledger_checks, partition_checks
    ledger_checks = False
    partition_checks = False
    from repro.analysis import locks as _locks

    _locks.install_tracker(None)


def sync_point() -> None:
    """Declare a synchronization point (bumps the global sync epoch).

    Called by tracked-lock acquisitions and by the batch executors at
    their dispatch/join boundaries; after a sync point, ownership of any
    ledger may legally move to another thread.  A no-op cheap enough to
    call unconditionally from non-hot paths.
    """
    global _epoch
    with _epoch_lock:
        _epoch += 1


def current_epoch() -> int:
    """The current value of the global sync epoch."""
    return _epoch


def check_charge(stats: Any) -> None:
    """Ledger-ownership check, called by ``IOStats`` on every charge.

    Only invoked when :data:`ledger_checks` is true.  ``stats`` is an
    :class:`~repro.em.counters.IOStats` (typed ``Any`` to keep this
    module import-free); ownership state lives in the ``_san_owner`` /
    ``_san_epoch`` attributes attached here.
    """
    me = threading.get_ident()
    owner = getattr(stats, "_san_owner", None)
    if owner is not None and owner != me and getattr(stats, "_san_epoch", 0) >= _epoch:
        raise LedgerRaceError(
            f"unsynchronized cross-thread charge to {stats!r}: thread {me} "
            f"charged while thread {owner} owned the ledger and no sync "
            f"point (epoch {_epoch}) happened since its last charge -- "
            "every IOStats must be private to one worker or handed off "
            "through a synchronization point (lock acquisition, batch "
            "dispatch/join)"
        )
    stats._san_owner = me
    stats._san_epoch = _epoch


def forget_owner(stats: Any) -> None:
    """Clear a ledger's recorded owner (called by ``IOStats.reset``)."""
    if hasattr(stats, "_san_owner"):
        stats._san_owner = None
