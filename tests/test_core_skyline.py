"""Unit and property-based tests for the in-memory skyline algorithms."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.point import Point
from repro.core.queries import FourSidedQuery
from repro.core.skyline import (
    count_dominated_pairs,
    highest_point,
    is_skyline,
    range_skyline,
    skyline,
    skyline_divide_and_conquer,
    skyline_of_sorted,
)


def brute_force_skyline(points):
    return [
        p
        for p in points
        if not any(q is not p and q.dominates(p) for q in points)
    ]


def random_points(n, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(10 * n), n)
    ys = rng.sample(range(10 * n), n)
    return [Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))]


def test_skyline_matches_brute_force():
    points = random_points(200, 0)
    expected = sorted(brute_force_skyline(points), key=lambda p: p.x)
    assert skyline(points) == expected
    assert skyline_of_sorted(sorted(points, key=lambda p: p.x)) == expected
    assert sorted(skyline_divide_and_conquer(points), key=lambda p: p.x) == expected


def test_skyline_is_staircase():
    points = random_points(300, 1)
    result = skyline(points)
    for a, b in zip(result, result[1:]):
        assert a.x < b.x and a.y > b.y


def test_empty_and_singleton():
    assert skyline([]) == []
    assert skyline([Point(1, 1)]) == [Point(1, 1)]
    assert highest_point([]) is None
    assert highest_point([Point(1, 2), Point(3, 1)]) == Point(1, 2)


def test_range_skyline_respects_rectangle():
    points = random_points(150, 2)
    query = FourSidedQuery(100, 900, 100, 900)
    result = range_skyline(points, query)
    inside = [p for p in points if query.contains(p)]
    assert sorted(result, key=lambda p: p.x) == sorted(
        brute_force_skyline(inside), key=lambda p: p.x
    )


def test_is_skyline_and_dominated_pairs():
    points = [Point(1, 3), Point(2, 2), Point(3, 1), Point(0, 0)]
    assert is_skyline(points, points[:3])
    assert not is_skyline(points, points)
    assert count_dominated_pairs(points) == 3


point_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=0,
    max_size=60,
    unique_by=(lambda t: t[0], lambda t: t[1]),
)


@settings(max_examples=60, deadline=None)
@given(point_lists)
def test_skyline_property_no_dominated_and_complete(coords):
    points = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
    result = skyline(points)
    result_set = {(p.x, p.y) for p in result}
    # No reported point is dominated by any input point.
    for p in result:
        assert not any(q.dominates(p) for q in points)
    # Every non-reported point is dominated by someone.
    for p in points:
        if (p.x, p.y) not in result_set:
            assert any(q.dominates(p) for q in points)


@settings(max_examples=40, deadline=None)
@given(point_lists)
def test_divide_and_conquer_agrees_with_sweep(coords):
    points = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
    assert sorted(skyline_divide_and_conquer(points), key=lambda p: (p.x, p.y)) == sorted(
        skyline(points), key=lambda p: (p.x, p.y)
    )
