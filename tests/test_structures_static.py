"""Tests for the static structures: Theorem 1, Lemma 4, Lemma 5."""

import math
import random

import pytest

from repro.core.point import Point
from repro.core.queries import FourSidedQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.structures import (
    FewPointStructure,
    RayDragStructure,
    StaticTopOpenStructure,
)


def make_storage(block_size=16):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=32))


def random_points(n, universe, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(universe), n)
    ys = rng.sample(range(universe), n)
    return [Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))]


def answers_match(points, structure, queries):
    for query in queries:
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        got = sorted((p.x, p.y) for p in structure.query(query))
        if expected != got:
            return False
    return True


def random_top_open_queries(universe, count, seed):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        lo, hi = sorted(rng.sample(range(-5, universe + 5), 2))
        queries.append(TopOpenQuery(lo, hi, rng.uniform(-5, universe + 5)))
    return queries


# ----------------------------------------------------------------------
# Ray dragging (Lemma 4)
# ----------------------------------------------------------------------
def test_raydrag_matches_brute_force():
    points = random_points(250, 3000, 1)
    structure = RayDragStructure(make_storage(), points, universe=3000)
    rng = random.Random(2)
    for _ in range(200):
        alpha = rng.uniform(-10, 3010)
        beta = rng.uniform(-10, 3010)
        expected = None
        for p in points:
            if p.x <= alpha and p.y >= beta and (expected is None or p.x > expected.x):
                expected = p
        got = structure.drag_left(alpha, beta)
        assert (got is None) == (expected is None)
        if expected is not None:
            assert got.x == expected.x and got.y == expected.y


def test_raydrag_empty_and_space():
    empty = RayDragStructure(make_storage(), [], universe=10)
    assert empty.drag_left(5, 5) is None
    assert empty.block_count() == 0
    points = random_points(300, 2000, 3)
    structure = RayDragStructure(make_storage(block_size=32), points, universe=2000)
    assert structure.block_count() <= 4 * (len(points) / 32 + 1)
    assert len(structure) == 300


# ----------------------------------------------------------------------
# Few-point structure (Lemma 5)
# ----------------------------------------------------------------------
def test_fewpoint_matches_brute_force():
    points = random_points(200, 1000, 4)
    structure = FewPointStructure(make_storage(), points, universe=1000)
    queries = random_top_open_queries(1000, 200, 5)
    assert answers_match(points, structure, queries)


def test_fewpoint_rejects_non_top_open_and_handles_empty():
    structure = FewPointStructure(make_storage(), [], universe=10)
    assert structure.query(TopOpenQuery(0, 5, 0)) == []
    assert structure.x_range() == (math.inf, -math.inf)
    populated = FewPointStructure(make_storage(), [Point(1, 1)], universe=10)
    with pytest.raises(ValueError):
        populated.query(FourSidedQuery(0, 1, 0, 1))
    assert populated.lowest_result_point(5, 0) == Point(1, 1)


# ----------------------------------------------------------------------
# Static top-open structure (Theorem 1)
# ----------------------------------------------------------------------
def test_static_topopen_matches_brute_force():
    points = random_points(400, 5000, 6)
    structure = StaticTopOpenStructure(make_storage(), points)
    queries = random_top_open_queries(5000, 200, 7)
    assert answers_match(points, structure, queries)


def test_static_topopen_contour_and_dominance_helpers():
    points = random_points(150, 2000, 8)
    structure = StaticTopOpenStructure(make_storage(), points)
    contour = structure.query_contour(1000)
    expected = range_skyline(points, TopOpenQuery(-math.inf, 1000, -math.inf))
    assert sorted((p.x, p.y) for p in contour) == sorted((p.x, p.y) for p in expected)
    dominance = structure.query_dominance(500, 500)
    expected = [
        p
        for p in range_skyline(points, TopOpenQuery(500, math.inf, 500))
    ]
    assert sorted((p.x, p.y) for p in dominance) == sorted((p.x, p.y) for p in expected)


def test_static_topopen_rejects_non_top_open():
    structure = StaticTopOpenStructure(make_storage(), [Point(1, 1)])
    with pytest.raises(ValueError):
        structure.query(FourSidedQuery(0, 1, 0, 1))


def test_static_topopen_sorted_build_is_linear_io():
    points = sorted(random_points(600, 8000, 9), key=lambda p: p.x)
    storage = make_storage(block_size=32)
    structure = StaticTopOpenStructure.build_sorted(storage, points)
    # The construction touches O(n/B) blocks with a moderate constant.
    assert structure.construction_io <= 20 * (len(points) / 32 + 1)
    assert len(structure) == 600
    assert structure.block_count() > 0


def test_static_topopen_query_io_is_logarithmic_plus_output():
    points = sorted(random_points(1000, 20000, 10), key=lambda p: p.x)
    storage = make_storage(block_size=32)
    structure = StaticTopOpenStructure.build_sorted(storage, points)
    query = TopOpenQuery(2000, 15000, 10000)
    storage.drop_cache()
    before = storage.snapshot()
    result = structure.query(query)
    io = (storage.snapshot() - before).total
    assert io <= 10 + 4 * (len(result) / 32 + 1)
