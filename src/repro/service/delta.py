"""The in-memory write delta: pending inserts and delete tombstones.

Writes never touch the static shard structures directly.  Following the
logarithmic method (Bentley--Saxe), inserts accumulate in a small in-memory
buffer that every query folds into its answer, and deletes of static points
are recorded as tombstones.  When the delta grows past the service's
threshold a compaction rebuilds the static shards from the live point set
and empties the buffer, so the memory the delta occupies stays bounded by
the threshold.

Skyline queries are *not* decomposable under deletion (removing a maximal
point can expose points it used to dominate), so tombstones cannot simply
be filtered out of a shard's precomputed answer.  Instead, a query whose
rectangle contains a tombstone of some shard recomputes that shard's local
skyline from the shard's resident live points; shards untouched by
tombstones keep using their static structures at full I/O efficiency.

Tombstones are bucketed by the *owning component* -- the base shard id (an
``int``) for victims resident in a static shard, or a leveled component's
owner key (``("c", component_id)``, see :mod:`repro.service.lsm`) for
victims resident in an immutable level.  A batch of ``Q`` queries over
``S`` components therefore probes only each component's own bucket instead
of sweeping every tombstone ``Q * S`` times.  Buckets are maintained on
every mutation path -- tombstone creation, revival by re-insert,
consumption/re-owning when a level merge rewrites the victim's component,
and :meth:`DeltaBuffer.clear` at compaction -- and owner keys stay valid
for the bucket's whole lifetime because compaction clears the buffer
whenever shard boundaries or the level layout move wholesale.

On the leveled update path the buffer doubles as the level-0 *memtable*:
:meth:`DeltaBuffer.seal_inserts` drains the pending inserts into an
immutable component while tombstones stay behind (they are consumed by the
merges that rewrite their victims' components, never flushed).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery

Key = Tuple[float, float, Optional[int]]
#: A tombstone's owning component: a base shard id, a leveled component's
#: owner key, or ``None`` for the unknown-owner catch-all bucket.
Owner = Optional[Hashable]


def point_key(point: Point) -> Key:
    """Identity key of a stored point: coordinates plus ``ident``."""
    return (point.x, point.y, point.ident)


class DeltaBuffer:
    """Pending inserts plus delete tombstones, with a change version."""

    def __init__(self) -> None:
        self.inserts: Dict[Key, Point] = {}
        self.tombstones: Dict[Key, Point] = {}
        # Owner buckets over the same tombstones (``None`` = unknown
        # owner, checked by every component) plus the reverse key -> owner
        # map that keeps revival O(1).
        self._tombstones_by_shard: Dict[Owner, Dict[Key, Point]] = {}
        self._tombstone_shard: Dict[Key, Owner] = {}
        # Bumped on every mutation -- an internal change counter for
        # introspection (describe()) and tests.  Result-cache invalidation
        # does NOT run through it: the service scopes invalidation with
        # per-shard write versions (see SkylineService._bump_region and
        # repro.service.cache.make_key), bumped on every write routed into
        # a shard's x-range.
        self.version = 0

    def __len__(self) -> int:
        return len(self.inserts) + len(self.tombstones)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Buffer an insert (re-inserting a tombstoned point revives it)."""
        key = point_key(point)
        if key in self.tombstones:
            del self.tombstones[key]
            self._unbucket(key)
        else:
            self.inserts[key] = point
        self.version += 1

    def remove_insert(self, point: Point) -> Optional[Point]:
        """Drop a pending insert matching ``point``; prefers an exact
        ``ident`` match among coordinate twins.  Returns the removed point
        (so callers can log exactly which point died), or ``None``."""
        victim = self._match(self.inserts, point)
        if victim is None:
            return None
        removed = self.inserts.pop(victim)
        self.version += 1
        return removed

    def add_tombstone(self, point: Point, sid: Owner = None) -> None:
        """Record that the resident point ``point`` is deleted.

        ``sid`` is the owner key of the component holding the point (a
        base shard id, or a level component's owner key); it buckets the
        tombstone so queries against other components never scan it.
        ``None`` (owner unknown) lands in a catch-all bucket every
        component checks.  Re-adding an existing tombstone under a new
        owner moves it between buckets, which is how level merges re-own
        the tombstones that survive them.
        """
        key = point_key(point)
        if key in self.tombstones:
            self._unbucket(key)
        self.tombstones[key] = point
        self._tombstone_shard[key] = sid
        self._tombstones_by_shard.setdefault(sid, {})[key] = point
        self.version += 1

    def seal_inserts(self) -> List[Point]:
        """Drain the pending inserts (the level-0 memtable) for a flush.

        Returns the drained points sorted by increasing x; tombstones stay
        in the buffer (a merge consumes them when it rewrites their
        victims' component, see :mod:`repro.service.lsm`).
        """
        sealed = sorted(self.inserts.values(), key=lambda p: (p.x, p.y))
        self.inserts.clear()
        self.version += 1
        return sealed

    def take_inserts_in_range(self, x_lo: float, x_hi: float) -> List[Point]:
        """Remove and return the pending inserts with ``x_lo <= x < x_hi``.

        The memtable slice a hot-shard split hands over to the split
        children: the points become base-resident (in x-order), so they
        leave the level-0 buffer.  Tombstones are untouched.
        """
        taken = [
            p for p in self.inserts.values() if x_lo <= p.x < x_hi
        ]
        if taken:
            for p in taken:
                del self.inserts[point_key(p)]
            self.version += 1
        return sorted(taken, key=lambda p: (p.x, p.y))

    def drop_tombstone(self, key: Key) -> None:
        """Forget one tombstone (its victim left the store for good --
        a level merge dropped the dead record from its output)."""
        del self.tombstones[key]
        self._unbucket(key)
        self.version += 1

    def restore_insert(self, point: Point) -> None:
        """Re-materialise ``point`` as a pending insert.

        Used when a level merge consumed a tombstone whose point was
        *revived* while the merge was in flight: the merged output dropped
        the record, so the live copy moves back into the memtable."""
        self.inserts[point_key(point)] = point
        self.version += 1

    def tombstone_owner(self, key: Key) -> Owner:
        """The owner bucket a tombstone currently lives under."""
        return self._tombstone_shard[key]

    def clear(self) -> None:
        """Empty the buffer (after a compaction)."""
        self.inserts.clear()
        self.tombstones.clear()
        self._tombstones_by_shard.clear()
        self._tombstone_shard.clear()
        self.version += 1

    def _unbucket(self, key: Key) -> None:
        sid = self._tombstone_shard.pop(key)
        bucket = self._tombstones_by_shard[sid]
        del bucket[key]
        if not bucket:
            del self._tombstones_by_shard[sid]

    # ------------------------------------------------------------------
    # Query-side views
    # ------------------------------------------------------------------
    def is_deleted(self, point: Point) -> bool:
        return point_key(point) in self.tombstones

    def describe(self) -> dict:
        """Current fill of the buffer, for dashboards and reports."""
        return {
            "inserts": len(self.inserts),
            "tombstones": len(self.tombstones),
            "version": self.version,
        }

    def candidates_in(self, query: RangeQuery) -> List[Point]:
        """Pending inserts inside the query rectangle."""
        return [p for p in self.inserts.values() if query.contains(p)]

    def shard_tombstones(self, sid: Owner) -> List[Point]:
        """The tombstones bucketed under owner ``sid`` (test/introspection)."""
        return list(self._tombstones_by_shard.get(sid, {}).values())

    def owned_tombstones(self, owner: Owner) -> Dict[Key, Point]:
        """A copy of the key -> victim table bucketed under ``owner``."""
        return dict(self._tombstones_by_shard.get(owner, {}))

    def tombstone_hits(
        self,
        query: RangeQuery,
        x_lo: float,
        x_hi: float,
        sid: Owner = None,
    ) -> bool:
        """Whether a tombstone lies inside ``query`` within ``[x_lo, x_hi)``.

        Only then is the static answer of the component covering that
        x-range unreliable (a deleted point outside the rectangle can
        neither appear in, nor have dominated anything in, the answer).
        When the caller passes its owner key, only that component's bucket
        (plus the unknown-owner catch-all) is scanned; without a ``sid``
        the full table is swept.
        """
        if sid is None:
            candidates = list(self.tombstones.values())
        else:
            candidates = self.shard_tombstones(sid)
            candidates.extend(self.shard_tombstones(None))
        return any(
            x_lo <= t.x < x_hi and query.contains(t) for t in candidates
        )

    def _match(self, table: Dict[Key, Point], point: Point) -> Optional[Key]:
        """A key in ``table`` matching ``point``'s coordinates, preferring an
        exact ident match -- the same one-victim semantics as
        :meth:`repro.RangeSkylineIndex.delete`."""
        exact = point_key(point)
        if exact in table:
            return exact
        for key in table:
            if key[0] == point.x and key[1] == point.y:
                return key
        return None
