"""repro -- I/O-efficient planar range skyline reporting and attrition priority queues.

A faithful reproduction of Kejlberg-Rasmussen, Tao, Tsakalidis, Tsichlas and
Yoon, *"I/O-Efficient Planar Range Skyline and Attrition Priority Queues"*
(PODS 2013), as a reusable Python library.  Every data structure runs on a
simulated external-memory machine (:mod:`repro.em`) so that the quantity the
paper bounds -- block transfers -- is measured exactly.

Quickstart
----------
>>> from repro import Point, SkylineEngine, TopOpenQuery
>>> engine = SkylineEngine.local([Point(1, 5), Point(2, 3), Point(4, 4)])
>>> result = engine.query(TopOpenQuery(0, 5, 0))
>>> [p.as_tuple() for p in result.points]
[(1.0, 5.0), (4.0, 4.0)]
>>> result.report.blocks == engine.io_total() - engine.build_io
True

:class:`repro.engine.SkylineEngine` is the recommended front door: one
typed request/response API over both the monolithic index
(``SkylineEngine.local``) and the sharded service
(``SkylineEngine.sharded`` / ``SkylineEngine.open``), with ``explain``
plans and per-request execution reports.  The underlying facades
(:class:`RangeSkylineIndex`, :class:`SkylineService`) remain available
for direct use.

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
experiments that regenerate every row of the paper's Table 1.
"""

from repro.core.point import Point
from repro.core.queries import (
    AntiDominanceQuery,
    BottomOpenQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    RangeQuery,
    RightOpenQuery,
    TopOpenQuery,
)
from repro.core.skyline import range_skyline, skyline
from repro.api import RangeSkylineIndex
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.pqa.iocpqa import IOCPQA
from repro.pqa.sundar import SundarPQA

__version__ = "1.1.0"


_ENGINE_EXPORTS = (
    "SkylineEngine",
    "QueryRequest",
    "UpdateRequest",
    "QueryResult",
    "UpdateResult",
    "ExecutionReport",
    "QueryPlan",
    "LocalIndexBackend",
    "ShardedServiceBackend",
)

_SERVE_EXPORTS = (
    "SkylineServer",
    "ServerConfig",
    "ServingReport",
    "ServedQuery",
    "ServedUpdate",
    "Overloaded",
    "DeadlineExceeded",
)


def __getattr__(name: str):
    # The service, engine and serving tiers import RangeSkylineIndex from
    # this package, so their names are resolved lazily to avoid import
    # cycles.
    if name in ("SkylineService", "ServiceConfig"):
        from repro import service

        return getattr(service, name)
    if name in _ENGINE_EXPORTS:
        from repro import engine

        return getattr(engine, name)
    if name in _SERVE_EXPORTS:
        from repro import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SkylineEngine",
    "QueryRequest",
    "UpdateRequest",
    "QueryResult",
    "UpdateResult",
    "ExecutionReport",
    "QueryPlan",
    "LocalIndexBackend",
    "ShardedServiceBackend",
    "SkylineService",
    "ServiceConfig",
    "SkylineServer",
    "ServerConfig",
    "ServingReport",
    "ServedQuery",
    "ServedUpdate",
    "Overloaded",
    "DeadlineExceeded",
    "Point",
    "RangeQuery",
    "TopOpenQuery",
    "RightOpenQuery",
    "BottomOpenQuery",
    "LeftOpenQuery",
    "DominanceQuery",
    "AntiDominanceQuery",
    "ContourQuery",
    "FourSidedQuery",
    "skyline",
    "range_skyline",
    "RangeSkylineIndex",
    "EMConfig",
    "StorageManager",
    "IOCPQA",
    "SundarPQA",
    "__version__",
]
