"""Property-based tests (hypothesis) for the priority queues with attrition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.pqa import IOCPQA, SundarPQA, check_queue_invariants


def make_storage():
    return StorageManager(EMConfig(block_size=16, memory_blocks=16))


keys = st.integers(min_value=0, max_value=10_000)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys),
        st.tuples(st.just("delete"), st.just(0)),
        st.tuples(st.just("catenate"), st.lists(keys, max_size=8)),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_iocpqa_always_agrees_with_oracle(ops):
    """The external queue and the internal oracle stay observationally equal."""
    storage = make_storage()
    queue = IOCPQA.empty(storage, record_capacity=4)
    oracle = SundarPQA()
    for kind, payload in ops:
        if kind == "insert":
            queue = queue.insert_and_attrite(payload)
            oracle.insert_and_attrite(payload, None)
        elif kind == "delete":
            item, queue = queue.delete_min()
            expected = oracle.delete_min()
            assert (item is None) == (expected is None)
            if item is not None:
                assert item[0] == expected[0]
        else:
            items = [(key, None) for key in payload]
            queue = queue.catenate_and_attrite(
                IOCPQA.build(storage, items, 4)
            )
            oracle.catenate_and_attrite(SundarPQA(items))
        assert queue.min_key() == (oracle.find_min()[0] if oracle.find_min() else None)
    assert queue.keys() == oracle.keys()
    check_queue_invariants(queue)


@settings(max_examples=60, deadline=None)
@given(st.lists(keys, max_size=100))
def test_queue_content_is_strictly_increasing(values):
    """Invariant C.1: after any insert sequence the content is increasing."""
    storage = make_storage()
    queue = IOCPQA.empty(storage, record_capacity=4)
    for value in values:
        queue = queue.insert_and_attrite(value)
    content = queue.keys()
    assert all(a < b for a, b in zip(content, content[1:]))
    check_queue_invariants(queue)


@settings(max_examples=40, deadline=None)
@given(st.lists(keys, min_size=1, max_size=60), st.lists(keys, min_size=1, max_size=60))
def test_catenation_equals_filter_then_concat(first_values, second_values):
    """CatenateAndAttrite(Q1, Q2) == {e in Q1 | e < min(Q2)} ++ Q2."""
    storage = make_storage()
    first = IOCPQA.build(storage, [(v, None) for v in first_values], 4)
    second = IOCPQA.build(storage, [(v, None) for v in second_values], 4)
    first_keys = first.keys()
    second_keys = second.keys()
    combined = first.catenate_and_attrite(second)
    cutoff = second_keys[0] if second_keys else None
    expected = (
        [k for k in first_keys if cutoff is None or k < cutoff] + second_keys
    )
    assert combined.keys() == expected
