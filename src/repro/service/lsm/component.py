"""One immutable component of the leveled update subsystem.

A :class:`Component` is a frozen batch of points.  Level components (the
result of a merge) are backed by a static :class:`repro.RangeSkylineIndex`
on a private simulated machine with a private
:class:`~repro.em.counters.IOStats` ledger -- the same isolation discipline
as :class:`~repro.service.shard.Shard`, so queries against a level charge
exactly one ledger and concurrent batch workers never race a counter.
Frozen memtables (a sealed level 0 awaiting its flush merge) carry no
index and no machine: they are still in memory, so scanning them is free,
exactly like the flat delta the leveled path replaces.

Construction of an indexed component eagerly charges the build to the
component's *private* ledger.  The ledger only joins the service-wide
aggregate after the :class:`~repro.service.lsm.CompactionScheduler` has
mirrored the build cost into the maintenance ledger in bounded steps and
reset it -- that escrow is what turns an ``O(m/B)`` build into ``O(1)``
visible work per update.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.api import RangeSkylineIndex
from repro.core.columns import PointColumns
from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.em.storage import StorageManager

#: Owner key of a component in the tombstone table (see
#: :class:`repro.service.delta.DeltaBuffer`): distinct from the plain
#: ``int`` shard ids the base tier uses.
OwnerKey = Tuple[str, int]


class Component:
    """An immutable, x-sorted batch of points, optionally indexed."""

    def __init__(
        self,
        comp_id: int,
        points: Sequence[Point],
        em_config: Optional[EMConfig] = None,
        epsilon: float = 0.5,
        build_index: bool = True,
    ) -> None:
        self.comp_id = comp_id
        self.points: List[Point] = sorted(points, key=lambda p: (p.x, p.y))
        # Columnar twin of ``points`` (parallel x/y/ident arrays): the
        # query path bisects and filters these instead of touching one
        # object per point.  Built once -- the component is immutable.
        self.columns: PointColumns = PointColumns.from_points(self.points)
        self.stats: Optional[IOStats] = None
        self.storage: Optional[StorageManager] = None
        self.index: Optional[RangeSkylineIndex] = None
        if build_index:
            assert em_config is not None
            self.stats = IOStats()
            self.storage = StorageManager(em_config, stats=self.stats)
            self.index = RangeSkylineIndex(
                self.storage, self.points, dynamic=False, epsilon=epsilon
            )

    @property
    def owner(self) -> OwnerKey:
        """This component's owner key in the tombstone table."""
        return ("c", self.comp_id)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "level" if self.index is not None else "frozen"
        return f"Component({self.comp_id}, {kind}, {len(self.points)} pts)"
