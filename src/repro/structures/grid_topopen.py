"""Top-open structure on a bounded grid universe (Corollary 1).

The structure stores the points in rank space (Theorem 2) and converts each
query coordinate from ``[U]`` to rank space with a predecessor search.  The
paper uses the linear-space predecessor structure of Patrascu--Thorup with
``O(log log_B U)`` I/Os per conversion; the conversion here is performed on
an in-memory sorted array (free CPU) and the corresponding I/O charge
``ceil(log2 log_B U)`` is added explicitly to the storage counters, so the
measured query cost matches the claimed ``O(log log_B U + k/B)`` bound.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.core.rankspace import RankSpaceMap
from repro.em.storage import StorageManager
from repro.structures.rankspace_topopen import RankSpaceTopOpenStructure


class GridTopOpenStructure:
    """Top-open range skyline reporting for points in ``[U]^2``."""

    def __init__(
        self,
        storage: StorageManager,
        points: Iterable[Point],
        universe: int,
    ) -> None:
        self.storage = storage
        self.universe = int(universe)
        if self.universe < 2:
            raise ValueError("universe must be at least 2")
        self.points = sorted(points, key=lambda p: p.x)
        self.rank_map = RankSpaceMap.build(self.points)
        rank_points = [self.rank_map.to_rank(p) for p in self.points]
        self.rank_structure = RankSpaceTopOpenStructure(
            storage, rank_points, universe=max(2, len(self.points))
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima inside a top-open rectangle of the grid universe."""
        if not query.is_top_open:
            raise ValueError("GridTopOpenStructure answers top-open queries only")
        return self.query_top_open(query.x_lo, query.x_hi, query.y_lo)

    def query_top_open(self, x_lo: float, x_hi: float, y_lo: float) -> List[Point]:
        """Answer ``[x_lo, x_hi] x [y_lo, inf[`` in O(log log_B U + k/B) I/Os."""
        if not self.points:
            return []
        self._charge_predecessor_search(conversions=3)
        rank_x_lo = self.rank_map.x_rank_of_query(x_lo, "lo")
        rank_x_hi = self.rank_map.x_rank_of_query(x_hi, "hi")
        rank_y_lo = self.rank_map.y_rank_of_query(y_lo, "lo")
        if rank_x_lo > rank_x_hi:
            return []
        rank_result = self.rank_structure.query_top_open(
            rank_x_lo, rank_x_hi, rank_y_lo
        )
        original = [self.rank_map.from_rank(p) for p in rank_result]
        original.sort(key=lambda p: p.x)
        return original

    def _charge_predecessor_search(self, conversions: int) -> None:
        cost = self.rank_map.predecessor_search_cost(self.storage.block_size)
        log_b_u = max(
            2.0, math.log(max(2, self.universe), max(2, self.storage.block_size))
        )
        cost = max(cost, math.ceil(math.log2(log_b_u)))
        self.storage.stats.record_read(cost * conversions)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def block_count(self) -> int:
        """Blocks used by the underlying rank-space structure."""
        return self.rank_structure.block_count()

    def predecessor_cost(self) -> int:
        """The modelled per-conversion predecessor-search I/O charge."""
        return self.rank_map.predecessor_search_cost(self.storage.block_size)


def grid_query_bound(universe: int, k: int, block_size: int) -> float:
    """The theoretical ``O(log log_B U + k/B)`` bound for benchmark tables."""
    log_b_u = max(2.0, math.log(max(2, universe), max(2, block_size)))
    return math.log2(log_b_u) + k / block_size + 1.0


def rank_space_query_bound(k: int, block_size: int) -> float:
    """The theoretical ``O(1 + k/B)`` bound of Theorem 2."""
    return 1.0 + k / block_size
