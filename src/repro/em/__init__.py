"""External-memory (I/O model) simulation substrate.

The classic Aggarwal--Vitter external-memory model charges one unit of cost
per *block transfer* between an unbounded disk and a memory of ``M`` words,
where each block holds ``B`` consecutive words; CPU work is free.  The paper
states all of its bounds in this model, so the reproduction measures exactly
this quantity: every data structure in :mod:`repro.structures` stores its
nodes through this package and every benchmark reports the resulting I/O
counters.

Public surface
--------------
:class:`EMConfig`      -- the (B, M) parameters of a simulated machine.
:class:`IOStats`       -- read/write counters with snapshot arithmetic.
:class:`IOStatsGroup`  -- read-only sum over several ``IOStats`` ledgers.
:class:`DiskModel`     -- block-addressed object store that counts transfers.
:class:`BufferPool`    -- LRU cache of blocks with pinning, on top of a disk.
:class:`StorageManager`-- convenience facade combining the three above.
:class:`EMFile`        -- sequential record file (append / scan) with blocked I/O.
:func:`external_sort`  -- multiway external merge sort with exact I/O counts.
"""

from repro.em.config import EMConfig
from repro.em.counters import IOMeter, IOSnapshot, IOStats, IOStatsGroup
from repro.em.disk import BlockId, DiskFullError, DiskModel
from repro.em.cache import BufferPool
from repro.em.storage import StorageManager
from repro.em.file import EMFile
from repro.em.sorting import external_sort

__all__ = [
    "EMConfig",
    "IOStats",
    "IOStatsGroup",
    "IOSnapshot",
    "IOMeter",
    "BlockId",
    "DiskModel",
    "DiskFullError",
    "BufferPool",
    "StorageManager",
    "EMFile",
    "external_sort",
]
