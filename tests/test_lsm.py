"""Tests for the leveled log-structured update subsystem (repro.service.lsm).

The acceptance properties:

* **Pause-anywhere correctness** -- query answers equal the naive scan
  baseline no matter where the incremental merge is paused, including
  after every single bounded step.
* **Bounded update spikes** -- a single insert at the old compact
  threshold no longer charges an ``O(n/B)`` rebuild (pinned regression
  against the legacy threshold-compact path).
* **Exact level-state recovery** -- a drain checkpoint's level-aware
  snapshot plus WAL replay restores the exact level layout after a crash
  at any durable prefix.
* **Ledger conservation** -- attributed + maintenance partitions the
  ledger exactly through seals, incremental merges, drains and major
  compactions.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FourSidedQuery, Point, RangeQuery, TopOpenQuery
from repro.baselines.naive import NaiveScanSkyline
from repro.core.skyline import range_skyline
from repro.em import EMConfig, StorageManager
from repro.em.counters import IOStats
from repro.engine import SkylineEngine
from repro.service import (
    CrashSimulator,
    DeltaBuffer,
    ServiceConfig,
    SkylineService,
    merge_component_skylines,
)
from repro.service.delta import point_key
from repro.service.lsm import LevelManager
from repro.workloads import uniform_points


def canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def canon_xy(points):
    return sorted((p.x, p.y) for p in points)


def seed_points(n, seed=0):
    rng = random.Random(seed)
    xs = rng.sample(range(10 * n), n)
    ys = rng.sample(range(10 * n), n)
    return [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]


def naive_answers(points, queries):
    baseline = NaiveScanSkyline(
        StorageManager(EMConfig(block_size=16, memory_blocks=16)), points
    )
    return [canon_xy(baseline.query(query)) for query in queries]


LEVELED = dict(
    shard_count=2,
    block_size=8,
    memory_blocks=8,
    delta_threshold=6,
    level_growth=2,
    merge_step_blocks=2,
)


def towers(service):
    """Every live shard's private tower, in shard order."""
    return [s.tower for s in service.shards if s.tower is not None]


def all_levels(service):
    """``(sid, level) -> component`` across every shard's tower."""
    return {
        (shard.sid, j): comp
        for shard in service.shards
        if shard.tower is not None
        for j, comp in shard.tower.levels.items()
    }


def total_merge_debt(service):
    return sum(t.scheduler.merge_debt for t in towers(service))


def total_pending_jobs(service):
    return sum(t.scheduler.pending_jobs for t in towers(service))


# ----------------------------------------------------------------------
# Acceptance: correct at every intermediate merge step
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    shard_count=st.integers(min_value=1, max_value=3),
    growth=st.sampled_from([2, 4]),
    step=st.sampled_from([1, 3]),
)
def test_queries_correct_at_every_incremental_step(seed, shard_count, growth, step):
    """Interleave queries with updates under a tiny merge budget: every
    update leaves the scheduler paused at a different intermediate point,
    and the answers must equal the naive baseline at each of them."""
    rng = random.Random(seed)
    points = seed_points(40, seed=seed)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=8,
            memory_blocks=8,
            delta_threshold=4,
            level_growth=growth,
            merge_step_blocks=step,
        ),
    )
    live = list(points)
    queries = [
        RangeQuery(),
        TopOpenQuery(50.0, 300_000.0, 10.0),
        FourSidedQuery(0.0, 200_000.0, 0.0, 200_000.0),
    ]
    for i in range(30):
        roll = rng.random()
        if roll < 0.55:
            point = Point(400_000.0 + i * 1.25, 500_000.0 + i * 1.5, 90_000 + i)
            service.insert(point)
            live.append(point)
        elif roll < 0.85 and live:
            victim = live.pop(rng.randrange(len(live)))
            assert service.delete(victim)
        elif roll < 0.95:
            service.drain()
        else:
            service.compact()
        got = service.query_many(queries, use_cache=False)
        assert [canon_xy(r) for r in got] == naive_answers(live, queries), (
            f"answers diverge after op {i} "
            f"(debt={total_merge_debt(service)})"
        )
        assert len(service) == len(live)
    assert canon(service.live_points()) == canon(live)


def test_single_step_pauses_with_explicit_scheduler_stepping():
    """Drive the scheduler one transfer at a time and query between every
    step: the swap is atomic, so no intermediate debt state is visible."""
    points = seed_points(60, seed=7)
    service = SkylineService(points, ServiceConfig(**LEVELED))
    live = list(points)
    for i in range(service.config.delta_threshold):
        point = Point(700_000.0 + i, 800_000.0 + i * 1.5, 70_000 + i)
        service.insert(point)
        live.append(point)
    probe = RangeQuery()
    expected = canon_xy(range_skyline(live, probe))
    steps = 0
    while total_pending_jobs(service) and steps < 10_000:
        for tower in towers(service):
            if tower.scheduler.pending_jobs:
                tower.scheduler.pay(1)
                steps += 1
                assert canon_xy(service.query(probe)) == expected
    assert total_pending_jobs(service) == 0
    assert canon(service.live_points()) == canon(live)


# ----------------------------------------------------------------------
# Pinned regression: no O(n/B) spike at the old compact threshold
# ----------------------------------------------------------------------
def test_insert_at_threshold_charges_bounded_io_not_a_rebuild():
    points = uniform_points(2_000, universe=10_000_000, seed=3)
    threshold = 64

    def tripping_insert_cost(update_path):
        service = SkylineService(
            points,
            ServiceConfig(
                shard_count=4,
                block_size=16,
                memory_blocks=8,
                delta_threshold=threshold,
                update_path=update_path,
            ),
        )
        for i in range(threshold - 1):
            service.insert(
                Point(20_000_000.0 + i * 1.25, 20_000_000.0 + i * 1.5, 50_000 + i)
            )
        before = service.snapshot()
        service.insert(Point(30_000_000.5, 30_000_000.5, 59_999))
        return (service.snapshot() - before).total, service

    legacy_cost, legacy = tripping_insert_cost("threshold-compact")
    leveled_cost, leveled = tripping_insert_cost("leveled")
    n_over_b = len(points) / legacy.config.block_size
    # The legacy path rebuilt every shard: at least n/B transfers.
    assert legacy.compactions == 1
    assert legacy_cost >= n_over_b
    # The leveled path sealed the memtable and paid at most the bounded
    # step -- more than 10x below the legacy spike, and O(1) in n.
    assert leveled.compactions == 0
    assert leveled_cost <= leveled.config.merge_step_blocks
    assert leveled_cost * 10 <= legacy_cost


def test_worst_case_update_bounded_over_long_run():
    """No update across a long mixed run ever exceeds the merge budget
    plus the O(1) memtable work (here: zero attributed transfers)."""
    points = seed_points(300, seed=11)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=3,
            block_size=16,
            memory_blocks=8,
            delta_threshold=16,
            merge_step_blocks=4,
        ),
    )
    live = list(points)
    rng = random.Random(5)
    worst = 0
    for i in range(200):
        before = service.snapshot()
        if i % 4 == 3 and live:
            assert service.delete(live.pop(rng.randrange(len(live))))
        else:
            point = Point(100_000.0 + i * 1.25, 100_000.0 + i * 1.5, 40_000 + i)
            service.insert(point)
            live.append(point)
        worst = max(worst, (service.snapshot() - before).total)
    assert worst <= service.config.merge_step_blocks
    assert service.merges_completed >= 3
    assert canon(service.live_points()) == canon(live)


def test_delete_flood_safety_valve_reclaims_tombstones():
    """A pure-delete flood must not degrade queries forever: once the
    tombstones alone reach delta_threshold * level_growth, an
    auto-compacting leveled service pays one major compaction to reclaim
    them (the insert path still never triggers a rebuild)."""
    points = seed_points(200, seed=21)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=2,
            block_size=16,
            memory_blocks=8,
            delta_threshold=8,
            level_growth=2,
        ),
    )
    live = list(points)
    for _ in range(40):
        victim = live.pop(0)
        assert service.delete(victim)
    # 16 = 8 * 2 tombstones trip the valve (possibly more than once).
    assert service.compactions >= 1
    assert len(service.delta.tombstones) < 16
    assert canon(service.live_points()) == canon(live)
    assert canon_xy(service.query(RangeQuery())) == canon_xy(
        range_skyline(live, RangeQuery())
    )
    # With auto_compact off the valve stays closed (operator-driven only).
    manual = SkylineService(
        points,
        ServiceConfig(
            shard_count=2,
            block_size=16,
            memory_blocks=8,
            delta_threshold=8,
            level_growth=2,
            auto_compact=False,
        ),
    )
    for victim in points[:40]:
        assert manual.delete(victim)
    assert manual.compactions == 0
    assert len(manual.delta.tombstones) == 40


def test_plan_prunes_levels_outside_the_rectangle():
    """explain() mirrors the execution-side level prune: a level whose
    x-span misses the rectangle contributes no search term."""
    points = seed_points(200, seed=22)
    engine = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=2, block_size=16, memory_blocks=16, delta_threshold=8
        ),
    )
    # Level points all live far to the right of the base universe.
    for i in range(16):
        engine.insert(
            Point(9_000_000.0 + i * 1.25, 9_000_000.0 - i * 1.5, 90_000 + i)
        )
    engine.drain()
    service = engine.backend.service
    assert all_levels(service)
    narrow = TopOpenQuery(0.0, 1_000.0, 0.0)  # misses every level's x-span
    plan = engine.explain(narrow)
    assert [s for s in plan.scopes if s.level is not None] == []
    assert dict(plan.level_layout)  # the layout itself is still reported
    wide = engine.explain(RangeQuery())
    assert [s for s in wide.scopes if s.level is not None]
    assert wide.search_io > plan.search_io


# ----------------------------------------------------------------------
# Tombstone lifecycle across merges
# ----------------------------------------------------------------------
def test_merge_consumes_tombstones_and_reowns_late_ones():
    points = seed_points(40, seed=2)
    service = SkylineService(points, ServiceConfig(**LEVELED))
    # Fill and drain so the fresh points live in an indexed level.
    fresh = [
        Point(500_000.0 + i * 1.25, 500_000.0 + i * 1.5, 30_000 + i)
        for i in range(6)
    ]
    for point in fresh:
        service.insert(point)
    service.drain()
    # The fresh points all route to one shard: its private tower holds
    # the indexed level.
    tower = service.shards[service.router.route_point(500_000.0)].tower
    level_one = tower.levels[1]
    assert canon(level_one.points) == canon(fresh)
    # Delete a level-resident point: the tombstone is owned by the level.
    victim = fresh[2]
    assert service.delete(victim)
    assert service.delta.tombstone_owner(point_key(victim)) == level_one.owner
    # The next merge through that level consumes the tombstone for good.
    for i in range(6):
        service.insert(Point(600_000.0 + i * 1.25, 600_000.0 + i * 1.5, 31_000 + i))
    service.drain()
    assert point_key(victim) not in service.delta.tombstones
    merged = tower.levels[max(tower.levels)]
    assert point_key(victim) not in {point_key(p) for p in merged.points}
    assert canon(service.live_points()) == canon(
        [p for p in points + fresh if p.ident != victim.ident]
        + [Point(600_000.0 + i * 1.25, 600_000.0 + i * 1.5, 31_000 + i) for i in range(6)]
    )


def test_revive_during_inflight_merge_keeps_the_point_alive():
    """Delete a level-resident point, start (but do not finish) the merge
    that would drop it, revive it mid-merge: after the swap the point must
    still be live (re-materialised in the memtable)."""
    points = seed_points(30, seed=8)
    config = ServiceConfig(
        shard_count=1,
        block_size=8,
        memory_blocks=8,
        delta_threshold=4,
        level_growth=2,
        merge_step_blocks=1,
    )
    service = SkylineService(points, config)
    fresh = [Point(400_000.0 + i, 450_000.0 + i * 1.5, 20_000 + i) for i in range(4)]
    for point in fresh:
        service.insert(point)
    service.drain()
    victim = fresh[1]
    assert service.delete(victim)
    # Seal another memtable so a flush job whose sibling input (level 1)
    # owns the tombstone is queued, then *start* it without completing:
    # the staged output has already dropped the victim.
    for i in range(4):
        service.insert(Point(410_000.0 + i, 460_000.0 + i * 1.5, 21_000 + i))
    scheduler = service.shards[0].tower.scheduler
    if scheduler.active is None:
        assert scheduler._start_next()
    assert point_key(victim) in scheduler.active.consumed
    assert point_key(victim) not in {
        point_key(p) for p in scheduler.active.output.points
    }
    # Revive mid-merge, then finish the merge.
    service.insert(victim)
    assert not service.delta.is_deleted(victim)
    service.drain()
    assert point_key(victim) in service.delta.inserts
    live = service.live_points()
    assert point_key(victim) in {point_key(p) for p in live}
    assert canon_xy(service.query(RangeQuery())) == canon_xy(
        range_skyline(live, RangeQuery())
    )


# ----------------------------------------------------------------------
# Durability: exact level state across crashes
# ----------------------------------------------------------------------
def durable_leveled_config(**overrides):
    base = dict(LEVELED, durability=True, wal_group_commit=1)
    base.update(overrides)
    return ServiceConfig(**base)


def test_drain_snapshot_restores_exact_level_layout():
    points = seed_points(40, seed=4)
    service = SkylineService(points, durable_leveled_config())
    rng = random.Random(9)
    live = list(points)
    for i in range(20):
        if i % 5 == 4 and live:
            assert service.delete(live.pop(rng.randrange(len(live))))
        else:
            point = Point(500_000.0 + i * 1.25, 500_000.0 + i * 1.5, 60_000 + i)
            service.insert(point)
            live.append(point)
    service.drain()  # quiescent checkpoint: writes a level-aware snapshot
    manifest = service.store.latest_manifest()
    assert manifest.level_blocks, "drain snapshot must serialise the levels"
    recovered = SkylineService.open(service.store)
    # The exact per-shard level layout -- not just the flattened point set.
    want_levels = all_levels(service)
    got_levels = all_levels(recovered)
    assert sorted(got_levels) == sorted(want_levels)
    for slot in want_levels:
        assert canon(got_levels[slot].points) == canon(
            want_levels[slot].points
        )
    assert canon(
        [p for p in recovered.delta.inserts.values()]
    ) == canon([p for p in service.delta.inserts.values()])
    assert canon(recovered.delta.tombstones.values()) == canon(
        service.delta.tombstones.values()
    )
    assert canon(recovered.live_points()) == canon(live)
    assert recovered.recovery["snapshot_levels"] == len(want_levels)


def layout_snapshot(service):
    """The full observable LSM state: every shard's levels, inherited
    overlays and frozen memtables, the memtable, tombstones, and the
    schedulers' in-flight progress."""
    return {
        "levels": {
            slot: canon(comp.points)
            for slot, comp in all_levels(service).items()
        },
        "overlays": {
            shard.sid: canon(
                [p for ref in shard.tower.inherited for p in ref.points()]
            )
            for shard in service.shards
            if shard.tower is not None and shard.tower.inherited
        },
        "frozen": sorted(
            canon(c.points) for t in towers(service) for c in t.frozen
        ),
        "memtable": canon(service.delta.inserts.values()),
        "tombstones": canon(service.delta.tombstones.values()),
        "merge_debt": total_merge_debt(service),
        "pending_jobs": total_pending_jobs(service),
    }


def test_opening_leveled_store_with_legacy_config_raises_clearly():
    """A store whose WAL holds leveled records (flush/drain) cannot be
    replayed under update_path='threshold-compact': the mismatch must be
    a descriptive ValueError, not a mid-replay assertion."""
    import pytest

    points = seed_points(20, seed=5)
    service = SkylineService(points, durable_leveled_config(delta_threshold=4))
    for i in range(6):  # past the threshold: logs an OP_FLUSH record
        service.insert(Point(200_000.0 + i * 1.25, 200_000.0 + i * 1.5, 40_000 + i))
    service.close()
    with pytest.raises(ValueError, match="leveled"):
        SkylineService.open(service.store, update_path="threshold-compact")
    # Opened with the recorded (leveled) config, recovery works as usual.
    recovered = SkylineService.open(service.store)
    assert canon(recovered.live_points()) == canon(service.live_points())


def test_crash_at_every_prefix_recovers_exact_level_state():
    """Beyond the live-set property of test_durability: after a crash the
    recovered *level layout* -- levels, frozen memtables, memtable,
    tombstones, even the in-flight merge debt -- matches what the live
    service held at that WAL record boundary (replay is deterministic, so
    recovery reproduces the exact scheduling history)."""
    points = seed_points(24, seed=6)
    service = SkylineService(points, durable_leveled_config())
    rng = random.Random(3)
    expected = {service.wal.durable_count + service.wal.pending: layout_snapshot(service)}
    for i in range(16):
        roll = rng.random()
        if roll < 0.6:
            service.insert(
                Point(300_000.0 + i * 1.25, 300_000.0 + i * 1.5, 80_000 + i)
            )
        elif roll < 0.8 and len(service):
            live = service.live_points()
            service.delete(live[rng.randrange(len(live))])
        else:
            service.drain()
        expected[service.wal.durable_count + service.wal.pending] = (
            layout_snapshot(service)
        )
    checked = 0
    for prefix, crashed in CrashSimulator(service.store):
        if prefix not in expected:
            # A mid-call prefix (an insert record whose call also emitted
            # a flush record): the live service never paused there, so
            # only the live-set property applies -- covered by
            # test_durability's crash property.
            continue
        recovered = SkylineService.open(crashed)
        assert layout_snapshot(recovered) == expected[prefix], (
            f"level state diverges after crash at prefix {prefix}"
        )
        checked += 1
    assert checked >= 10  # the property actually exercised real prefixes


# ----------------------------------------------------------------------
# Accounting: the ledger partition holds through every leveled path
# ----------------------------------------------------------------------
def test_ledger_partition_through_seals_merges_drains_and_compacts():
    points = seed_points(200, seed=12)
    engine = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=3,
            block_size=16,
            memory_blocks=8,
            delta_threshold=12,
            merge_step_blocks=3,
        ),
    )
    rng = random.Random(1)
    for i in range(60):
        if i % 6 == 5:
            engine.query(RangeQuery())
        elif i % 6 == 4:
            live = engine.backend.service.live_points()
            engine.delete(live[rng.randrange(len(live))])
        else:
            engine.insert(
                Point(900_000.0 + i * 1.25, 900_000.0 + i * 1.5, 70_000 + i)
            )
        assert (
            engine.attributed_io() + engine.maintenance_io()
            == engine.io_total() - engine.build_io
        ), f"partition broke after op {i}"
    engine.drain()
    engine.compact()
    engine.drop_caches()
    engine.query(RangeQuery())
    assert (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


def test_explain_reports_level_layout_and_update_bound():
    points = seed_points(200, seed=13)
    engine = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=2,
            block_size=16,
            memory_blocks=16,
            delta_threshold=8,
            level_growth=4,
        ),
    )
    for i in range(20):
        engine.insert(Point(800_000.0 + i * 1.25, 800_000.0 + i * 1.5, 60_000 + i))
    engine.drain()
    service = engine.backend.service
    plan = engine.explain(RangeQuery())
    assert plan.update_path == "leveled"
    assert "amortized" in plan.update_bound
    layout = dict(plan.level_layout)
    assert layout[0] == len(service.delta.inserts)
    levels = all_levels(service)
    for depth in {level for _, level in levels}:
        assert layout[depth] == sum(
            len(comp) for (_, level), comp in levels.items() if level == depth
        )
    # One scope per visited shard plus one per level structure (the full
    # rectangle prunes nothing, so every shard's levels all contribute).
    level_scopes = [s for s in plan.scopes if s.level is not None]
    assert len(level_scopes) == len(levels)
    assert plan.shards_visited == len(service.shards)
    # The instantiated amortized bound: (g/B) * log_g(n/c).
    g = service.config.level_growth
    b = service.config.block_size
    c = service.config.delta_threshold
    n = len(service)
    assert plan.update_io == (
        g * max(1.0, math.log(max(2.0, n / c), g)) / b
    )
    # The legacy path quotes the rebuild bound instead.
    legacy = SkylineEngine.sharded(
        points, ServiceConfig(shard_count=2, update_path="threshold-compact")
    )
    legacy_plan = legacy.explain(RangeQuery())
    assert legacy_plan.update_path == "threshold-compact"
    assert "rebuild" in legacy_plan.update_bound


# ----------------------------------------------------------------------
# Components and the generalised merge
# ----------------------------------------------------------------------
def test_merge_component_skylines_overlapping_sources():
    a = [Point(0, 9), Point(4, 6), Point(9, 1)]  # a skyline
    b = [Point(1, 7), Point(5, 5)]  # overlaps a's x-range
    c = [Point(2, 3)]  # dominated by members of both
    merged = merge_component_skylines([a, b, c])
    assert canon_xy(merged) == canon_xy(
        range_skyline(a + b + c, RangeQuery())
    )
    assert merge_component_skylines([[], [], []]) == []
    # Non-skyline sources are fine: dominated members are swept out.
    messy = [Point(3, 2), Point(6, 4), Point(7, 8)]
    merged = merge_component_skylines([a, messy])
    assert canon_xy(merged) == canon_xy(range_skyline(a + messy, RangeQuery()))


def test_level_capacities_grow_geometrically():
    manager = LevelManager(
        em_config=EMConfig(block_size=8, memory_blocks=8),
        epsilon=0.5,
        block_size=8,
        memtable_capacity=10,
        level_growth=3,
        merge_step_blocks=2,
        delta=DeltaBuffer(),
        maintenance=IOStats(),
        retired=IOStats(),
        on_layout_change=lambda: None,
    )
    assert [manager.capacity(j) for j in range(4)] == [10, 30, 90, 270]


def test_delta_buffer_seal_and_restore_roundtrip():
    delta = DeltaBuffer()
    pts = [Point(3.0, 1.0, 2), Point(1.0, 2.0, 0), Point(2.0, 3.0, 1)]
    for p in pts:
        delta.insert(p)
    sealed = delta.seal_inserts()
    assert [p.ident for p in sealed] == [0, 1, 2]  # x-sorted
    assert len(delta.inserts) == 0
    delta.add_tombstone(pts[0], ("c", 7))
    assert delta.tombstone_owner(point_key(pts[0])) == ("c", 7)
    assert delta.owned_tombstones(("c", 7)) == {point_key(pts[0]): pts[0]}
    delta.drop_tombstone(point_key(pts[0]))
    assert not delta.tombstones
    delta.restore_insert(pts[1])
    assert point_key(pts[1]) in delta.inserts
