"""Tunables of the sharded skyline service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.em.config import EMConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of a :class:`repro.service.SkylineService`.

    Attributes
    ----------
    shard_count:
        Number of x-range shards the point set is partitioned into.
    block_size:
        ``B`` of every shard's simulated machine (records per block).
    memory_blocks:
        Buffer-pool frames of *each shard's* machine.  The service models a
        scale-out deployment -- every shard runs on its own node with its
        own buffer pool -- so the aggregate cache grows with the shard
        count, exactly as adding servers grows a cluster's RAM.  Cold-cache
        benchmarks are unaffected (they drop every pool before measuring);
        warm comparisons against a monolithic index should state this
        asymmetry, as ``repro.bench.bench_service`` does.
    epsilon:
        The query/update trade-off knob forwarded to every shard's
        :class:`repro.RangeSkylineIndex`.
    delta_threshold:
        Once the in-memory delta (pending inserts plus tombstones) reaches
        this many entries, the next write triggers :meth:`SkylineService
        .compact` (when ``auto_compact`` is on).
    cache_capacity:
        Maximum number of query results kept in the LRU result cache
        (0 disables caching).
    parallelism:
        Worker threads for batch execution; 1 executes shard worklists
        sequentially (the default, which keeps I/O accounting exact --
        the shared I/O counters are not synchronised).
    auto_compact:
        Whether writes trigger compaction as soon as the delta exceeds
        ``delta_threshold``.  Turn off to drive :meth:`compact` from an
        external scheduler, as a real service would.
    """

    shard_count: int = 4
    block_size: int = 64
    memory_blocks: int = 32
    epsilon: float = 0.5
    delta_threshold: int = 128
    cache_capacity: int = 256
    parallelism: int = 1
    auto_compact: bool = True

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if self.delta_threshold < 1:
            raise ValueError(
                f"delta_threshold must be >= 1, got {self.delta_threshold}"
            )
        if self.cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")

    def shard_em_config(self) -> EMConfig:
        """The machine each shard runs on (one node of the scale-out fleet)."""
        return EMConfig(block_size=self.block_size, memory_blocks=self.memory_blocks)
