"""Tests for the unified SkylineEngine front door (repro.engine)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AntiDominanceQuery,
    BottomOpenQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    Point,
    RangeQuery,
    RightOpenQuery,
    TopOpenQuery,
    range_skyline,
)
from repro.core.queries import classify
from repro.em import EMConfig
from repro.engine import (
    BOUND_DYNAMIC_EASY,
    BOUND_FOUR_SIDED,
    BOUND_STATIC_EASY,
    QueryRequest,
    SkylineEngine,
    UpdateRequest,
    structure_for,
)
from repro.service import ServiceConfig

# One representative rectangle per Figure-2 variant (plus the degenerate
# shapes classify knows about), over the universe the fixtures use.
VARIANT_QUERIES = {
    "top-open": TopOpenQuery(1_000, 6_000, 500),
    "right-open": RightOpenQuery(1_000, 500, 6_000),
    "bottom-open": BottomOpenQuery(1_000, 6_000, 5_000),
    "left-open": LeftOpenQuery(6_000, 500, 5_000),
    "dominance": DominanceQuery(1_000, 500),
    "anti-dominance": AntiDominanceQuery(6_000, 5_000),
    "contour": ContourQuery(6_000),
    "4-sided": FourSidedQuery(1_000, 6_000, 500, 5_000),
    "x-slab": RangeQuery(x_lo=1_000, x_hi=6_000),
    "y-slab": RangeQuery(y_lo=500, y_hi=5_000),
    "1-sided": RangeQuery(x_lo=1_000),
    "unbounded": RangeQuery(),
}

EXPECTED_STRUCTURE = {
    "top-open": "top-open",
    "dominance": "top-open",
    "contour": "top-open",
    "1-sided": "top-open",
    "unbounded": "top-open",
    "right-open": "right-open",
    "bottom-open": "four-sided",
    "left-open": "four-sided",
    "anti-dominance": "four-sided",
    "4-sided": "four-sided",
    "x-slab": "four-sided",
    "y-slab": "four-sided",
}


def make_points(n, universe=10_000, seed=9):
    import random

    rng = random.Random(seed)
    xs = rng.sample(range(universe), n)
    ys = rng.sample(range(universe), n)
    return [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]


def make_engines(points, shard_count=4, block_size=16, **service_overrides):
    local = SkylineEngine.local(
        points,
        dynamic=True,
        em_config=EMConfig(block_size=block_size, memory_blocks=32),
    )
    sharded = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=block_size,
            memory_blocks=32,
        ),
        **service_overrides,
    )
    return local, sharded


def canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


# ----------------------------------------------------------------------
# explain(): structure choice + instantiated paper bound, both backends
# ----------------------------------------------------------------------
def test_explain_structure_choice_every_variant_both_backends():
    points = make_points(300)
    local, sharded = make_engines(points)
    for variant, rect in VARIANT_QUERIES.items():
        assert classify(rect) == variant
        assert structure_for(variant) == EXPECTED_STRUCTURE[variant]
        for engine in (local, sharded):
            plan = engine.explain(rect)
            assert plan.variant == variant
            assert plan.structure == EXPECTED_STRUCTURE[variant]
            assert plan.backend == engine.backend.name
            assert plan.block_size == 16
            if engine is local:
                assert plan.n == 300
            else:
                # Sharded plans scope n to the *visited* shards only.
                service = engine.backend.service
                visited = service.router.shards_for(rect)
                assert plan.n == sum(
                    len(service.shards[sid]) for sid in visited
                )
                assert plan.n == 300 or plan.shards_pruned > 0


def test_explain_instantiates_the_paper_bound_locally():
    points = make_points(300)
    local, sharded = make_engines(points)
    b = 16
    for variant, rect in VARIANT_QUERIES.items():
        plan = local.explain(rect)
        if plan.structure == "four-sided":
            eps = local.backend.index.four_sided_epsilon
            assert plan.bound == BOUND_FOUR_SIDED
            assert plan.search_io == pytest.approx(max(1.0, (300 / b) ** eps))
            assert plan.per_result_io == pytest.approx(1.0 / b)
        else:
            # The local fixture is dynamic: Theorem 4's bound applies.
            eps = 0.5
            assert plan.bound == BOUND_DYNAMIC_EASY
            assert plan.search_io == pytest.approx(
                max(1.0, math.log(300 / b, 2 * b**eps))
            )
            assert plan.per_result_io == pytest.approx(1.0 / b ** (1 - eps))
        assert plan.predicted_io(0) == pytest.approx(plan.search_io)
        assert plan.predicted_io(32) == pytest.approx(
            plan.search_io + 32 * plan.per_result_io
        )
        assert str(b) in plan.formula

    # Sharded shards are static structures: Theorem 1's bound, summed
    # over the visited shards.
    for variant, rect in VARIANT_QUERIES.items():
        plan = sharded.explain(rect)
        expected_bound = (
            BOUND_FOUR_SIDED
            if plan.structure == "four-sided"
            else BOUND_STATIC_EASY
        )
        assert plan.bound == expected_bound
        assert plan.shards_visited + plan.shards_pruned == 4
        assert plan.search_io == pytest.approx(
            sum(scope.search_io for scope in plan.scopes)
        )
        assert sum(scope.n for scope in plan.scopes) == plan.n


def test_explain_prunes_shards_for_narrow_rectangles():
    points = make_points(400)
    _, sharded = make_engines(points, shard_count=8)
    service = sharded.backend.service
    lo, hi = service.router.shard_range(3)
    mid = (lo + hi) / 2
    narrow = TopOpenQuery(mid, math.nextafter(mid, hi), 0)
    plan = sharded.explain(narrow)
    assert plan.shards_visited == 1
    assert plan.shards_pruned == 7
    assert plan.scopes[0].shard == 3
    wide = sharded.explain(RangeQuery())
    assert wide.shards_visited == 8
    assert wide.shards_pruned == 0
    # Pruning shows in the instantiated bound, not just the counts.
    assert plan.search_io < wide.search_io


def test_explain_performs_no_io():
    points = make_points(200)
    for engine in make_engines(points):
        before = engine.io_total()
        for rect in VARIANT_QUERIES.values():
            engine.explain(rect)
        assert engine.io_total() == before


# ----------------------------------------------------------------------
# Reports: per-request ledger deltas sum exactly to the backend ledger
# ----------------------------------------------------------------------
def run_mixed_workload(engine, points, fresh_points):
    reports = []
    for rect in VARIANT_QUERIES.values():
        reports.append(engine.query(rect).report)
    for point in fresh_points:
        reports.append(engine.insert(point).report)
    for victim in points[:5]:
        reports.append(engine.delete(victim).report)
    # Repeats: cache hits on the sharded backend, recomputation locally.
    for rect in list(VARIANT_QUERIES.values())[:4]:
        reports.append(engine.query(rect).report)
        reports.append(
            engine.query(QueryRequest(rect, consistency="fresh")).report
        )
    return reports


def test_report_blocks_sum_to_ledger_total_both_backends():
    points = make_points(250)
    fresh = [
        Point(20_000.0 + i, 20_000.0 + i * 2.0, 10_000 + i) for i in range(24)
    ]
    # delta_threshold=16 forces a compaction mid-workload on the service:
    # the insert that trips it pays the rebuild in its own report.
    local, sharded = make_engines(points, delta_threshold=16)
    for engine in (local, sharded):
        base = engine.io_total()
        assert base == engine.build_io
        reports = run_mixed_workload(engine, points, fresh)
        assert sum(r.blocks for r in reports) == engine.io_total() - base
        assert engine.attributed_io() == engine.io_total() - engine.build_io
        assert engine.requests_served == len(reports)
        for report in reports:
            assert report.blocks == report.reads + report.writes
            assert report.backend == engine.backend.name


def test_sharded_compaction_is_charged_to_the_tripping_update():
    """Legacy threshold-compact path: the update that trips the threshold
    pays the whole O(n/B) rebuild in its own report."""
    points = make_points(120)
    _, sharded = make_engines(
        points, delta_threshold=4, update_path="threshold-compact"
    )
    cheap = [sharded.insert(Point(30_000.0 + i, 30_000.0 + i, 5_000 + i)) for i in range(3)]
    tripping = sharded.insert(Point(40_000.0, 40_000.0, 5_999))
    assert all(r.report.blocks == 0 for r in cheap)  # delta inserts are in-memory
    assert tripping.report.blocks > 0  # the rebuild landed on this request
    assert sharded.backend.service.compactions == 1


def test_leveled_updates_charge_bounded_maintenance_not_rebuilds():
    """Leveled path: the update at the same threshold seals the memtable
    and pays at most merge_step_blocks of incremental debt, reported as
    maintenance -- never an O(n/B) rebuild in its attributed charge."""
    points = make_points(120)
    _, sharded = make_engines(
        points, delta_threshold=4, merge_step_blocks=4
    )
    service = sharded.backend.service
    reports = [
        sharded.insert(Point(30_000.0 + i, 30_000.0 + i, 5_000 + i)).report
        for i in range(16)
    ]
    assert service.compactions == 0
    assert service.towers()
    assert service.merges_completed >= 1
    budget = service.config.merge_step_blocks
    for report in reports:
        assert report.blocks == 0  # memtable inserts are in-memory
        assert report.maintenance_blocks <= budget
    assert sharded.maintenance_io() == sum(
        r.maintenance_blocks for r in reports
    )
    sharded.drain()  # outstanding debt lands in maintenance too
    assert (
        sharded.attributed_io() + sharded.maintenance_io()
        == sharded.io_total() - sharded.build_io
    )
    # The answers stay correct through seals, merges and the drain.
    assert canon(sharded.query(RangeQuery()).points) == canon(
        range_skyline(service.live_points(), RangeQuery())
    )


def test_query_batch_native_executor_results_and_accounting():
    points = make_points(250)
    rects = list(VARIANT_QUERIES.values()) + list(VARIANT_QUERIES.values())[:3]
    for parallelism in (1, 4):
        local, sharded = make_engines(points, parallelism=parallelism)
        for engine in (local, sharded):
            expected = [canon(engine.query(QueryRequest(r, consistency="fresh")).points) for r in rects]
            before = engine.io_total()
            results, batch_report = engine.query_batch(
                [QueryRequest(r, consistency="fresh") for r in rects]
            )
            assert [canon(r.points) for r in results] == expected
            # The batch report carries the whole call's exact ledger delta;
            # per-request reports in batch mode carry traces, not blocks.
            assert batch_report.blocks == engine.io_total() - before
            assert batch_report.kind == "batch"
            assert all(r.report.blocks == 0 for r in results)
            assert (
                engine.attributed_io() + engine.maintenance_io()
                == engine.io_total() - engine.build_io
            )
    # Parallel and serial sharded batches charge bit-identical totals.
    eng_serial = make_engines(points, parallelism=1)[1]
    eng_par = make_engines(points, parallelism=4)[1]
    fresh = [QueryRequest(r, consistency="fresh") for r in rects]
    _, serial_report = eng_serial.query_batch(fresh)
    _, par_report = eng_par.query_batch(fresh)
    assert serial_report.blocks == par_report.blocks


def test_query_batch_coalesces_duplicates_on_the_service():
    points = make_points(200)
    _, sharded = make_engines(points)
    rect = TopOpenQuery(500, 8_000, 100)
    results, _ = sharded.query_batch(
        [QueryRequest(rect, consistency="fresh")] * 4
    )
    service = sharded.backend.service
    assert service.coalesced >= 3  # duplicates computed once
    assert all(canon(r.points) == canon(results[0].points) for r in results)


def test_engine_compact_charges_maintenance_not_requests():
    points = make_points(150)
    local, sharded = make_engines(points, delta_threshold=1_000)
    for i in range(6):
        sharded.insert(Point(50_000.5 + i, 50_000.5 + i, 8_000 + i))
    attributed_before = sharded.attributed_io()
    sharded.compact()
    assert sharded.backend.service.compactions == 1
    assert sharded.attributed_io() == attributed_before  # not a request
    assert sharded.maintenance_io() > 0  # the rebuild was still charged
    local.compact()  # no-op on the monolithic backend
    for engine in (local, sharded):
        assert (
            engine.attributed_io() + engine.maintenance_io()
            == engine.io_total() - engine.build_io
        )


def test_query_reports_cache_hits_and_fresh_bypass():
    points = make_points(200)
    _, sharded = make_engines(points)
    rect = TopOpenQuery(500, 8_000, 100)
    first = sharded.query(rect)
    assert not first.report.cache_hit
    second = sharded.query(rect)
    assert second.report.cache_hit
    assert second.report.blocks == 0
    assert canon(second.points) == canon(first.points)
    fresh = sharded.query(QueryRequest(rect, consistency="fresh"))
    assert not fresh.report.cache_hit
    assert canon(fresh.points) == canon(first.points)


def test_query_report_tombstone_fallback_flag():
    points = make_points(150)
    _, sharded = make_engines(points)
    service = sharded.backend.service
    victim = points[0]
    assert sharded.delete(victim).applied
    covering = FourSidedQuery(victim.x - 1, victim.x + 1, victim.y - 1, victim.y + 1)
    report = sharded.query(QueryRequest(covering, consistency="fresh")).report
    assert report.tombstone_fallback
    away = service.router.shard_range(service.router.route_point(victim.x))
    # A rectangle in another shard's range never sees the tombstone.
    other_sid = next(
        sid
        for sid in range(len(service.shards))
        if sid != service.router.route_point(victim.x)
    )
    lo, hi = service.router.shard_range(other_sid)
    lo = max(lo, -1e9)
    hi = min(hi, 1e9)
    elsewhere = sharded.query(
        QueryRequest(
            FourSidedQuery(lo, math.nextafter(hi, lo), -1e9, 1e9),
            consistency="fresh",
        )
    ).report
    assert not elsewhere.tombstone_fallback
    assert away  # silence unused warning


# ----------------------------------------------------------------------
# Pagination
# ----------------------------------------------------------------------
def test_limit_and_cursor_paginate_in_x_order():
    points = make_points(300)
    for engine in make_engines(points):
        rect = RangeQuery()
        full = engine.query(rect)
        assert full.next_cursor is None
        assert full.total_results == len(full.points)
        assert [p.x for p in full.points] == sorted(p.x for p in full.points)

        collected = []
        cursor = None
        pages = 0
        while True:
            page = engine.query(QueryRequest(rect, limit=3, cursor=cursor))
            assert len(page.points) <= 3
            assert page.total_results == full.total_results
            collected.extend(page.points)
            pages += 1
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
        assert canon(collected) == canon(full.points)
        assert pages == math.ceil(max(1, full.total_results) / 3)


def test_request_validation():
    with pytest.raises(ValueError):
        QueryRequest(RangeQuery(), limit=0)
    with pytest.raises(ValueError):
        QueryRequest(RangeQuery(), consistency="eventual")
    with pytest.raises(ValueError):
        UpdateRequest("upsert", Point(1, 2))


# ----------------------------------------------------------------------
# Degenerate rectangles: classify -> engine -> both backends
# ----------------------------------------------------------------------
def test_degenerate_empty_ranges_raise_at_the_rectangle():
    with pytest.raises(ValueError):
        RangeQuery(x_lo=2.0, x_hi=1.0)
    with pytest.raises(ValueError):
        RangeQuery(y_lo=5.0, y_hi=4.0)


def test_degenerate_rectangles_all_layers_both_backends():
    points = make_points(200)
    anchor = points[7]
    degenerate = [
        # alpha1 == alpha2: a vertical line through a stored point.
        (TopOpenQuery(anchor.x, anchor.x, -1e18), "top-open"),
        (FourSidedQuery(anchor.x, anchor.x, -1e18, 1e18), "4-sided"),
        # A vertical line through empty space.
        (TopOpenQuery(anchor.x + 0.5, anchor.x + 0.5, -1e18), "top-open"),
        # A horizontal line (y_lo == y_hi) through a stored point.
        (FourSidedQuery(-1e18, 1e18, anchor.y, anchor.y), "4-sided"),
        (RightOpenQuery(anchor.x - 1, anchor.y, anchor.y), "right-open"),
        # A single point rectangle.
        (FourSidedQuery(anchor.x, anchor.x, anchor.y, anchor.y), "4-sided"),
        # Unbounded on every side.
        (RangeQuery(), "unbounded"),
    ]
    engines = make_engines(points)
    for rect, expected_label in degenerate:
        assert classify(rect) == expected_label
        expected = canon(range_skyline(points, rect))
        for engine in engines:
            plan = engine.explain(rect)
            assert plan.structure == EXPECTED_STRUCTURE[expected_label]
            result = engine.query(QueryRequest(rect, consistency="fresh"))
            assert canon(result.points) == expected, (
                engine.backend.name,
                expected_label,
            )


# ----------------------------------------------------------------------
# Backend equivalence on a hypothesis-generated workload
# ----------------------------------------------------------------------
@st.composite
def workloads(draw):
    n_initial = draw(st.integers(min_value=6, max_value=24))
    n_pool = draw(st.integers(min_value=0, max_value=10))
    total = n_initial + n_pool
    xs = draw(
        st.lists(
            st.integers(min_value=0, max_value=100_000),
            min_size=total,
            max_size=total,
            unique=True,
        )
    )
    ys = draw(
        st.lists(
            st.integers(min_value=0, max_value=100_000),
            min_size=total,
            max_size=total,
            unique=True,
        )
    )
    points = [
        Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))
    ]
    initial, pool = points[:n_initial], points[n_initial:]
    ops = []
    live = list(initial)
    pending = list(pool)
    for code in draw(
        st.lists(st.integers(min_value=0, max_value=3), max_size=24)
    ):
        if code == 0 and pending:
            ops.append(("insert", pending.pop()))
        elif code == 1 and live:
            victim_index = draw(
                st.integers(min_value=0, max_value=len(live) - 1)
            )
            ops.append(("delete", live.pop(victim_index)))
        else:
            a = draw(st.integers(min_value=0, max_value=100_000))
            b = draw(st.integers(min_value=0, max_value=100_000))
            c = draw(st.integers(min_value=0, max_value=100_000))
            d = draw(st.integers(min_value=0, max_value=100_000))
            x_lo, x_hi = sorted((float(a), float(b)))
            y_lo, y_hi = sorted((float(c), float(d)))
            shape = draw(st.integers(min_value=0, max_value=5))
            if shape == 0:
                rect = TopOpenQuery(x_lo, x_hi, y_lo)
            elif shape == 1:
                rect = RightOpenQuery(x_lo, y_lo, y_hi)
            elif shape == 2:
                rect = FourSidedQuery(x_lo, x_hi, y_lo, y_hi)
            elif shape == 3:
                rect = LeftOpenQuery(x_hi, y_lo, y_hi)
            elif shape == 4:
                rect = DominanceQuery(x_lo, y_lo)
            else:
                rect = RangeQuery()
            ops.append(("query", rect))
    ops.append(("query", RangeQuery()))  # always compare the full skyline
    return initial, ops


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_backends_agree_on_hypothesis_workloads(workload):
    initial, ops = workload
    local = SkylineEngine.local(
        initial, dynamic=True, em_config=EMConfig(block_size=8, memory_blocks=16)
    )
    sharded = SkylineEngine.sharded(
        initial,
        ServiceConfig(
            shard_count=3, block_size=8, memory_blocks=16, delta_threshold=8
        ),
    )
    for op, payload in ops:
        if op == "insert":
            a = local.insert(payload)
            b = sharded.insert(payload)
            assert a.applied and b.applied
        elif op == "delete":
            a = local.delete(payload)
            b = sharded.delete(payload)
            assert a.applied == b.applied
        else:
            ra = local.query(payload)
            rb = sharded.query(payload)
            assert canon(ra.points) == canon(rb.points)
            assert ra.total_results == rb.total_results
    assert len(local) == len(sharded)
    assert local.attributed_io() == local.io_total() - local.build_io
    assert sharded.attributed_io() == sharded.io_total() - sharded.build_io


# ----------------------------------------------------------------------
# Lifecycle: describe and durability passthrough
# ----------------------------------------------------------------------
def test_engine_describe_shapes():
    points = make_points(100)
    local, sharded = make_engines(points)
    for engine in (local, sharded):
        engine.query(RangeQuery())
        status = engine.describe()
        assert status["engine"]["requests_served"] == 1
        assert status["engine"]["io_total"] == engine.io_total()
        assert status["backend"]["backend"] == engine.backend.name
    # The sharded backend surfaces the service's public counter blocks.
    backend_status = sharded.describe()["backend"]
    assert {"hits", "misses", "entries", "hit_rate"} <= set(
        backend_status["result_cache"]
    )
    assert backend_status["update_path"] == "leveled"
    memtable_row = backend_status["levels"][0]
    assert {"level", "records", "tombstones", "capacity", "merge_debt"} <= set(
        memtable_row
    )


def test_engine_durability_open_close_passthrough():
    points = make_points(60, universe=5_000)
    engine = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=2,
            block_size=16,
            memory_blocks=16,
            durability=True,
            wal_group_commit=4,
        ),
    )
    engine.insert(Point(90_000.0, 90_000.0, 7_000))
    assert engine.delete(points[3]).applied
    engine.close()  # WAL tail forced durable
    store = engine.backend.service.store
    reopened = SkylineEngine.open(store)
    assert len(reopened) == len(engine)
    assert canon(reopened.query(RangeQuery()).points) == canon(
        engine.query(RangeQuery()).points
    )
    detail = reopened.describe()["backend"]["durability_detail"]
    assert detail["recovery"]["recovery_io"] >= 0
    # Recovery cost is build cost, not request cost.
    assert reopened.attributed_io() == reopened.io_total() - reopened.build_io
