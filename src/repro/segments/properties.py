"""Checkers for the nesting and monotonicity properties of Lemma 2.

These are used by tests (including property-based tests over random point
sets) and by the SABE construction's internal assertions.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.segments.segment import HorizontalSegment


def is_nesting(segments: Sequence[HorizontalSegment]) -> bool:
    """Whether every pair of x-intervals is disjoint or nested (Lemma 2)."""
    ordered = sorted(segments, key=lambda s: (s.x_left, -s.x_right))
    # Sweep with a stack of currently open intervals; a violation manifests
    # as an interval that starts inside an open one but ends after it.
    stack: List[HorizontalSegment] = []
    for segment in ordered:
        while stack and stack[-1].x_right <= segment.x_left:
            stack.pop()
        if stack and segment.x_right > stack[-1].x_right:
            return False
        stack.append(segment)
    return True


def is_monotonic(segments: Sequence[HorizontalSegment], samples: int = 64) -> bool:
    """Whether on every vertical line the stabbed segments grow with y (Lemma 2).

    We verify the property on the vertical lines through every segment's left
    endpoint (plus ``samples`` evenly spaced extra lines), which is exhaustive
    for the finite arrangement induced by the segments.
    """
    if not segments:
        return True
    xs = sorted({s.x_left for s in segments})
    finite_rights = [s.x_right for s in segments if not s.is_unbounded]
    if finite_rights:
        span = max(finite_rights) - min(xs)
        extra = [min(xs) + span * i / max(1, samples) for i in range(samples)]
        xs = sorted(set(xs) | set(extra))
    for x in xs:
        stabbed = sorted((s for s in segments if s.covers_x(x)), key=lambda s: s.y)
        lengths = [s.length for s in stabbed]
        if any(b < a for a, b in zip(lengths, lengths[1:])):
            return False
    return True
