"""Tests for the baselines (naive scan, R-tree BBS, internal-memory)."""

import random

from repro.baselines import InternalMemoryStructure, NaiveScanSkyline, RTree, RTreeBBS
from repro.baselines.rtree import Rect
from repro.core.point import Point
from repro.core.queries import FourSidedQuery, RangeQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.em.config import EMConfig
from repro.em.storage import StorageManager


def make_storage(block_size=16):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=8))


def random_points(n, universe, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(universe), n)
    ys = rng.sample(range(universe), n)
    return [Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))]


def random_queries(universe, count, seed):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        x_lo, x_hi = sorted(rng.sample(range(universe), 2))
        y_lo, y_hi = sorted(rng.sample(range(universe), 2))
        queries.append(FourSidedQuery(x_lo, x_hi, y_lo, y_hi))
        queries.append(TopOpenQuery(x_lo, x_hi, y_lo))
    return queries


def test_rect_helpers():
    rect = Rect.of_points([Point(1, 2), Point(3, 0)])
    assert (rect.x_lo, rect.x_hi, rect.y_lo, rect.y_hi) == (1, 3, 0, 2)
    assert rect.upper_right() == (3, 2)
    assert rect.intersects(RangeQuery(x_lo=2, x_hi=4, y_lo=1, y_hi=5))
    assert not rect.intersects(RangeQuery(x_lo=4, x_hi=5))
    merged = Rect.of_rects([rect, Rect(10, 11, 10, 11)])
    assert merged.x_hi == 11 and merged.y_lo == 0


def test_all_baselines_agree_with_brute_force():
    points = random_points(250, 3000, 1)
    queries = random_queries(3000, 30, 2)
    structures = [
        NaiveScanSkyline(make_storage(), points),
        RTreeBBS(make_storage(), points),
        InternalMemoryStructure(make_storage(), points),
    ]
    for query in queries:
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        for structure in structures:
            got = sorted((p.x, p.y) for p in structure.query(query))
            assert got == expected


def test_baselines_handle_empty_results_and_sizes():
    points = random_points(60, 500, 3)
    empty_query = FourSidedQuery(1000, 2000, 1000, 2000)
    naive = NaiveScanSkyline(make_storage(), points)
    bbs = RTreeBBS(make_storage(), points)
    internal = InternalMemoryStructure(make_storage(), points)
    assert naive.query(empty_query) == []
    assert bbs.query(empty_query) == []
    assert internal.query(empty_query) == []
    assert len(naive) == len(bbs) == len(internal) == 60
    assert naive.block_count() > 0
    assert bbs.block_count() > 0
    assert internal.block_count() == 60


def test_rtree_packing_respects_block_size():
    points = random_points(400, 8000, 4)
    storage = make_storage(block_size=16)
    tree = RTree(storage, points)
    assert tree.block_count() >= 400 // 16
    empty = RTree(make_storage(), [])
    assert empty.block_count() == 0


def test_naive_query_cost_scales_with_n():
    small = random_points(200, 4000, 5)
    large = random_points(1600, 40_000, 6)
    query = TopOpenQuery(0, 1e9, -1e9)
    costs = {}
    for name, points in [("small", small), ("large", large)]:
        storage = make_storage(block_size=16)
        structure = NaiveScanSkyline(storage, points)
        before = storage.snapshot()
        structure.query(query)
        costs[name] = (storage.snapshot() - before).total
    assert costs["large"] > 4 * costs["small"]


def test_internal_structure_pays_omega_k():
    points = random_points(300, 5000, 7)
    storage = make_storage(block_size=16)
    structure = InternalMemoryStructure(storage, points)
    query = TopOpenQuery(0, 5000, -1)
    storage.drop_cache()
    before = storage.snapshot()
    result = structure.query(query)
    io = (storage.snapshot() - before).total
    # Every candidate point costs at least one block read.
    assert io >= len(result)
