"""The per-shard level tower of the leveled update path.

Each base :class:`~repro.service.shard.Shard` owns one
:class:`LevelManager` -- its private memtable overflow structure --
holding everything between the shared level-0 memtable (the service's
:class:`~repro.service.delta.DeltaBuffer`, cut by shard range) and the
shard's static base index:

* **frozen memtables** -- sealed level-0 batches of this shard's range
  awaiting their flush merge; in memory, scan-free, visible to every
  query that visits the shard;
* **levels 1..k** -- immutable :class:`~repro.service.lsm.Component`
  structures of geometrically increasing capacity
  (``delta_threshold * level_growth**j`` records at level ``j``), each on
  its own simulated machine with its own ledger;
* **inherited components** -- whole components handed over by a topology
  change (including a retiring parent's adopted base index), shared with
  sibling towers via :attr:`Component.refs` and read through an
  :class:`InheritedRef` carrying the *explicit clip interval* fixed at
  adoption time.  Inherited components are never merge inputs; they
  retire when a fold or compaction releases the last reference;
* the :class:`~repro.service.lsm.CompactionScheduler` that merges this
  tower's private levels in bounded incremental steps.

Because every component is owned (or clip-referenced) by exactly the
towers whose ranges its points fall in, a split or merge of shards is a
pure metadata move: cut the memtable by range, hand the component *set*
to the children, bump refcounts.  No component is read or rebuilt --
the zero-block topology contract ``bench_resharding`` asserts.

The manager never touches the base shards: a full
:meth:`repro.service.SkylineService.compact` folds every component into a
rebuilt base and calls :meth:`LevelManager.reset`.  Visibility is the
invariant that keeps intermediate merge states correct: a component stays
queryable until the merge that rewrites it is fully paid, at which point
the swap is atomic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.service.delta import DeltaBuffer
from repro.service.lsm.component import Component
from repro.service.lsm.scheduler import CompactionScheduler, MergeJob


class InheritedRef:
    """One tower's reference to a shared (inherited) component.

    The half-open x-interval ``[x_lo, x_hi)`` is *fixed at adoption* --
    the intersection of the donor's interval with the adopting tower's
    range -- and never re-derived from the tower's current range.  That
    distinction matters after a fold: folding a sibling shard copies the
    component's points in *that* range into the sibling's rebuilt base
    and drops the sibling's reference, so a later merge whose child
    range covers the folded region again must **not** widen this clip
    back over it (it would resurrect the folded points as duplicates).
    With explicit intervals the merged tower simply inherits each
    parent's refs with their intervals unchanged -- the live intervals
    of a component always partition exactly its still-reachable points.

    ``lo``/``hi`` cache the interval's index range in ``comp.points``
    (the component is immutable, so one bisect pair at adoption time
    serves every later read).
    """

    __slots__ = ("comp", "x_lo", "x_hi", "lo", "hi")

    def __init__(self, comp: Component, x_lo: float, x_hi: float) -> None:
        self.comp = comp
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.lo = (
            0 if x_lo == -math.inf else comp.columns.bisect_x_left(x_lo)
        )
        self.hi = (
            len(comp.points)
            if x_hi == math.inf
            else comp.columns.bisect_x_left(x_hi)
        )

    def __len__(self) -> int:
        return self.hi - self.lo

    def points(self) -> List[Point]:
        """The slice of the component this reference answers for."""
        return self.comp.points[self.lo : self.hi]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InheritedRef({self.comp!r}, [{self.x_lo}, {self.x_hi}), "
            f"rows {self.lo}:{self.hi})"
        )


class LevelManager:
    """One shard's frozen memtables, levels 1..k, inherited components,
    and their merge scheduler."""

    def __init__(
        self,
        *,
        em_config: EMConfig,
        epsilon: float,
        block_size: int,
        memtable_capacity: int,
        level_growth: int,
        merge_step_blocks: int,
        delta: DeltaBuffer,
        maintenance: IOStats,
        retired: IOStats,
        on_layout_change: Callable[[], None],
        next_comp_id: Optional[Callable[[], int]] = None,
        x_lo: float = -math.inf,
        x_hi: float = math.inf,
    ) -> None:
        self.em_config = em_config
        self.epsilon = epsilon
        self.block_size = block_size
        self.memtable_capacity = memtable_capacity
        self.level_growth = level_growth
        self.merge_step_blocks = merge_step_blocks
        self.delta = delta
        # Both ledgers are private to this tower: the scheduler mirrors
        # merge debt onto ``maintenance`` and retires input ledgers into
        # ``retired`` -- possibly from a parallel maintenance worker, so
        # sharing either across towers would race.
        self.maintenance = maintenance
        self.retired = retired
        self._on_layout_change = on_layout_change
        # This tower's half-open x-range (the owning shard's): adoption
        # intersects every inherited interval with it.
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.frozen: List[Component] = []
        self.levels: Dict[int, Component] = {}
        self.inherited: List[InheritedRef] = []
        self.scheduler = CompactionScheduler(self)
        # Component ids key tombstone owner buckets in the *shared* delta
        # buffer, so the service injects one global allocator; the private
        # counter is a fallback for towers constructed directly in tests.
        self._alloc_comp_id = next_comp_id
        self._next_comp_id = 1

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def next_component_id(self) -> int:
        if self._alloc_comp_id is not None:
            return self._alloc_comp_id()
        comp_id = self._next_comp_id
        self._next_comp_id += 1
        return comp_id

    def capacity(self, level: int) -> int:
        """Record capacity of ``level`` (level 0 is the memtable)."""
        return self.memtable_capacity * self.level_growth**level

    def components(self) -> List[Component]:
        """Every visible immutable component, frozen first, then levels
        in increasing depth, then inherited (query fan-out order).
        Inherited components must be read through their ref's interval
        (see :attr:`inherited`); a component two refs share appears
        twice."""
        return (
            self.frozen
            + [self.levels[j] for j in sorted(self.levels)]
            + [ref.comp for ref in self.inherited]
        )

    def private_components(self) -> List[Component]:
        """The components this tower exclusively owns (merge inputs)."""
        return self.frozen + [self.levels[j] for j in sorted(self.levels)]

    def find_frozen(self, frozen_id: Optional[int]) -> Optional[Component]:
        for comp in self.frozen:
            if comp.comp_id == frozen_id:
                return comp
        return None

    def stats_members(self) -> List[IOStats]:
        """The visible level ledgers (members of the service aggregate).

        Inherited ledgers appear here too; the service dedups by object
        identity across towers so a shared component is summed once.
        """
        return [
            comp.stats
            for comp in self.components()
            if comp.stats is not None
        ]

    def adopt_inherited(
        self,
        comp: Component,
        x_lo: float = -math.inf,
        x_hi: float = math.inf,
    ) -> Optional[InheritedRef]:
        """Reference a component handed over by a topology change,
        answering for the donor interval ``[x_lo, x_hi)`` intersected
        with this tower's range.

        Pure metadata: the interval bisects touch only the in-memory
        column directory, nothing is read.  Returns the new ref, or
        ``None`` (and adopts nothing) when the intersection holds no
        point -- the donor's slice belongs entirely to a sibling.
        """
        ref = InheritedRef(comp, max(x_lo, self.x_lo), min(x_hi, self.x_hi))
        if ref.hi <= ref.lo:
            return None
        comp.refs += 1
        self.inherited.append(ref)
        self._on_layout_change()
        return ref

    def release_inherited(self, ref: InheritedRef) -> bool:
        """Drop one reference; retire the component's ledger into this
        tower's retired accumulator when the last reference dies.
        Returns whether the component was actually retired."""
        self.inherited.remove(ref)
        ref.comp.refs -= 1
        if ref.comp.refs == 0:
            if ref.comp.stats is not None:
                self.retired.absorb(ref.comp.stats)
            self._on_layout_change()
            return True
        self._on_layout_change()
        return False

    def remove_component(self, comp: Component) -> None:
        """Drop a merge input from visibility, retiring its ledger."""
        if comp in self.frozen:
            self.frozen.remove(comp)
        for j, level_comp in list(self.levels.items()):
            if level_comp is comp:
                del self.levels[j]
        if comp.stats is not None:
            self.retired.absorb(comp.stats)
        self._on_layout_change()

    def install_level(self, level: int, comp: Component) -> None:
        """Make a paid-off merge output visible at ``level``."""
        assert level not in self.levels
        self.levels[level] = comp
        self._on_layout_change()

    # ------------------------------------------------------------------
    # Update-path entry points
    # ------------------------------------------------------------------
    def seal(self, points: List[Point]) -> Component:
        """Freeze a full memtable and schedule its flush into level 1."""
        comp = Component(self.next_component_id(), points, build_index=False)
        self.frozen.append(comp)
        self.scheduler.schedule(MergeJob("flush", frozen_id=comp.comp_id))
        self._on_layout_change()
        return comp

    def tick(self) -> int:
        """One update's worth of piggybacked merge work (bounded)."""
        return self.scheduler.pay(self.merge_step_blocks)

    def drain(self) -> int:
        """Pay all outstanding merge debt; returns transfers charged."""
        return self.scheduler.drain()

    def reset(self) -> None:
        """Forget every component (a full compaction folded them into the
        base); visible ledgers are retired so no charge is lost, and
        inherited references are released (shared components retire only
        when the last sibling tower lets go)."""
        self.scheduler.clear()
        for comp in self.private_components():
            if comp.stats is not None:
                self.retired.absorb(comp.stats)
        for ref in self.inherited:
            ref.comp.refs -= 1
            if ref.comp.refs == 0 and ref.comp.stats is not None:
                self.retired.absorb(ref.comp.stats)
        self.inherited = []
        self.frozen = []
        self.levels = {}
        self._on_layout_change()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_inserts(self) -> int:
        """Pending memtable inserts routed into this tower's x-range."""
        return sum(
            1
            for p in self.delta.inserts.values()
            if self.x_lo <= p.x < self.x_hi
        )

    def live_points(self) -> List[Point]:
        """Points resident in visible components (inherited ones through
        their refs' intervals), minus tombstoned ones."""
        pts = [
            p
            for comp in self.private_components()
            for p in comp.points
            if not self.delta.is_deleted(p)
        ]
        for ref in self.inherited:
            pts.extend(
                p for p in ref.points() if not self.delta.is_deleted(p)
            )
        return pts

    def resident(self) -> int:
        """Physical records this tower answers for (inherited clipped)."""
        total = sum(len(comp) for comp in self.private_components())
        total += sum(len(ref) for ref in self.inherited)
        return total

    def describe_levels(self) -> List[dict]:
        """Per-level fill: {level, records, tombstones, capacity,
        merge_debt}, the block :meth:`SkylineService.describe` surfaces.

        Level 0 is this tower's cut of the memtable (records = pending
        inserts in range; its tombstone count is the in-range slice of
        the table, which conceptually lives at level 0 until merges
        consume it).  ``merge_debt`` sits on the level the active merge
        is building towards; inherited components are reported as
        clipped record counts on the level-0 row.
        """
        active = self.scheduler.active
        rows = [
            {
                "level": 0,
                "records": self.pending_inserts(),
                "tombstones": sum(
                    1
                    for t in self.delta.tombstones.values()
                    if self.x_lo <= t.x < self.x_hi
                ),
                "capacity": self.capacity(0),
                "merge_debt": 0,
                "frozen": [len(c) for c in self.frozen],
                "inherited": [len(ref) for ref in self.inherited],
            }
        ]
        for j in sorted(set(self.levels) | ({active.out_level} if active else set())):
            comp = self.levels.get(j)
            rows.append(
                {
                    "level": j,
                    "records": 0 if comp is None else len(comp),
                    "tombstones": 0
                    if comp is None
                    else len(self.delta.owned_tombstones(comp.owner)),
                    "capacity": self.capacity(j),
                    "merge_debt": active.debt
                    if active is not None and active.out_level == j
                    else 0,
                }
            )
        return rows
