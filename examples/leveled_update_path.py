"""The leveled update path: bounded write spikes, visible level lifecycle.

Scenario: a write-heavy deployment keeps absorbing inserts and deletes
while serving queries.  On the legacy threshold-compact path, the update
that trips the delta threshold stalls on an O(n/B) stop-the-world shard
rebuild.  On the leveled path (the default), the memtable seals into an
immutable component and a compaction scheduler merges levels downward in
bounded increments piggybacked on later updates -- so the worst single
update pays merge_step_blocks transfers, not a rebuild.

The example streams the same update mix through both paths, prints the
per-op I/O spike profile, then walks the level lifecycle: memtable ->
frozen -> L1..Lk (engine.explain shows the layout and the instantiated
amortized bound), drain() to pay all merge debt at once, and compact()
as the explicit operator-driven fold back into the base shards.
"""

from __future__ import annotations

import random

from repro import Point, TopOpenQuery
from repro.engine import QueryRequest, SkylineEngine
from repro.service import ServiceConfig


def stream(update_path: str, base, payloads):
    engine = SkylineEngine.sharded(
        base,
        ServiceConfig(
            shard_count=4,
            block_size=32,
            memory_blocks=16,
            delta_threshold=64,
            merge_step_blocks=8,
            update_path=update_path,
        ),
    )
    spikes = []
    for point in payloads:
        result = engine.insert(point)
        spikes.append(result.report.blocks + result.report.maintenance_blocks)
    return engine, spikes


def main() -> None:
    rng = random.Random(7)
    n = 4_000
    xs = rng.sample(range(40 * n), n)
    ys = rng.sample(range(40 * n), n)
    base = [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]
    payloads = [
        Point(1_000_000.0 + i * 1.25, 1_000_000.0 + i * 1.5, 100_000 + i)
        for i in range(200)
    ]

    print("same 200-insert stream, both update paths:")
    for path in ("threshold-compact", "leveled"):
        engine, spikes = stream(path, base, payloads)
        print(
            f"  {path:>17}: mean {sum(spikes) / len(spikes):7.2f} I/Os per "
            f"update, worst single update {max(spikes):5d} I/Os"
        )

    engine, _ = stream("leveled", base, payloads)
    service = engine.backend.service

    print("\nlevel lifecycle after the stream (memtable is level 0):")
    for row in service.describe()["levels"]:
        print(
            f"  L{row['level']}: {row['records']:4d} records / capacity "
            f"{row['capacity']:5d}, tombstones {row['tombstones']}, "
            f"merge debt {row['merge_debt']}"
        )
    print(f"  scheduler: {service.describe()['scheduler']}")

    plan = engine.explain(QueryRequest(TopOpenQuery(0.0, 2_000_000.0, 0.0)))
    print(f"\nexplain(): update path '{plan.update_path}', layout "
          f"{list(plan.level_layout)}")
    print(f"  amortized update bound: {plan.update_bound} "
          f"= {plan.update_io:.3f} transfers at the current B/n")

    drained = engine.drain()
    print(f"\ndrain(): paid {drained['merge_io']} transfers of merge debt, "
          f"{drained['merges_completed']} merges completed so far")
    engine.compact()
    print("compact(): everything folded into "
          f"{service.describe()['shard_count']} rebuilt base shards; "
          f"levels now {[r['level'] for r in service.describe()['levels'][1:]]}")
    print(f"\nledger partition: attributed {engine.attributed_io()} + "
          f"maintenance {engine.maintenance_io()} == "
          f"{engine.io_total() - engine.build_io} (total - build)")
    assert (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


if __name__ == "__main__":
    main()
