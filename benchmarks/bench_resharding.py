"""Online topology: adaptive split/merge/fold vs a frozen shard layout.

Claims (ISSUE 5 acceptance):

* under a Zipf-x mixed workload at n >= 50k, the adaptive-topology
  service keeps **mean query I/O within 1.3x** of the uniform-balanced
  baseline (a service freshly rebuilt size-balanced over the final live
  set) while the **static topology exceeds 2x**;
* **p99 single-request transfers** of the adaptive service stay near the
  baseline's;
* **no single split/merge/fold step** charges more than the hot shard's
  own ``O(n_shard/B)`` rebuild cost (asserted as a linear per-record
  bound *and* as a small fraction of one measured global rebuild), and
  no evolving service ever pays a global compaction;
* the **ledger partition** ``attributed + maintenance == total - build``
  holds on every cell.

Run under pytest (full sweep) or standalone::

    PYTHONPATH=src python benchmarks/bench_resharding.py [--quick]

Both modes persist the comparison table to ``BENCH_resharding.json``
(schema v1, see :func:`repro.bench.reporting.write_json_report`); the
quick mode keeps the n = 50k cell the acceptance criterion is stated
against, just with fewer interleaved probes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.bench_resharding import check, run_resharding_sweep
from repro.bench.reporting import write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_resharding.json"

QUICK = dict(query_every=64)
FULL = dict(query_every=24)


def run_sweeps(quick: bool = False):
    params = QUICK if quick else FULL
    table, summary = run_resharding_sweep(**params)
    write_json_report(
        [table],
        str(JSON_PATH),
        meta={
            "experiment": "resharding_adaptive_vs_static_topology",
            "quick": quick,
            "summary": summary,
        },
    )
    return table, summary


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def sweeps():
    return run_sweeps(quick=False)


def test_adaptive_topology_tracks_balanced_baseline(sweeps, capsys):
    table, summary = sweeps
    with capsys.disabled():
        table.show()
        print(f"\nwrote {JSON_PATH.name}")
    check(summary)


def test_json_report_written(sweeps):
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert (
        payload["meta"]["experiment"]
        == "resharding_adaptive_vs_static_topology"
    )
    assert payload["tables"]


# ----------------------------------------------------------------------
# CLI entry point (CI smoke run: --quick)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="same n=50k cell, fewer interleaved probes (same assertions)",
    )
    args = parser.parse_args(argv)
    table, summary = run_sweeps(quick=args.quick)
    table.show()
    check(summary)
    print(f"\nok -- wrote {JSON_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
