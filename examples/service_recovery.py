"""Crash and recover a durable skyline engine, end to end.

Run with::

    PYTHONPATH=src python examples/service_recovery.py

The scenario mirrors an operator's worst day: a durable sharded
:class:`repro.engine.SkylineEngine` absorbs mixed catalogue traffic
(inserts, deletes, query batches, memtable seals and periodic drain
checkpoints of the leveled update path), its write-ahead log
group-committing every update and its drain checkpoints leaving
block-level, *level-aware* snapshots behind (per-level blocks plus the
memtable and tombstone table, so recovery restores the exact level
layout) -- and then the process dies at an arbitrary point of the durable
WAL.  :func:`repro.service.crashed_copy`
materialises the kill (only the durable prefix survives; the in-memory
group-commit tail and any snapshot whose checkpoint record died are
gone), and :meth:`repro.engine.SkylineEngine.open` -- the engine's
durability passthrough -- brings the stack back behind the same request
API: load the newest surviving snapshot, replay the WAL suffix, serve
traffic again.  Every step prints its cost in block transfers -- the
same ledger the paper's bounds are stated in -- and the recovered state
is verified against an independently maintained reference.
"""

from __future__ import annotations

import random
import sys

from repro import Point, RangeQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.engine import SkylineEngine
from repro.service import ServiceConfig, crashed_copy
from repro.workloads import clustered_points

N = 2_000
TICKS = 6
WRITES_PER_TICK = 30
QUERIES_PER_TICK = 12
UNIVERSE = 1_000_000


def canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def main() -> int:
    rng = random.Random(42)
    base = clustered_points(N, seed=7)
    engine = SkylineEngine.sharded(
        base,
        ServiceConfig(
            shard_count=4,
            block_size=32,
            memory_blocks=16,
            delta_threshold=64,
            durability=True,
            wal_group_commit=8,
            snapshot_every_compactions=2,
        ),
    )
    service = engine.backend.service
    store = service.store
    print(f"durable engine up: {len(engine)} points, "
          f"baseline snapshot = {store.snapshot_block_count()} blocks")

    # `live` mirrors what the engine acknowledged; `durable_live[k]` is
    # the reference state once the first k WAL records are applied (the
    # first record of each write call carries the change, checkpoint
    # records change nothing).
    live = list(base)
    durable_live = {0: canon(live)}

    def note():
        durable_live[service.wal.durable_count + service.wal.pending] = canon(live)

    for tick in range(TICKS):
        write_io = 0
        for i in range(WRITES_PER_TICK):
            serial = tick * WRITES_PER_TICK + i
            if rng.random() < 0.7:
                point = Point(
                    rng.uniform(0, UNIVERSE) + serial * 1e-4,
                    rng.uniform(0, UNIVERSE) + serial * 1e-4,
                    ident=500_000 + serial,
                )
                write_io += engine.insert(point).report.blocks
                live.append(point)
            else:
                victim = live.pop(rng.randrange(len(live)))
                outcome = engine.delete(victim)
                assert outcome.applied
                write_io += outcome.report.blocks
            note()
        queries = [
            TopOpenQuery(a, min(a + 0.05 * UNIVERSE, UNIVERSE), rng.uniform(0, UNIVERSE))
            for a in (rng.uniform(0, 0.95 * UNIVERSE) for _ in range(QUERIES_PER_TICK))
        ]
        read_io = sum(r.report.blocks for r in engine.query_many(queries))
        if tick % 2 == 1:
            # Drain checkpoint: pay all merge debt, log a WAL record, and
            # (on the snapshot cadence) write a level-aware snapshot.
            engine.drain()
            note()
        status = engine.describe()["backend"]
        durability = status["durability_detail"]
        levels = {row["level"]: row["records"] for row in status["levels"]}
        print(
            f"tick {tick:2d}: live={status['live_points']} "
            f"levels={levels} "
            f"wal={durability['wal_durable_records']}+{durability['wal_pending']} pending "
            f"snapshots={durability['snapshots']} "
            f"read_io={read_io} write_io={write_io}"
        )
    for k in range(service.wal.durable_count + service.wal.pending + 1):
        if k not in durable_live:
            durable_live[k] = durable_live[
                min(j for j in durable_live if j > k and j in durable_live)
            ]

    # -- the crash -----------------------------------------------------
    durable = store.wal_durable
    lost_tail = service.wal.pending
    kill = rng.randrange(durable // 2, durable + 1)
    crashed = crashed_copy(store, kill)
    print(
        f"\nCRASH: killed at durable record {kill}/{durable} "
        f"(+{lost_tail} acknowledged records in the group-commit tail are gone); "
        f"{len(store.manifests) - len(crashed.manifests)} snapshot(s) dropped "
        f"with their dead checkpoints"
    )

    # -- recovery ------------------------------------------------------
    recovered = SkylineEngine.open(crashed)
    recovery = recovered.backend.service.recovery
    print(
        f"recovered: loaded snapshot gen {recovery['snapshot_generation']} "
        f"({recovery['snapshot_points']} points across "
        f"{recovery['snapshot_levels']} levels + base, "
        f"folded to LSN {recovery['folded_lsn']}), "
        f"replayed {recovery['replayed_records']} WAL records; "
        f"recovery cost = {recovery['recovery_io']} block transfers "
        f"({recovery['snapshot_load_io']} snapshot load + "
        f"{recovery['replay_io']} WAL replay + "
        f"{recovery['rebuild_io']} index rebuild) "
        f"-- all of it engine build cost ({recovered.build_io} on the ledger)"
    )

    if canon(recovered.backend.service.live_points()) != durable_live[kill]:
        print("FAILED: recovered live set diverges from the durable prefix")
        return 1
    expected_skyline = sorted(
        (p.x, p.y)
        for p in range_skyline(
            [Point(x, y, i) for x, y, i in durable_live[kill]], RangeQuery()
        )
    )
    got = recovered.query(RangeQuery())
    got_skyline = sorted((p.x, p.y) for p in got.points)
    if got_skyline != expected_skyline:
        print("FAILED: recovered skyline diverges")
        return 1

    # The recovered engine serves traffic immediately -- with reports.
    outcome = recovered.insert(Point(UNIVERSE + 1.0, UNIVERSE + 2.0, 999_999))
    assert recovered.delete(Point(UNIVERSE + 1.0, UNIVERSE + 2.0, 999_999)).applied
    flushed = recovered.close()  # clean shutdown: WAL tail forced durable
    print(
        f"verified: {len(recovered)} live points match the durable "
        f"prefix exactly; skyline({len(got_skyline)} points) matches; "
        f"writes served again ({outcome.report.blocks} I/Os logged), "
        f"clean shutdown flushed {flushed} WAL records"
    )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
