"""An "externalised internal-memory structure" baseline.

Section 1.2 observes that the known internal-memory range-skyline structures
"also hold directly in external memory, but ... all of them incur Omega(k)
I/Os to report k points".  This baseline makes that cost concrete: it keeps
a pointer-based structure in which every reported point requires following a
pointer to its own block, so a query costs ``O(log_B n + k)`` I/Os instead
of ``O(log_B n + k/B)``.  The benchmarks use it to show the benefit of
blocked output.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.btree.bulk import bulk_load_sorted
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.core.skyline import skyline
from repro.em.storage import StorageManager


class InternalMemoryStructure:
    """A per-point-block structure paying Omega(k) I/Os for k results."""

    def __init__(self, storage: StorageManager, points: Iterable[Point]) -> None:
        self.storage = storage
        ordered = sorted(points, key=lambda p: p.x)
        # Every point lives in its own block, like a pointer-machine node.
        self._point_blocks = {
            (p.x, p.y): storage.create([p]) for p in ordered
        }
        # The search tree over x-coordinates maps to the block of each point.
        self.index = bulk_load_sorted(
            storage, [(p.x, self._point_blocks[(p.x, p.y)]) for p in ordered]
        )
        self.points = ordered

    def query(self, query: RangeQuery) -> List[Point]:
        """Skyline of ``P ∩ Q`` with one block read per reported point."""
        candidates: List[Point] = []
        for _, block_id in self.index.range_scan(query.x_lo, query.x_hi):
            (point,) = self.storage.read(block_id)
            if query.contains(point):
                candidates.append(point)
        return skyline(candidates)

    def __len__(self) -> int:
        return len(self.points)

    def block_count(self) -> int:
        """Blocks used (one per point plus the index) -- deliberately large."""
        return len(self._point_blocks)
