"""``SkylineServer``: the concurrent request runtime in front of the engine.

The engine serves one caller at a time; this server turns it into a
front end for many.  Submissions (sync callers and asyncio coroutines
alike) land on bounded intake queues; a single **dispatcher** thread
gathers reads within a small window and executes each gathered batch --
duplicate requests across callers coalesced onto one computation --
through the engine's native batch executor, whose per-shard worklists run
on the persistent uid-keyed :class:`~repro.serve.workers.ShardWorkerPool`;
a single **writer lane** thread serializes updates, so writes interleave
safely with read batches (the two lanes exclude each other on one engine
lock, and nothing else ever touches the engine).  Admission control is a
property of the queues: they are bounded, and a full queue either blocks
the submitter or sheds the request with a typed
:class:`~repro.serve.errors.Overloaded` failure, while per-request
deadlines fail still-queued work with
:class:`~repro.serve.errors.DeadlineExceeded` -- so queue wait, and with
it tail latency, cannot grow without bound no matter the offered load.

Two streaming-tier extensions ride the same lanes.  **Subscriptions**
(:meth:`SkylineServer.subscribe`) register continuous queries: after the
writer lane applies each update it pumps a
:class:`~repro.stream.SubscriptionManager`, which uses the per-shard
``(uid, write_version)`` scopes to recompute only the subscriptions
overlapping a written shard, and the resulting deltas fan out to bounded
per-subscriber queues (thread iterators, ``async for`` via
:meth:`ServerSubscription.deltas`, or inline callbacks) with the same
deadline and shed semantics as the intake queues.  **Adaptive gather**
(``config.adaptive_gather``) replaces the fixed coalescing window with
one sized from an EWMA of observed read inter-arrival gaps, exposed live
in :meth:`SkylineServer.describe`.

Every response pairs the engine's per-request
:class:`~repro.engine.report.ExecutionReport` with a
:class:`~repro.serve.report.ServingReport` (queue wait, service time,
coalesce fan-in, shed/timeout flags), and :meth:`SkylineServer.describe`
exposes the server-level picture: throughput, p50/p95/p99 latency, queue
depths, inflight, shed rate, worker-pool state, and the engine's ledger
partition underneath.

Consistency model: a read batch executes against the state left by every
write that completed before the batch started; a caller that awaits its
update future before submitting a read therefore reads its own write.
Ordering *between* concurrent callers is whatever the queues produce,
exactly as in any networked service.
"""

from __future__ import annotations

import asyncio
import math
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from concurrent.futures import Future, ThreadPoolExecutor

from repro.analysis.locks import tracked_lock, tracked_rw_gate
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.engine.engine import QueryLike, SkylineEngine
from repro.engine.report import (
    KIND_QUERY,
    ExecutionReport,
    QueryResult,
    SkylineDelta,
)
from repro.engine.requests import QueryRequest, SubscribeRequest, UpdateRequest
from repro.serve.config import ServerConfig
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    ServerClosed,
    ServingError,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.report import (
    LANE_NOTIFY,
    LANE_READ,
    LANE_WRITE,
    ServedQuery,
    ServedUpdate,
    ServingReport,
)
from repro.serve.workers import ShardWorkerPool
from repro.stream.subscriptions import SubscriptionManager

Request = Union[QueryRequest, UpdateRequest]

#: How long the lane threads sleep on an empty queue before re-checking
#: the stop flag.  Purely an implementation detail of shutdown latency.
_IDLE_POLL_S = 0.02


@dataclass
class _Submission:
    """One enqueued request: the payload, its future, and its clock."""

    request: Request
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    deadline_at: Optional[float] = None


#: What a subscription queue carries: deltas, a terminal failure, or the
#: ``None`` close sentinel.
_Notification = Union[SkylineDelta, ServingError, None]


class ServerSubscription:
    """Client handle for one continuous query registered on the server.

    Deltas arrive on a bounded queue (capacity
    ``config.max_subscription_queue``); consume them with :meth:`get`,
    by iterating the handle from a thread, or with ``async for delta in
    handle.deltas()`` from asyncio.  Passing ``callback=`` to
    :meth:`SkylineServer.subscribe` instead invokes the callback inline
    on the notification thread -- keep callbacks fast and never call
    back into the server's blocking API from one.

    Admission control applies to subscribers too: a consumer that stops
    draining its queue is cancelled with a terminal
    :class:`~repro.serve.errors.Overloaded`, and a subscription past its
    deadline gets :class:`~repro.serve.errors.DeadlineExceeded`;
    terminal failures are raised by the consuming side when reached.
    A cleanly closed subscription just ends its iterators.
    """

    def __init__(
        self,
        server: "SkylineServer",
        sub_id: int,
        request: SubscribeRequest,
        capacity: int,
        callback: Optional[Callable[[SkylineDelta], None]] = None,
        deadline_at: Optional[float] = None,
    ) -> None:
        self._server = server
        self.sub_id = sub_id
        self.request = request
        self.deadline_at = deadline_at
        self._callback = callback
        self._queue: "queue.Queue[_Notification]" = queue.Queue(capacity)
        self._ended = threading.Event()
        self.delivered = 0

    # -- delivery side (server threads) --------------------------------
    def _push(self, delta: SkylineDelta) -> bool:
        """Deliver one delta; ``False`` means overflow (caller sheds)."""
        if self._ended.is_set():
            return True
        if self._callback is not None:
            self._callback(delta)
            self.delivered += 1
            return True
        try:
            self._queue.put_nowait(delta)
        except queue.Full:
            return False
        self.delivered += 1
        return True

    def _terminate(self, exc: Optional[ServingError]) -> None:
        """End the subscription; consumers see ``exc`` (or a clean end)."""
        if self._ended.is_set():
            return
        self._ended.set()
        try:
            self._queue.put_nowait(exc)
        except queue.Full:
            # Evict the oldest pending delta so the terminal marker fits.
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            try:
                self._queue.put_nowait(exc)
            except queue.Full:
                pass

    # -- consumer side --------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the subscription has ended (no more deltas coming)."""
        return self._ended.is_set()

    def close(self) -> None:
        """Unsubscribe cleanly (idempotent); pending deltas still drain."""
        self._server.unsubscribe(self.sub_id)

    def _resolve(self, item: _Notification) -> Optional[SkylineDelta]:
        if item is None:
            return None
        if isinstance(item, ServingError):
            raise item
        return item

    def get(self, timeout: Optional[float] = None) -> Optional[SkylineDelta]:
        """The next delta; ``None`` once the subscription ended cleanly.

        Raises the terminal :class:`~repro.serve.errors.ServingError` if
        the server cancelled the subscription, and ``queue.Empty`` if
        ``timeout`` elapses with nothing delivered.
        """
        if self._ended.is_set() and self._queue.empty():
            return None
        return self._resolve(self._queue.get(timeout=timeout))

    def __iter__(self) -> Iterator[SkylineDelta]:
        """Blocking delta iterator for thread consumers."""
        while True:
            if self._ended.is_set() and self._queue.empty():
                return
            try:
                item = self._queue.get(timeout=_IDLE_POLL_S)
            except queue.Empty:
                continue
            delta = self._resolve(item)
            if delta is None:
                return
            yield delta

    async def deltas(self) -> AsyncIterator[SkylineDelta]:
        """``async for`` delta iterator for asyncio consumers."""
        while True:
            if self._ended.is_set() and self._queue.empty():
                return
            try:
                item = await asyncio.to_thread(
                    self._queue.get, True, _IDLE_POLL_S
                )
            except queue.Empty:
                continue
            delta = self._resolve(item)
            if delta is None:
                return
            yield delta


class SkylineServer:
    """A bounded-queue, batch-coalescing front end over a
    :class:`~repro.engine.SkylineEngine`.

    Parameters
    ----------
    engine:
        The engine to serve.  On a sharded backend the server installs a
        persistent uid-keyed worker pool as the service's batch executor
        (see :mod:`repro.serve.workers`); a local backend is served
        through the same lanes without a pool.
    config:
        Serving tunables; defaults to :class:`ServerConfig()`.
    start:
        Start the lane threads immediately (default).  Pass ``False`` to
        pre-load the queues first -- e.g. a benchmark staging a
        deterministic burst -- then call :meth:`start`.
    """

    def __init__(
        self,
        engine: SkylineEngine,
        config: Optional[ServerConfig] = None,
        *,
        start: bool = True,
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics(self.config.latency_samples)
        self.pool: Optional[ShardWorkerPool] = None
        service = getattr(engine.backend, "service", None)
        if service is not None:
            self.pool = ShardWorkerPool(service)
            service.batch_executor = self.pool
        self._read_queue: "queue.Queue[_Submission]" = queue.Queue(
            self.config.max_read_queue
        )
        self._write_queue: "queue.Queue[_Submission]" = queue.Queue(
            self.config.max_write_queue
        )
        # Read batches run concurrently against a frozen snapshot (the
        # gate's read side); writer-lane updates and subscription pumps
        # take the exclusive write side.  Nothing else may touch the
        # engine while the server owns it (reprolint enforces it: every
        # self.engine call must hold the gate).
        self._gate = tracked_rw_gate("serve.server.engine")  # repro: guards(engine)
        # Effective read concurrency: batches may only overlap when the
        # uid-keyed worker pool pins every shard ledger to one worker
        # thread, and the coalesced batch path is in use (the singles
        # path drives the engine's exclusive per-query accounting).
        workers = self.config.read_concurrency
        if self.pool is None or not self.config.coalesce:
            workers = 1
        self._read_workers = workers
        self._read_executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="skyserve-read"
            )
            if workers > 1
            else None
        )
        # Writes applied so far; each read batch reports the value it
        # executed against (its pinned write version).  Bumped only by
        # the writer lane while it holds the gate's write side.
        self._writes_applied = 0
        # Continuous queries: the manager diffs skylines and scopes the
        # recomputation; the handle table maps sub ids to client queues.
        self._subscriptions = SubscriptionManager(engine)
        self._handles: Dict[int, ServerSubscription] = {}
        self._handles_lock = tracked_lock(
            "serve.server.subscribers"
        )  # repro: guards(subscription handles)
        self._notified = 0
        self._notify_blocks = 0
        self._subs_shed = 0
        # Adaptive gather state -- touched only by the dispatcher thread
        # (describe() reads are monotonic snapshots, no lock needed).
        self._arrival_ewma: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self._gather_current: float = self.config.gather_window
        self._stop = threading.Event()
        self._started = False
        self._closed = False
        self._dispatcher: Optional[threading.Thread] = None
        self._writer: Optional[threading.Thread] = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SkylineServer":
        """Start the dispatcher and writer-lane threads (idempotent)."""
        if self._closed:
            raise ServerClosed("server already stopped")
        if self._started:
            return self
        self._started = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="skyserve-dispatch", daemon=True
        )
        self._writer = threading.Thread(
            target=self._writer_loop, name="skyserve-writer", daemon=True
        )
        self._dispatcher.start()
        self._writer.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the lanes; with ``drain`` (default) serve everything
        already queued first.  Idempotent.  Submissions after ``stop``
        fail with :class:`ServerClosed`."""
        if self._closed:
            return
        self._closed = True
        if self._started and drain:
            while not (
                self._read_queue.empty() and self._write_queue.empty()
            ):
                time.sleep(_IDLE_POLL_S)
        self._stop.set()
        for thread in (self._dispatcher, self._writer):
            if thread is not None:
                thread.join()
        if self._read_executor is not None:
            # In-flight read batches complete before the pool goes away.
            self._read_executor.shutdown(wait=True)
        for lane in (self._read_queue, self._write_queue):
            while True:
                try:
                    submission = lane.get_nowait()
                except queue.Empty:
                    break
                submission.future.set_exception(
                    ServerClosed("server stopped before this request ran")
                )
        with self._handles_lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle._terminate(None)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "SkylineServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission (sync callers; returns concurrent futures)
    # ------------------------------------------------------------------
    def _deadline_at(
        self, enqueued_at: float, deadline: Optional[float]
    ) -> Optional[float]:
        effective = deadline if deadline is not None else self.config.default_deadline
        return None if effective is None else enqueued_at + effective

    def _admit(
        self, lane: "queue.Queue[_Submission]", submission: _Submission, write: bool
    ) -> Future:
        """Admission control: bounded enqueue under the configured policy."""
        if self._closed:
            raise ServerClosed("server is stopped")
        lane_name = LANE_WRITE if write else LANE_READ
        try:
            if self.config.backpressure == "shed":
                lane.put_nowait(submission)
            else:
                lane.put(submission, timeout=self.config.submit_timeout)
        except queue.Full:
            self.metrics.note_shed()
            submission.future.set_exception(
                Overloaded(
                    f"{lane_name} queue full "
                    f"({lane.maxsize} pending, policy={self.config.backpressure})",
                    ServingReport(lane=lane_name, shed=True),
                )
            )
            return submission.future
        self.metrics.note_submit(write, lane.qsize())
        return submission.future

    def submit_query(
        self, request: QueryLike, *, deadline: Optional[float] = None
    ) -> "Future[ServedQuery]":
        """Enqueue one read; the future resolves to a :class:`ServedQuery`
        (or fails with :class:`Overloaded` / :class:`DeadlineExceeded`)."""
        req = request if isinstance(request, QueryRequest) else QueryRequest(rect=request)
        submission = _Submission(req)
        submission.deadline_at = self._deadline_at(submission.enqueued_at, deadline)
        return self._admit(self._read_queue, submission, write=False)

    def submit_update(
        self, request: UpdateRequest, *, deadline: Optional[float] = None
    ) -> "Future[ServedUpdate]":
        """Enqueue one write on the serialized writer lane."""
        submission = _Submission(request)
        submission.deadline_at = self._deadline_at(submission.enqueued_at, deadline)
        return self._admit(self._write_queue, submission, write=True)

    # Blocking convenience wrappers -----------------------------------
    def query(
        self,
        request: QueryLike,
        *,
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> ServedQuery:
        return self.submit_query(request, deadline=deadline).result(timeout)

    def update(
        self,
        request: UpdateRequest,
        *,
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> ServedUpdate:
        return self.submit_update(request, deadline=deadline).result(timeout)

    def insert(self, point: Point, **kwargs: object) -> ServedUpdate:
        return self.update(UpdateRequest.insert(point), **kwargs)  # type: ignore[arg-type]

    def delete(self, point: Point, **kwargs: object) -> ServedUpdate:
        return self.update(UpdateRequest.delete(point), **kwargs)  # type: ignore[arg-type]

    # Async counterparts ----------------------------------------------
    async def aquery(
        self, request: QueryLike, *, deadline: Optional[float] = None
    ) -> ServedQuery:
        """``await``-able read: wraps the submission future for asyncio."""
        return await asyncio.wrap_future(
            self.submit_query(request, deadline=deadline)
        )

    async def aupdate(
        self, request: UpdateRequest, *, deadline: Optional[float] = None
    ) -> ServedUpdate:
        """``await``-able write on the serialized writer lane."""
        return await asyncio.wrap_future(
            self.submit_update(request, deadline=deadline)
        )

    async def ainsert(self, point: Point, **kwargs: object) -> ServedUpdate:
        return await self.aupdate(UpdateRequest.insert(point), **kwargs)  # type: ignore[arg-type]

    async def adelete(self, point: Point, **kwargs: object) -> ServedUpdate:
        return await self.aupdate(UpdateRequest.delete(point), **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Subscription lane: register -> pump on writes -> deliver deltas
    # ------------------------------------------------------------------
    def subscribe(
        self,
        request: Union[SubscribeRequest, RangeQuery],
        *,
        callback: Optional[Callable[[SkylineDelta], None]] = None,
        deadline: Optional[float] = None,
    ) -> ServerSubscription:
        """Register a continuous query; returns the delta handle.

        The handle's initial delta (the current skyline, when the
        request asks for a snapshot) is already enqueued on return.
        Subsequent deltas are derived after each applied write by the
        writer lane, with write-version scoping skipping subscriptions
        whose shards were untouched -- see
        :class:`repro.stream.SubscriptionManager`.  ``deadline`` bounds
        the subscription's *lifetime* in seconds: past it, the next
        delivery attempt cancels it with
        :class:`~repro.serve.errors.DeadlineExceeded`.
        """
        if self._closed:
            raise ServerClosed("server is stopped")
        req = (
            request
            if isinstance(request, SubscribeRequest)
            else SubscribeRequest(rect=request)
        )
        now = time.perf_counter()
        with self._gate.write():
            # repro: calls(SubscriptionManager.register)
            sub, initial = self._subscriptions.register(req)
        handle = ServerSubscription(
            self,
            sub.sub_id,
            req,
            self.config.max_subscription_queue,
            callback=callback,
            deadline_at=self._deadline_at(now, deadline),
        )
        with self._handles_lock:
            self._handles[handle.sub_id] = handle
        # Deliver the initial snapshot outside the handle-table lock so a
        # callback subscriber never runs under it.
        if not initial.empty and handle._push(initial):
            with self._handles_lock:
                self._notified += 1
                self._notify_blocks += initial.report.blocks
        return handle

    def unsubscribe(self, sub_id: int) -> bool:
        """Drop a subscription cleanly; returns whether it was live."""
        return self._cancel(sub_id, None)

    def _cancel(self, sub_id: int, exc: Optional[ServingError]) -> bool:
        with self._handles_lock:
            handle = self._handles.pop(sub_id, None)
        self._subscriptions.unregister(sub_id)
        if handle is None:
            return False
        handle._terminate(exc)
        return True

    def _pump_subscriptions(self) -> None:
        """Derive and deliver deltas after an applied write (writer lane)."""
        with self._handles_lock:
            if not self._handles:
                return
        with self._gate.write():
            # repro: calls(SubscriptionManager.pump)
            deltas = self._subscriptions.pump()
        if deltas:
            self._deliver(deltas)

    def _deliver(self, deltas: Dict[int, SkylineDelta]) -> None:
        now = time.perf_counter()
        with self._handles_lock:
            targets = [
                (sid, self._handles[sid])
                for sid in deltas
                if sid in self._handles
            ]
        for sid, handle in targets:
            if handle.deadline_at is not None and now > handle.deadline_at:
                self.metrics.note_timeout(now - handle.deadline_at)
                self._cancel(
                    sid,
                    DeadlineExceeded(
                        "subscription deadline expired",
                        ServingReport(lane=LANE_NOTIFY, timed_out=True),
                    ),
                )
                continue
            if handle._push(deltas[sid]):
                with self._handles_lock:
                    self._notified += 1
                    self._notify_blocks += deltas[sid].report.blocks
            else:
                # The consumer stopped draining: shed it, like any
                # over-capacity submission.
                self.metrics.note_shed()
                with self._handles_lock:
                    self._subs_shed += 1
                self._cancel(
                    sid,
                    Overloaded(
                        f"subscription queue full "
                        f"({self.config.max_subscription_queue} pending "
                        f"deltas undrained)",
                        ServingReport(lane=LANE_NOTIFY, shed=True),
                    ),
                )

    # ------------------------------------------------------------------
    # Read lane: gather -> coalesce -> batch-execute -> fan out
    # ------------------------------------------------------------------
    def current_gather_window(self) -> float:
        """The gather window now in effect (adapted, or the configured
        constant)."""
        if not self.config.adaptive_gather:
            return self.config.gather_window
        return self._gather_current

    def _observe_arrivals(self, batch: List[_Submission]) -> None:
        """Fold a gathered batch's inter-arrival gaps into the EWMA and
        re-size the gather window (dispatcher thread only).

        The window targets the time ``max_batch`` submissions take to
        arrive at the observed rate -- waiting longer than that cannot
        grow the batch, waiting less gives up coalescing for nothing --
        clamped to ``[0, gather_window_max]`` so a trickle of traffic
        cannot stretch latency unboundedly.
        """
        if not self.config.adaptive_gather:
            return
        alpha = self.config.gather_alpha
        previous = self._last_arrival
        for arrived_at in sorted(s.enqueued_at for s in batch):
            if previous is not None:
                gap = max(0.0, arrived_at - previous)
                self._arrival_ewma = (
                    gap
                    if self._arrival_ewma is None
                    else alpha * gap + (1 - alpha) * self._arrival_ewma
                )
            previous = arrived_at
        self._last_arrival = previous
        if self._arrival_ewma is None:
            return
        cap = (
            self.config.gather_window_max
            if self.config.gather_window_max is not None
            else 4 * self.config.gather_window
        )
        self._gather_current = min(
            cap, (self.config.max_batch - 1) * self._arrival_ewma
        )

    def _dispatch_loop(self) -> None:
        # Read batches handed to the read-lane executor whose results are
        # still pending.  Dispatcher-thread private, so no lock is needed.
        inflight: List["Future[None]"] = []
        while not self._stop.is_set():
            inflight = [f for f in inflight if not f.done()]
            if inflight:
                # Pipelined gather: while a batch executes, the next
                # window is already open -- anchored at the previous
                # dispatch, not at the next arrival -- so the window's
                # wait runs down *during* execution.  This is where the
                # concurrent read lane's throughput gain over the serial
                # discipline comes from: the serial loop below can only
                # start its window after the inline execution returns,
                # paying window + execution per cycle.
                batch = []
            else:
                try:
                    batch = [self._read_queue.get(timeout=_IDLE_POLL_S)]
                except queue.Empty:
                    continue
            horizon = time.perf_counter() + self.current_gather_window()
            while len(batch) < self.config.max_batch:
                remaining = horizon - time.perf_counter()
                try:
                    if remaining <= 0:
                        batch.append(self._read_queue.get_nowait())
                    else:
                        batch.append(self._read_queue.get(timeout=remaining))
                except queue.Empty:
                    break
            if not batch:
                continue
            self._observe_arrivals(batch)
            if self._read_executor is not None:
                # The executor caps batches in flight at
                # read_concurrency; each runs under the gate's read side
                # against the same pinned write version.
                inflight.append(
                    self._read_executor.submit(self._serve_read_batch, batch)
                )
            else:
                self._serve_read_batch(batch)

    def _expire(self, submission: _Submission, now: float, lane: str) -> bool:
        """Fail a still-queued submission whose deadline has passed."""
        if submission.deadline_at is None or now <= submission.deadline_at:
            return False
        wait = now - submission.enqueued_at
        self.metrics.note_timeout(wait)
        submission.future.set_exception(
            DeadlineExceeded(
                f"deadline expired after {wait * 1000:.1f} ms in the "
                f"{lane} queue",
                ServingReport(lane=lane, queue_wait_s=wait, timed_out=True),
            )
        )
        return True

    @staticmethod
    def _filter_servable(follower: Request, leader: Request) -> bool:
        """Whether ``follower``'s answer is exactly ``leader``'s answer
        filtered to ``follower.rect``.

        True when the two rectangles share the dominant (upper-right)
        corner and the follower's is contained: any dominator of a
        follower-rectangle point inside the leader's rectangle has both
        coordinates at least the dominated point's, so it lies inside the
        follower's rectangle too -- membership filtering then drops no
        skyline point and resurrects none.  Pagination must be off on
        both sides (a truncated leader page cannot be filtered exactly),
        and a ``fresh`` follower only follows a ``fresh`` leader.
        """
        if not isinstance(follower, QueryRequest):
            return False
        if not isinstance(leader, QueryRequest):
            return False
        if follower.limit is not None or follower.cursor is not None:
            return False
        if leader.limit is not None or leader.cursor is not None:
            return False
        if follower.consistency == "fresh" and leader.consistency != "fresh":
            return False
        fr, lr = follower.rect, leader.rect
        return (
            fr.x_hi == lr.x_hi
            and fr.y_hi == lr.y_hi
            and fr.x_lo >= lr.x_lo
            and fr.y_lo >= lr.y_lo
        )

    def _plan_containment(
        self, order: List[Request]
    ) -> "Tuple[List[Request], Dict[Request, Request]]":
        """Split the distinct gathered requests into executed leaders and
        containment followers (``follower -> leader``).

        Candidates are ranked so that every potential leader precedes its
        followers -- a leader's low corner is componentwise <= the
        follower's, and among identical rectangles only a ``fresh``
        request can lead a ``cached`` one -- then assigned greedily.
        Servability is transitive (shared dominant corner, nested low
        corners, ``fresh`` propagates), so whenever *any* leader exists
        for a request, one of the already-executed candidates qualifies.
        """
        followers: Dict[Request, Request] = {}
        leaders: List[Request] = []
        ranked = sorted(
            order,
            key=lambda r: (
                r.rect.x_lo,
                r.rect.y_lo,
                getattr(r, "consistency", "") != "fresh",
            )
            if isinstance(r, QueryRequest)
            else (math.inf, math.inf, True),
        )
        for request in ranked:
            leader = next(
                (b for b in leaders if self._filter_servable(request, b)),
                None,
            )
            if leader is None:
                leaders.append(request)
            else:
                followers[request] = leader
        # Hand the engine the leaders in original gather order.
        executed = [r for r in order if r not in followers]
        return executed, followers

    def _follower_result(
        self, request: Request, leader: QueryResult
    ) -> QueryResult:
        """A containment follower's exact answer, filtered out of its
        leader's; carries a zero-block coalesced report plus the
        follower's own plan."""
        assert isinstance(request, QueryRequest)
        points = [p for p in leader.points if request.rect.contains(p)]
        # repro: unguarded-call(runs inside _serve_read_batch's read gate; explain is pure planning)
        plan = self.engine.explain(request)
        k = len(points)
        return QueryResult(
            points=points,
            total_results=k,
            next_cursor=None,
            plan=plan,
            report=ExecutionReport(
                backend=leader.report.backend,
                kind=KIND_QUERY,
                variant=request.variant,
                structure=plan.structure,
                reads=0,
                writes=0,
                cache_hit=leader.report.cache_hit,
                coalesced=True,
                result_size=k,
                predicted_io=plan.predicted_io(k),
            ),
        )

    def _serve_read_batch(self, batch: List[_Submission]) -> None:
        now = time.perf_counter()
        live = [s for s in batch if not self._expire(s, now, LANE_READ)]
        if not live:
            return
        # Cross-caller coalescing: identical requests (frozen dataclasses,
        # hashable) collapse onto one leader execution per gather window,
        # and a rectangle contained in another gathered rectangle with the
        # same dominant corner shares the larger computation -- it is
        # served by filtering the leader's answer instead of executing.
        groups: Dict[Request, List[_Submission]] = {}
        order: List[Request] = []
        followers: Dict[Request, Request] = {}
        executed_reqs: List[Request] = []
        if self.config.coalesce:
            for submission in live:
                bucket = groups.setdefault(submission.request, [])
                if not bucket:
                    order.append(submission.request)
                bucket.append(submission)
            executed_reqs, followers = self._plan_containment(order)
        started = time.perf_counter()
        try:
            with self._gate.read():
                pinned = self._writes_applied
                if self.config.coalesce:
                    # repro: calls(SkylineEngine.query_batch_shared)
                    results, batch_report = self.engine.query_batch_shared(
                        executed_reqs
                    )
                    blocks = batch_report.blocks
                    by_request = dict(zip(executed_reqs, results))
                    for request, leader_req in followers.items():
                        by_request[request] = self._follower_result(
                            request, by_request[leader_req]
                        )
                else:
                    # repro: calls(SkylineEngine.query)
                    singles = [self.engine.query(s.request) for s in live]
        except BaseException as exc:
            for submission in live:
                submission.future.set_exception(exc)
            return
        service_s = time.perf_counter() - started
        if self.config.coalesce:
            executed = len(executed_reqs)
            self.metrics.note_read_batch(len(live), executed, len(live))
            # Fan-in of one execution: the leader's identical twins plus
            # every containment follower's group, so each response states
            # how many submissions its computation actually answered.
            fanin_by_leader = {r: len(groups[r]) for r in executed_reqs}
            for request, leader_req in followers.items():
                fanin_by_leader[leader_req] += len(groups[request])
            for request in order:
                result = by_request[request]
                members = groups[request]
                fanin = fanin_by_leader[followers.get(request, request)]
                for submission in members:
                    serving = ServingReport(
                        lane=LANE_READ,
                        queue_wait_s=started - submission.enqueued_at,
                        service_s=service_s,
                        coalesce_fanin=fanin,
                        batch_size=len(live),
                        batch_blocks=blocks,
                        pinned_version=pinned,
                    )
                    self.metrics.note_served(
                        False, serving.queue_wait_s, serving.latency_s
                    )
                    submission.future.set_result(ServedQuery(result, serving))
        else:
            self.metrics.note_read_batch(len(live), len(live), len(live))
            for submission, result in zip(live, singles):
                serving = ServingReport(
                    lane=LANE_READ,
                    queue_wait_s=started - submission.enqueued_at,
                    service_s=service_s,
                    coalesce_fanin=1,
                    batch_size=len(live),
                    batch_blocks=result.report.blocks,
                    pinned_version=pinned,
                )
                self.metrics.note_served(
                    False, serving.queue_wait_s, serving.latency_s
                )
                submission.future.set_result(ServedQuery(result, serving))

    # ------------------------------------------------------------------
    # Write lane: one thread, strictly serialized
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        while not self._stop.is_set():
            try:
                submission = self._write_queue.get(timeout=_IDLE_POLL_S)
            except queue.Empty:
                continue
            if self._expire(submission, time.perf_counter(), LANE_WRITE):
                continue
            started = time.perf_counter()
            try:
                with self._gate.write():
                    # repro: calls(SkylineEngine.update)
                    result = self.engine.update(submission.request)
                    # Bumped before the write side releases, so every
                    # read batch admitted afterwards pins the new version.
                    self._writes_applied += 1
            except BaseException as exc:
                submission.future.set_exception(exc)
                continue
            serving = ServingReport(
                lane=LANE_WRITE,
                queue_wait_s=started - submission.enqueued_at,
                service_s=time.perf_counter() - started,
                batch_blocks=result.report.blocks,
                pinned_version=self._writes_applied,
            )
            self.metrics.note_served(True, serving.queue_wait_s, serving.latency_s)
            submission.future.set_result(ServedUpdate(result, serving))
            # Notify continuous queries about the applied write.  Scope
            # checks make this cheap: only subscriptions overlapping a
            # written shard recompute, the rest are skipped at zero I/O.
            self._pump_subscriptions()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Server metrics plus the engine's own description underneath."""
        with self._gate.read():
            # repro: calls(SkylineEngine.describe)
            engine_status = self.engine.describe()
        with self._handles_lock:
            subscription_status = {
                "active": len(self._handles),
                "notified": self._notified,
                "notify_blocks": self._notify_blocks,
                "shed": self._subs_shed,
            }
        subscription_status.update(self._subscriptions.describe())
        status: Dict[str, object] = {
            "server": {
                "running": self._started and not self._closed,
                "gather_window_s": self.current_gather_window(),
                "configured_gather_window_s": self.config.gather_window,
                "adaptive_gather": self.config.adaptive_gather,
                "arrival_ewma_s": self._arrival_ewma,
                "max_batch": self.config.max_batch,
                "coalesce": self.config.coalesce,
                "read_concurrency": self._read_workers,
                "writes_applied": self._writes_applied,
                "backpressure": self.config.backpressure,
                "max_read_queue": self.config.max_read_queue,
                "max_write_queue": self.config.max_write_queue,
                "read_queue_depth": self._read_queue.qsize(),
                "write_queue_depth": self._write_queue.qsize(),
                "subscriptions": subscription_status,
                **self.metrics.describe(),
            },
        }
        if self.pool is not None:
            status["server"]["worker_pool"] = self.pool.describe()  # type: ignore[index]
        status.update(engine_status)
        return status
