"""Bottom-up bulk loading of a B-tree from sorted entries.

Building level by level touches each block once, so the construction costs
``O(n/B)`` I/Os -- the "sort-aware build-efficient" discipline the paper
asks of every static structure it constructs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.btree.btree import BTree
from repro.btree.node import InternalNode, LeafNode
from repro.em.storage import StorageManager


def bulk_load_sorted(
    storage: StorageManager,
    entries: Sequence[Tuple[Any, Any]],
    leaf_capacity: Optional[int] = None,
    fanout: Optional[int] = None,
    aggregate: Optional[Callable[[List[Any]], Any]] = None,
) -> BTree:
    """Build a :class:`BTree` over key-sorted ``(key, value)`` pairs.

    Raises ``ValueError`` if the entries are not sorted by key.
    """
    tree = BTree(
        storage,
        leaf_capacity=leaf_capacity,
        fanout=fanout,
        aggregate=aggregate,
    )
    if not entries:
        return tree
    _check_sorted(entries)
    # Free the placeholder empty root created by the constructor.
    storage.free(tree.root_id)

    leaf_ids, leaf_meta = _build_leaves(storage, tree, entries)
    level_ids, level_meta = leaf_ids, leaf_meta
    while len(level_ids) > 1:
        level_ids, level_meta = _build_internal_level(
            storage, tree, level_ids, level_meta
        )
    tree.root_id = level_ids[0]
    tree._count = len(entries)
    return tree


def _build_leaves(
    storage: StorageManager,
    tree: BTree,
    entries: Sequence[Tuple[Any, Any]],
) -> Tuple[List[int], List[Tuple[Any, Any]]]:
    """Write the leaf level; returns block ids and (max_key, aggregate) pairs."""
    capacity = tree.leaf_capacity
    leaf_ids: List[int] = []
    meta: List[Tuple[Any, Any]] = []
    for start in range(0, len(entries), capacity):
        chunk = entries[start : start + capacity]
        leaf = LeafNode(keys=[k for k, _ in chunk], values=[v for _, v in chunk])
        leaf_id = storage.create(leaf)
        if leaf_ids:
            previous = storage.read(leaf_ids[-1])
            previous.next_leaf = leaf_id
            storage.write(leaf_ids[-1], previous)
        leaf_ids.append(leaf_id)
        agg = tree.aggregate(leaf.values) if tree.aggregate else None
        meta.append((leaf.keys[-1], agg))
    return leaf_ids, meta


def _build_internal_level(
    storage: StorageManager,
    tree: BTree,
    child_ids: List[int],
    child_meta: List[Tuple[Any, Any]],
) -> Tuple[List[int], List[Tuple[Any, Any]]]:
    """Group children ``fanout`` at a time into a new internal level."""
    fanout = tree.fanout
    node_ids: List[int] = []
    meta: List[Tuple[Any, Any]] = []
    for start in range(0, len(child_ids), fanout):
        ids = child_ids[start : start + fanout]
        metas = child_meta[start : start + fanout]
        node = InternalNode(
            children=list(ids),
            separators=[m[0] for m in metas],
            aggregates=[m[1] for m in metas],
        )
        node_id = storage.create(node)
        node_ids.append(node_id)
        aggregates = [m[1] for m in metas if m[1] is not None]
        agg = tree.aggregate(aggregates) if tree.aggregate and aggregates else None
        meta.append((metas[-1][0], agg))
    return node_ids, meta


def _check_sorted(entries: Sequence[Tuple[Any, Any]]) -> None:
    for (prev_key, _), (curr_key, _) in zip(entries, entries[1:]):
        if curr_key < prev_key:
            raise ValueError("bulk_load_sorted requires key-sorted entries")
