"""Hot path: columnar merge kernels, pooled merge queue, concurrent reads.

Claims (ISSUE 9 acceptance):

* the **columnar merge kernels** answer identically to the per-object
  reference sweeps and run at least **2x faster** in wall-clock terms,
  while charging zero block transfers on either side (they are pure
  in-memory compute over resident candidates);
* the **pooled skip-list queue** drives the external multiway merge to
  the same output order and the **bit-identical storage ledger** as the
  ``heapq`` baseline, with both sides' seconds reported honestly;
* **snapshot-concurrent read batches** return the same answers and the
  same engine block totals as the serial read discipline while serving
  strictly **higher aggregate throughput**, and the engine's **ledger
  partition** ``attributed + maintenance == total - build`` holds in
  every cell.

Run under pytest (full sweep) or standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]

Both modes persist the comparison table to ``BENCH_hotpath.json``
(schema v1, see :func:`repro.bench.reporting.write_json_report`); the
quick mode shrinks the inputs but keeps every cell and assertion.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.bench_hotpath import check, run_hotpath_sweep
from repro.bench.reporting import write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"

QUICK = dict(
    merge_n=30_000,
    merge_repeats=3,
    queue_records=8_000,
    serving_n=8192,
    clients=6,
    requests_per_client=16,
)
FULL = dict()


def run_sweeps(quick: bool = False):
    params = QUICK if quick else FULL
    table, summary = run_hotpath_sweep(**params)
    write_json_report(
        [table],
        str(JSON_PATH),
        meta={
            "experiment": "hotpath_columnar_pqueue_concurrent_reads",
            "quick": quick,
            "summary": summary,
        },
    )
    return table, summary


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def sweeps():
    return run_sweeps(quick=False)


def test_hotpath_speedups_with_identical_ledgers(sweeps, capsys):
    table, summary = sweeps
    with capsys.disabled():
        table.show()
        print(f"\nwrote {JSON_PATH.name}")
    check(summary)


def test_json_report_written(sweeps):
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert (
        payload["meta"]["experiment"]
        == "hotpath_columnar_pqueue_concurrent_reads"
    )
    assert payload["tables"]


# ----------------------------------------------------------------------
# CLI entry point (CI smoke run: --quick)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller inputs (same cells and assertions)",
    )
    args = parser.parse_args(argv)
    table, summary = run_sweeps(quick=args.quick)
    table.show()
    check(summary)
    print(f"\nok -- wrote {JSON_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
