"""Traffic simulation: a sharded skyline service under mixed read/write load.

Run with::

    python examples/service_traffic_sim.py

The simulation drives a :class:`repro.service.SkylineService` the way a
product-search tier would be driven: every tick delivers a *batch* of
range-skyline queries (a Zipf-skewed mix of hot windows and fresh
rectangles) interleaved with a trickle of catalogue updates (new offers
inserted, stale offers deleted).  Writes land in the in-memory delta and
the service compacts -- rebuilding and re-balancing its shards -- whenever
the delta passes the configured threshold.  Each tick prints the served
queries, the result-cache hit rate, the block transfers charged across all
shard machines, and the delta fill; a final summary checks the service
against the in-memory reference skyline.
"""

from __future__ import annotations

import random

from repro import FourSidedQuery, Point, RangeQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.service import ServiceConfig, SkylineService
from repro.workloads import clustered_points

TICKS = 12
QUERIES_PER_TICK = 40
WRITES_PER_TICK = 18
HOT_WINDOWS = 10
UNIVERSE = 1_000_000


def make_hot_windows(rng: random.Random, count: int):
    windows = []
    for _ in range(count):
        width = rng.uniform(0.01, 0.04) * UNIVERSE
        start = rng.uniform(0, UNIVERSE - width)
        beta = rng.uniform(0, UNIVERSE)
        if rng.random() < 0.6:
            windows.append(TopOpenQuery(start, start + width, beta))
        else:
            windows.append(
                FourSidedQuery(start, start + width, beta * 0.5, beta * 0.5 + 0.3 * UNIVERSE)
            )
    return windows


def tick_queries(rng: random.Random, windows):
    """Zipf-skewed repeats of the hot windows plus a few one-off rectangles."""
    weights = [1.0 / (rank + 1) for rank in range(len(windows))]
    queries = rng.choices(windows, weights=weights, k=QUERIES_PER_TICK - 4)
    for _ in range(4):
        a, b = sorted(rng.uniform(0, UNIVERSE) for _ in range(2))
        queries.append(TopOpenQuery(a, b, rng.uniform(0, UNIVERSE)))
    return queries


def main() -> None:
    rng = random.Random(2013)
    points = clustered_points(8_000, universe=UNIVERSE, seed=7)
    service = SkylineService(
        points,
        ServiceConfig(
            shard_count=8,
            block_size=32,
            memory_blocks=32,
            delta_threshold=48,
            cache_capacity=512,
        ),
    )
    live = list(points)
    next_ident = len(points)
    windows = make_hot_windows(rng, HOT_WINDOWS)

    print(f"serving {len(service)} points from {len(service.shards)} shards")
    header = (
        f"{'tick':>4} {'queries':>8} {'hit rate':>9} {'coalesced':>10} "
        f"{'I/Os':>6} {'delta':>6} {'compactions':>12}"
    )
    print(header)
    print("-" * len(header))
    for tick in range(TICKS):
        # Read batch.
        before = service.io_total()
        batch = tick_queries(rng, windows)
        service.query_many(batch)
        tick_io = service.io_total() - before

        # Bursty writes every third tick: 2/3 inserts at off-grid
        # coordinates, 1/3 deletes.  Read-only ticks in between are served
        # straight from the result cache (writes invalidate it by bumping
        # the delta version embedded in every cache key).
        if tick % 3 == 0:
            for w in range(WRITES_PER_TICK):
                if w % 3 < 2:
                    point = Point(
                        rng.randrange(UNIVERSE) + 0.5,
                        rng.uniform(0, UNIVERSE),
                        next_ident,
                    )
                    try:
                        service.insert(point)
                    except ValueError:
                        continue  # coordinate collision with a live point
                    live.append(point)
                    next_ident += 1
                elif live:
                    victim = live.pop(rng.randrange(len(live)))
                    service.delete(victim)

        print(
            f"{tick:>4} {len(batch):>8} {service.cache.hit_rate():>9.2f} "
            f"{service.coalesced:>10} {tick_io:>6} {len(service.delta):>6} "
            f"{service.compactions:>12}"
        )

    status = service.describe()
    print("\nfinal state:")
    for key in ("shard_sizes", "live_points", "compactions", "cache_hit_rate", "io_total"):
        print(f"  {key}: {status[key]}")

    reference = sorted((p.x, p.y) for p in range_skyline(live, RangeQuery()))
    served = sorted((p.x, p.y) for p in service.skyline())
    assert served == reference, "service skyline diverged from the reference"
    print(f"\nskyline of the live catalogue: {len(served)} points (verified)")


if __name__ == "__main__":
    main()
