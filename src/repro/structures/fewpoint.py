"""The few-point top-open structure of Lemma 5.

For a chunk-sized point set (``n <= (B log U)^{O(1)}``) the structure
answers a top-open query in ``O(1 + k/B)`` I/Os:

1. a ray-dragging query (Lemma 4) finds ``p``, the lowest skyline point of
   ``P ∩ Q`` -- the first point hit by the ray ``x_hi x [y_lo, U]`` dragged
   left;
2. starting at ``p``'s position in the snapshot of the PPB-tree over
   ``Sigma(P)`` at version ``x_p``, segments are reported bottom-up until
   one starts left of ``x_lo`` (Observations 1 and 2), which never reads a
   block that does not contribute ~B output points.

The per-chunk PPB-tree has constant height for chunk-sized inputs, so the
initial descent replaces the paper's host-leaf pointers at no asymptotic
cost (see DESIGN.md §5).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.storage import StorageManager
from repro.ppbtree.build import build_segment_ppbtree
from repro.ppbtree.ppbtree import MultiversionBTree
from repro.segments.reduction import compute_sigma
from repro.segments.segment import HorizontalSegment
from repro.structures.raydrag import RayDragStructure


class FewPointStructure:
    """Top-open range skyline reporting on a small ("chunk") point set."""

    def __init__(
        self,
        storage: StorageManager,
        points: Iterable[Point],
        universe: Optional[int] = None,
    ) -> None:
        self.storage = storage
        self.points = sorted(points, key=lambda p: p.x)
        self.universe = universe or max(2, len(self.points))
        self.segments: List[HorizontalSegment] = compute_sigma(self.points)
        self.ppb_tree: MultiversionBTree = build_segment_ppbtree(
            storage, self.segments
        )
        self.ray_drag = RayDragStructure(storage, self.points, universe=self.universe)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of the chunk inside a top-open rectangle, sorted by x."""
        if not query.is_top_open:
            raise ValueError("FewPointStructure answers top-open queries only")
        return self.query_top_open(query.x_lo, query.x_hi, query.y_lo)

    def query_top_open(self, x_lo: float, x_hi: float, y_lo: float) -> List[Point]:
        """Answer ``[x_lo, x_hi] x [y_lo, inf[`` in O(1 + k/B) I/Os."""
        if not self.points:
            return []
        lowest = self.ray_drag.drag_left(x_hi, y_lo)
        if lowest is None or lowest.x < x_lo:
            return []
        return self._report_upwards(lowest, x_lo)

    def lowest_result_point(self, x_hi: float, y_lo: float) -> Optional[Point]:
        """The lowest skyline point of ``P ∩ ([-inf, x_hi] x [y_lo, inf[)``."""
        return self.ray_drag.drag_left(x_hi, y_lo)

    def _report_upwards(self, lowest: Point, x_lo: float) -> List[Point]:
        """Walk the snapshot at ``x = lowest.x`` upwards from ``lowest.y``."""
        reported: List[Point] = []

        def visitor(key: float, segment: HorizontalSegment) -> bool:
            point = segment.source
            if point is None:
                return True
            if point.x < x_lo:
                return False
            reported.append(point)
            return True

        self.ppb_tree.scan_from(lowest.x, lowest.y, visitor)
        reported.sort(key=lambda p: p.x)
        return reported

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def block_count(self) -> int:
        """Blocks of the two components."""
        return self.ppb_tree.block_count() + self.ray_drag.block_count()

    def __len__(self) -> int:
        return len(self.points)

    def x_range(self) -> Sequence[float]:
        """The x-extent ``(min, max)`` of the chunk (empty chunks give inf bounds)."""
        if not self.points:
            return (math.inf, -math.inf)
        return (self.points[0].x, self.points[-1].x)
