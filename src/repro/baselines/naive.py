"""The naive scan-and-sort baseline (Section 1.2).

"As a naive solution, we can first scan the entire point set P to eliminate
the points falling outside the query rectangle Q, and then find the skyline
of the remaining points by the fastest skyline algorithm on non-preprocessed
input sets.  This expensive solution can incur O((n/B) log_{M/B}(n/B))
I/Os."  The implementation stores the points in an :class:`~repro.em.EMFile`
and answers each query by a filtered scan, an external sort by x, and a
single right-to-left sweep.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.file import EMFile
from repro.em.sorting import external_sort
from repro.em.storage import StorageManager


class NaiveScanSkyline:
    """Answer range-skyline queries by scanning and sorting the whole file."""

    def __init__(self, storage: StorageManager, points: Iterable[Point]) -> None:
        self.storage = storage
        self.file = EMFile.from_records(storage, list(points), name="points")

    def query(self, query: RangeQuery) -> List[Point]:
        """Skyline of ``P ∩ Q`` via filter -> external sort -> sweep."""
        survivors = EMFile(self.storage, name="survivors")
        for point in self.file.scan():
            if query.contains(point):
                survivors.append(point)
        survivors.close()
        ordered = external_sort(self.storage, survivors, key=lambda p: p.x)
        # Right-to-left sweep over the x-sorted survivors: a point is maximal
        # iff its y exceeds the running maximum of everything to its right.
        # The sweep is done by buffering one block at a time in reverse order.
        result: List[Point] = []
        best_y = float("-inf")
        # The unflushed tail of the sorted file holds the largest x-values, so
        # it is swept first; then the full blocks are read in reverse order.
        remainder = list(ordered.scan())[
            ordered.block_count * self.storage.block_size :
        ]
        for point in sorted(remainder, key=lambda p: p.x, reverse=True):
            if point.y > best_y:
                result.append(point)
                best_y = point.y
        for block_index in reversed(range(ordered.block_count)):
            block = list(ordered.read_block(block_index))
            for point in reversed(block):
                if point.y > best_y:
                    result.append(point)
                    best_y = point.y
        result.sort(key=lambda p: p.x)
        return result

    def __len__(self) -> int:
        return len(self.file)

    def block_count(self) -> int:
        """Blocks occupied by the point file."""
        return self.file.block_count
