"""Tunables of the sharded skyline service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.em.config import EMConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of a :class:`repro.service.SkylineService`.

    Attributes
    ----------
    shard_count:
        Number of x-range shards the point set is partitioned into.
    block_size:
        ``B`` of every shard's simulated machine (records per block).
    memory_blocks:
        Buffer-pool frames of *each shard's* machine.  The service models a
        scale-out deployment -- every shard runs on its own node with its
        own buffer pool -- so the aggregate cache grows with the shard
        count, exactly as adding servers grows a cluster's RAM.  Cold-cache
        benchmarks are unaffected (they drop every pool before measuring);
        warm comparisons against a monolithic index should state this
        asymmetry, as ``repro.bench.bench_service`` does.
    epsilon:
        The query/update trade-off knob forwarded to every shard's
        :class:`repro.RangeSkylineIndex`.
    update_path:
        How writes reach the static structures.  ``"leveled"`` (the
        default) runs the Bentley--Saxe-style leveled subsystem of
        :mod:`repro.service.lsm`: the memtable seals into an immutable
        component when it fills, a :class:`~repro.service.lsm
        .CompactionScheduler` merges levels of geometrically increasing
        capacity in bounded incremental steps piggybacked on updates, and
        no single update ever pays an ``O(n/B)`` rebuild.
        ``"threshold-compact"`` is the legacy single-threshold path kept
        for benchmarking the difference: the flat delta triggers a
        stop-the-world :meth:`SkylineService.compact` when it fills.
    delta_threshold:
        Capacity of the level-0 memtable.  On the leveled path, once this
        many *pending inserts* accumulate the memtable is sealed and
        scheduled for an incremental merge into level 1.  On the legacy
        path, once the flat delta (pending inserts plus tombstones)
        reaches this many entries the next write triggers
        :meth:`SkylineService.compact` (when ``auto_compact`` is on).
    level_growth:
        Geometric fan-out of the leveled update path: level ``j`` holds up
        to ``delta_threshold * level_growth**j`` records before it is
        scheduled for a merge into level ``j + 1``.
    merge_step_blocks:
        Bound on the incremental merge work piggybacked on a single
        update: at most this many block transfers of pending merge debt
        are paid (charged to the service's maintenance ledger) per
        insert/delete.  The worst-case single-update I/O is therefore
        ``O(merge_step_blocks)`` instead of the legacy path's ``O(n/B)``
        rebuild; :meth:`SkylineService.drain` pays all outstanding debt
        at once.
    adaptive_topology:
        Whether the service's :class:`~repro.service.topology
        .TopologyManager` manages the shard layout *online*: every
        ``topology_check_every``-th update it re-examines per-shard load
        (base residents plus the memtable and level records in each
        shard's x-range) and splits a hot shard or merges two adjacent
        cold shards -- each a bounded local operation charged to the
        maintenance ledger, never a stop-the-world global rebuild.  Off
        by default: a static-topology service only re-cuts at an explicit
        :meth:`~repro.service.SkylineService.compact`.  Manual
        :meth:`~repro.service.SkylineService.split_shard` /
        :meth:`~repro.service.SkylineService.merge_shards` work either
        way.
    split_load_factor:
        A shard is *hot* -- and split at its size-balanced midpoint --
        when its range load reaches this many times the target load
        (``live points / shard_count``).  Must exceed 1.
    merge_load_factor:
        Two adjacent shards are *cold* -- and merged into one -- when
        their combined range load is at most this fraction of the target
        load.  Must be below 1 (and below ``split_load_factor``), or
        split/merge would thrash.
    fold_pressure_factor:
        The adaptive topology's third trigger, after hot splits and cold
        merges: when the *level-resident* records inside one shard's
        x-range (its slice of the LSM tower) exceed this fraction of the
        target load, the shard is *folded* -- split and immediately
        merged back, a bounded local compaction of just that range that
        pulls its tower slice down into the base shard and consumes its
        tombstones without changing the cut count.  Keeps a skewed
        insert stream from accumulating its hot region in ever-deeper
        level components.  ``0`` disables pressure folds.
    topology_check_every:
        How many updates pass between adaptive-topology policy checks.
        A check is one routing pass over the memtable plus one bisect
        per (level component, cut); the splits/merges/folds it may
        trigger are bounded by the affected range's own rebuild cost.
    cache_capacity:
        Maximum number of query results kept in the LRU result cache
        (0 disables caching).
    parallelism:
        Worker threads for batch execution; 1 executes shard worklists
        sequentially.  I/O accounting is exact at every level: each shard
        machine charges a private ledger, so fan-out never races a counter
        and parallel batches report bit-identical totals to serial runs.
    auto_compact:
        Whether writes trigger compaction as soon as the delta exceeds
        ``delta_threshold``.  Turn off to drive :meth:`compact` from an
        external scheduler, as a real service would.
    durability:
        Whether the service writes every update to a write-ahead log and
        periodic block-level shard snapshots on a
        :class:`~repro.service.durability.DurableStore`, so that
        :meth:`repro.service.SkylineService.open` can rebuild the exact
        live state after a crash.  Off by default: a purely in-memory
        service charges zero durability I/O.
    wal_group_commit:
        Group-commit batch size of the write-ahead log: appended records
        accumulate in memory and are forced to disk (one block write per
        ``block_size`` records, minimum one) every this-many records.  1
        makes every update durable immediately at one block write each;
        larger values amortise the write at the cost of losing up to
        ``wal_group_commit - 1`` acknowledged updates in a crash.
    snapshot_every_compactions:
        Cadence of block-level shard snapshots: every Nth compaction also
        serialises the freshly rebuilt shards to the durable store, which
        bounds WAL replay at recovery to the records logged since.  1
        snapshots at every compaction.
    reclaim_every_topology_ops:
        Auto-interleave durable-store garbage collection with topology
        maintenance: after every Nth online split / merge / fold the
        service calls :meth:`SkylineService.reclaim`, dropping
        superseded snapshot generations and the WAL prefix they make
        redundant.  A long-running serving deployment with adaptive
        topology otherwise needs an external scheduler to keep the store
        from growing without bound.  0 (default) disables
        auto-reclaim; replayed operations during recovery never count.
        No effect on a non-durable service.
    """

    shard_count: int = 4
    block_size: int = 64
    memory_blocks: int = 32
    epsilon: float = 0.5
    update_path: str = "leveled"
    delta_threshold: int = 128
    level_growth: int = 4
    merge_step_blocks: int = 8
    adaptive_topology: bool = False
    split_load_factor: float = 2.0
    merge_load_factor: float = 0.5
    fold_pressure_factor: float = 0.25
    topology_check_every: int = 16
    cache_capacity: int = 256
    parallelism: int = 1
    auto_compact: bool = True
    durability: bool = False
    wal_group_commit: int = 8
    snapshot_every_compactions: int = 1
    reclaim_every_topology_ops: int = 0

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if self.update_path not in ("leveled", "threshold-compact"):
            raise ValueError(
                "update_path must be 'leveled' or 'threshold-compact', "
                f"got {self.update_path!r}"
            )
        if self.delta_threshold < 1:
            raise ValueError(
                f"delta_threshold must be >= 1, got {self.delta_threshold}"
            )
        if self.level_growth < 2:
            raise ValueError(
                f"level_growth must be >= 2, got {self.level_growth}"
            )
        if self.merge_step_blocks < 1:
            raise ValueError(
                f"merge_step_blocks must be >= 1, got {self.merge_step_blocks}"
            )
        if self.split_load_factor <= 1.0:
            raise ValueError(
                f"split_load_factor must be > 1, got {self.split_load_factor}"
            )
        if not 0.0 < self.merge_load_factor < 1.0:
            raise ValueError(
                f"merge_load_factor must be in (0, 1), got {self.merge_load_factor}"
            )
        # merge_load_factor < 1 < split_load_factor (enforced above) is
        # the hysteresis that keeps split and merge from thrashing.
        if self.fold_pressure_factor < 0.0:
            raise ValueError(
                f"fold_pressure_factor must be >= 0, got {self.fold_pressure_factor}"
            )
        if self.topology_check_every < 1:
            raise ValueError(
                f"topology_check_every must be >= 1, got {self.topology_check_every}"
            )
        if self.cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.wal_group_commit < 1:
            raise ValueError(
                f"wal_group_commit must be >= 1, got {self.wal_group_commit}"
            )
        if self.snapshot_every_compactions < 1:
            raise ValueError(
                "snapshot_every_compactions must be >= 1, got "
                f"{self.snapshot_every_compactions}"
            )
        if self.reclaim_every_topology_ops < 0:
            raise ValueError(
                "reclaim_every_topology_ops must be >= 0, got "
                f"{self.reclaim_every_topology_ops}"
            )

    def shard_em_config(self) -> EMConfig:
        """The machine each shard runs on (one node of the scale-out fleet)."""
        return EMConfig(block_size=self.block_size, memory_blocks=self.memory_blocks)
