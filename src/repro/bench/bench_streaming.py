"""Streaming-tier benchmarks: delta notification I/O and window amortization.

Two claims, each measured in the repo's common currency (block transfers
on the simulated machines) next to wall-clock seconds:

1. **Delta vs naive notifications** (:func:`run_streaming_sweep` modes
   ``delta`` / ``naive``): the same Zipf-skewed insert stream lands on
   the same sharded engine twice, watched by the same ``subscribers``
   x-band rectangles.  The ``naive`` tier re-runs every subscription
   after every update (the recompute-per-tick baseline the ISSUE names);
   the ``delta`` tier pumps a :class:`repro.stream.SubscriptionManager`,
   whose per-shard ``(uid, write_version)`` scopes recompute only the
   subscriptions overlapping a written shard.  With ``alpha = 4`` most
   updates hit one hot shard, so most subscriptions are skipped at zero
   transfers -- the acceptance bar is **naive >= 3x delta** on
   notification I/O, with both modes' final per-rectangle skylines
   identical and every delta's replay state matching a fresh recompute.

2. **Windowed maintenance vs replay** (modes ``windowed`` / ``replay``):
   the same strictly-x-increasing stream is consumed once by a
   :class:`repro.stream.WindowedSkyline` (attrition does the skyline
   maintenance at Theorem 3's O(1/b) amortized transfers per point) and
   once by a :class:`repro.structures.DynamicTopOpenStructure` kept in
   sync by insert-new / delete-expired replay (the logarithmic dynamic
   structure the ISSUE names as the baseline).  Checkpoint skylines are
   compared between the two, and the claim is a strictly smaller
   amortized per-point maintenance cost for the window.

Accounting discipline: in the engine-backed cells the ledger partition
``attributed + maintenance == total - build`` is asserted after *every
notification batch*, not just at the end; in the window cells the
:meth:`~repro.stream.WindowedSkyline.ledger_ok` partition
(``append + expire + query == total``) is asserted at every checkpoint.

``benchmarks/bench_streaming.py`` drives the sweep (pytest or
``--quick`` CLI) and persists the table to ``BENCH_streaming.json``.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.engine import QueryRequest, SkylineEngine, UpdateRequest
from repro.engine.requests import SubscribeRequest
from repro.stream import SubscriptionManager, WindowedSkyline
from repro.structures.dynamic_topopen import DynamicTopOpenStructure
from repro.workloads import uniform_points, zipf_x_points

Summary = Dict[str, Dict[str, float]]


def _canon(points: Sequence[Point]) -> List[Tuple[float, float, object]]:
    return sorted((p.x, p.y, p.ident) for p in points)


def _ledger_ok(engine: SkylineEngine) -> bool:
    return (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


def _subscriber_rects(subscribers: int, universe: int) -> List[RangeQuery]:
    """``subscribers`` adjacent x-bands tiling the universe."""
    width = universe / subscribers
    return [
        RangeQuery(x_lo=i * width, x_hi=(i + 1) * width)
        for i in range(subscribers)
    ]


def _run_subscription_cell(
    mode: str,
    base: Sequence[Point],
    updates: Sequence[Point],
    rects: Sequence[RangeQuery],
    engine_kwargs: Dict[str, object],
) -> Tuple[Dict[str, float], List[List[Point]]]:
    """One notification tier over the shared stream; returns the cell
    counters and the final per-rectangle skylines (for cross-checking)."""
    engine = SkylineEngine.sharded(list(base), **engine_kwargs)
    manager = SubscriptionManager(engine)
    states: List[Dict[Tuple[float, float, object], Point]] = []
    if mode == "delta":
        subs = [manager.register(SubscribeRequest(rect))[0] for rect in rects]
    else:
        for rect in rects:
            result = engine.query(QueryRequest(rect))
            states.append({(p.x, p.y, p.ident): p for p in result.points})
    update_blocks = 0
    notify_blocks = 0
    notifications = 0
    ledger_checks = 0
    started = time.perf_counter()
    for point in updates:
        before = engine.io_total()
        engine.update(UpdateRequest.insert(point))
        update_blocks += engine.io_total() - before
        before = engine.io_total()
        if mode == "delta":
            deltas = manager.pump()
            notifications += len(deltas)
        else:
            # Naive tier: every subscription re-queried on every tick.
            for rect, state in zip(rects, states):
                result = engine.query(QueryRequest(rect))
                fresh = {(p.x, p.y, p.ident): p for p in result.points}
                if fresh != state:
                    state.clear()
                    state.update(fresh)
                    notifications += 1
        notify_blocks += engine.io_total() - before
        # The accounting identity must survive every notification batch.
        assert _ledger_ok(engine), f"{mode}: ledger partition broke mid-stream"
        ledger_checks += 1
    elapsed = time.perf_counter() - started
    if mode == "delta":
        finals = [sub.snapshot() for sub in subs]
        described = manager.describe()
        recomputed = float(described["recomputed"])  # type: ignore[arg-type]
        skipped = float(described["skipped"])  # type: ignore[arg-type]
        # Replay equivalence: each subscription's delta-replayed state
        # must equal a from-scratch recompute of its rectangle.
        for rect, final in zip(rects, finals):
            fresh = engine.query(QueryRequest(rect, consistency="fresh"))
            if _canon(final) != _canon(fresh.points):
                raise AssertionError(
                    f"delta replay state diverged from recompute on {rect}"
                )
    else:
        finals = [
            sorted(state.values(), key=lambda p: p.x) for state in states
        ]
        recomputed = float(len(updates) * len(rects))
        skipped = 0.0
    cell: Dict[str, float] = {
        "subscribers": float(len(rects)),
        "updates": float(len(updates)),
        "update_blocks": float(update_blocks),
        "notify_blocks": float(notify_blocks),
        "blocks": float(update_blocks + notify_blocks),
        "notifications": float(notifications),
        "recomputed": recomputed,
        "skipped": skipped,
        "ledger_checks": float(ledger_checks),
        "seconds": round(elapsed, 6),
        "attributed_io": float(engine.attributed_io()),
        "maintenance_io": float(engine.maintenance_io()),
        "io_total": float(engine.io_total()),
        "ledger_ok": 1.0 if _ledger_ok(engine) else 0.0,
    }
    return cell, finals


def _window_stream(
    stream_len: int, universe: int, seed: int
) -> List[Point]:
    """A strictly-x-increasing append stream with uniform y."""
    rng = random.Random(seed)
    return [
        Point(
            float(i) + rng.uniform(0.1, 0.9),
            rng.uniform(0, universe) + (i + 1) / (2.0 * (stream_len + 1)),
            ident=i,
        )
        for i in range(stream_len)
    ]


def _run_window_cells(
    window: int,
    stream_len: int,
    block_size: int,
    memory_blocks: int,
    query_every: int,
    seed: int,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """The windowed structure vs dynamic-structure replay, same stream."""
    universe = 1_000_000
    stream = _window_stream(stream_len, universe, seed)

    # -- windowed: attrition maintains the skyline ----------------------
    skyline = WindowedSkyline(
        window,
        "count",
        em_config=EMConfig(block_size=block_size, memory_blocks=memory_blocks),
    )
    checkpoints: List[List[Point]] = []
    started = time.perf_counter()
    for i, point in enumerate(stream):
        skyline.append(point)
        if (i + 1) % query_every == 0:
            checkpoints.append(skyline.skyline())
            assert skyline.ledger_ok(), "window ledger partition broke"
    windowed_elapsed = time.perf_counter() - started
    windowed_maintenance = skyline.append_io + skyline.expire_io
    windowed_cell: Dict[str, float] = {
        "stream_len": float(stream_len),
        "window": float(window),
        "maintenance_blocks": float(windowed_maintenance),
        "maintenance_per_point": round(windowed_maintenance / stream_len, 4),
        "query_blocks": float(skyline.query_io),
        "blocks": float(skyline.io_total()),
        "checkpoints": float(len(checkpoints)),
        "seconds": round(windowed_elapsed, 6),
        "ledger_ok": 1.0 if skyline.ledger_ok() else 0.0,
    }

    # -- replay: the dynamic structure kept in sync by insert/delete ----
    storage = StorageManager(
        EMConfig(block_size=block_size, memory_blocks=memory_blocks)
    )
    build_io = storage.io_total()
    structure = DynamicTopOpenStructure(storage)
    build_io = storage.io_total() - build_io
    live: List[Point] = []
    replay_maintenance = 0
    replay_query = 0
    replay_checkpoints: List[List[Point]] = []
    started = time.perf_counter()
    for i, point in enumerate(stream):
        before = storage.io_total()
        structure.insert(point)
        live.append(point)
        if len(live) > window:
            structure.delete(live.pop(0))
        replay_maintenance += storage.io_total() - before
        if (i + 1) % query_every == 0:
            before = storage.io_total()
            replay_checkpoints.append(structure.global_skyline())
            replay_query += storage.io_total() - before
    replay_elapsed = time.perf_counter() - started
    replay_cell: Dict[str, float] = {
        "stream_len": float(stream_len),
        "window": float(window),
        "maintenance_blocks": float(replay_maintenance),
        "maintenance_per_point": round(replay_maintenance / stream_len, 4),
        "query_blocks": float(replay_query),
        "blocks": float(storage.io_total() - build_io),
        "checkpoints": float(len(replay_checkpoints)),
        "seconds": round(replay_elapsed, 6),
        # The replay baseline has no three-way meter; the partition
        # charged here is maintenance + query == total - build.
        "ledger_ok": 1.0
        if replay_maintenance + replay_query
        == storage.io_total() - build_io
        else 0.0,
    }

    # Cross-validation: both structures must report the same window
    # skyline at every checkpoint.
    matches = all(
        _canon(a) == _canon(b)
        for a, b in zip(checkpoints, replay_checkpoints)
    )
    windowed_cell["answers_match"] = 1.0 if matches else 0.0
    replay_cell["answers_match"] = 1.0 if matches else 0.0
    return windowed_cell, replay_cell


def run_streaming_sweep(
    n: int = 4096,
    subscribers: int = 8,
    updates: int = 192,
    shard_count: int = 8,
    block_size: int = 16,
    memory_blocks: int = 8,
    zipf_alpha: float = 4.0,
    window: int = 512,
    stream_len: int = 4096,
    query_every: int = 64,
    seed: int = 0,
) -> Tuple[BenchmarkTable, Summary]:
    """The four streaming cells; see the module docstring for the claims."""
    universe = 1_000_000
    base = uniform_points(n, universe=universe, seed=seed)
    stream = zipf_x_points(
        updates,
        universe=universe,
        alpha=zipf_alpha,
        ident_base=n,
        seed=seed + 1,
    )
    rects = _subscriber_rects(subscribers, universe)
    engine_kwargs: Dict[str, object] = dict(
        shard_count=shard_count,
        block_size=block_size,
        memory_blocks=memory_blocks,
        cache_capacity=0,
    )

    table = BenchmarkTable(
        f"Streaming tier -- n={n}, {subscribers} subscribers, "
        f"{updates} Zipf(alpha={zipf_alpha}) updates; window={window} over "
        f"{stream_len} appends, B={block_size}"
    )
    summary: Summary = {}

    # -- cells 1+2: delta vs naive notification I/O ---------------------
    finals: Dict[str, List[List[Point]]] = {}
    for mode in ("delta", "naive"):
        cell, final = _run_subscription_cell(
            mode, base, stream, rects, engine_kwargs
        )
        summary[mode] = cell
        finals[mode] = final
    matches = all(
        _canon(d) == _canon(v)
        for d, v in zip(finals["delta"], finals["naive"])
    )
    summary["delta"]["answers_match"] = 1.0 if matches else 0.0
    summary["naive"]["answers_match"] = 1.0 if matches else 0.0

    # -- cells 3+4: windowed skyline vs dynamic-structure replay --------
    windowed_cell, replay_cell = _run_window_cells(
        window, stream_len, block_size, memory_blocks, query_every, seed + 2
    )
    summary["windowed"] = windowed_cell
    summary["replay"] = replay_cell

    for mode in ("delta", "naive"):
        cell = summary[mode]
        table.add(
            measured_io=cell["notify_blocks"],
            seconds=cell["seconds"],
            mode=mode,
            subscribers=cell["subscribers"],
            updates=cell["updates"],
            notifications=cell["notifications"],
            recomputed=cell["recomputed"],
            skipped=cell["skipped"],
            update_io=cell["update_blocks"],
        )
    for mode in ("windowed", "replay"):
        cell = summary[mode]
        table.add(
            measured_io=cell["maintenance_blocks"],
            seconds=cell["seconds"],
            mode=mode,
            stream_len=cell["stream_len"],
            window=cell["window"],
            per_point=cell["maintenance_per_point"],
            query_io=cell["query_blocks"],
            checkpoints=cell["checkpoints"],
        )
    return table, summary


def check(summary: Summary) -> None:
    """The acceptance assertions both pytest and the CLI enforce."""
    for mode, cell in summary.items():
        assert cell["ledger_ok"] == 1.0, (
            f"ledger partition broke in the {mode} cell"
        )
        assert cell["answers_match"] == 1.0, (
            f"the {mode} cell's answers diverged from its counterpart"
        )
    delta = summary["delta"]
    naive = summary["naive"]
    assert delta["subscribers"] >= 8, "the claim needs >= 8 subscribers"
    assert delta["skipped"] > 0, (
        "write-version scoping never skipped a subscription; the "
        "comparison is vacuous"
    )
    assert delta["recomputed"] > 0 and delta["notifications"] > 0, (
        "the delta tier never delivered anything"
    )
    # The headline claim: scoped delta delivery beats re-query-per-tick
    # by at least 3x on notification block transfers.
    assert naive["notify_blocks"] >= 3.0 * delta["notify_blocks"], (
        f"delta notifications saved less than 3x: naive "
        f"{naive['notify_blocks']} vs delta {delta['notify_blocks']} blocks"
    )
    windowed = summary["windowed"]
    replay = summary["replay"]
    assert windowed["checkpoints"] == replay["checkpoints"]
    # Theorem 3's amortized O(1/b) window maintenance must undercut the
    # logarithmic dynamic-structure replay per appended point.
    assert (
        windowed["maintenance_per_point"] < replay["maintenance_per_point"]
    ), (
        f"window maintenance ({windowed['maintenance_per_point']}/pt) did "
        f"not beat replay ({replay['maintenance_per_point']}/pt)"
    )
