"""Tests for the workload generators and the benchmark harness."""

from repro.bench import BenchmarkTable, measure_build, measure_queries, measure_updates
from repro.bench.harness import make_storage
from repro.core.point import Point, in_general_position
from repro.core.queries import classify
from repro.structures import StaticTopOpenStructure
from repro.workloads import (
    anti_dominance_queries,
    anticorrelated_points,
    clustered_points,
    correlated_points,
    four_sided_queries,
    grid_permutation_points,
    top_open_queries,
    uniform_points,
)


def test_point_generators_produce_general_position():
    for generator in [uniform_points, correlated_points, anticorrelated_points, clustered_points]:
        points = generator(200, seed=1)
        assert len(points) == 200
        assert in_general_position(points)


def test_generators_are_deterministic_per_seed():
    assert uniform_points(50, seed=7) == uniform_points(50, seed=7)
    assert uniform_points(50, seed=7) != uniform_points(50, seed=8)


def test_correlation_shapes():
    from repro.core.skyline import skyline

    correlated = correlated_points(400, seed=2)
    anticorrelated = anticorrelated_points(400, seed=2)
    assert len(skyline(anticorrelated)) > len(skyline(correlated))


def test_grid_permutation_is_a_permutation():
    points = grid_permutation_points(100, seed=3)
    assert sorted(int(p.x) for p in points) == list(range(100))
    assert sorted(int(p.y) for p in points) == list(range(100))


def test_query_generators_shapes():
    points = uniform_points(100, seed=4)
    tops = top_open_queries(points, 10, seed=4)
    fours = four_sided_queries(points, 10, seed=4)
    antis = anti_dominance_queries(points, 10, seed=4)
    assert all(classify(q) == "top-open" for q in tops)
    assert all(classify(q) == "4-sided" for q in fours)
    assert all(classify(q) == "anti-dominance" for q in antis)
    assert len(tops) == len(fours) == len(antis) == 10


def test_benchmark_table_rendering_and_ratios():
    table = BenchmarkTable("demo")
    table.add(measured_io=10.0, predicted=5.0, n=100)
    table.add(measured_io=20.0, predicted=10.0, n=200)
    table.add(measured_io=3.0, predicted=None, n=300)
    text = table.render()
    assert "demo" in text and "measured I/O" in text and "300" in text
    assert table.ratios() == [2.0, 2.0]
    assert table.max_ratio_spread() == 1.0
    assert table.measured_values() == [10.0, 20.0, 3.0]
    assert table.column_names() == ["n"]


def test_measure_helpers_count_io():
    storage = make_storage(block_size=16, memory_blocks=8)
    points = sorted(uniform_points(200, seed=5), key=lambda p: p.x)
    structure, build_io = measure_build(
        storage, lambda: StaticTopOpenStructure.build_sorted(storage, points)
    )
    assert build_io >= 0
    queries = top_open_queries(points, 5, seed=5)
    io_per_query, avg_k = measure_queries(storage, structure, queries)
    assert io_per_query >= 0 and avg_k >= 0
    update_io = measure_updates(storage, lambda p: None, uniform_points(5, seed=6))
    assert update_io == 0
