"""Streaming tier: scoped delta notifications, window amortization.

Claims (ISSUE 8 acceptance):

* on a Zipf-skewed insert stream watched by **>= 8 subscribers**,
  continuous-subscription **delta delivery costs at least 3x fewer block
  transfers** than naively re-querying every subscription on every
  update -- the per-shard ``(uid, write_version)`` scopes skip every
  subscription whose shards were untouched;
* maintaining a sliding-window skyline through the I/O-CPQA's attrition
  (:class:`repro.stream.WindowedSkyline`) costs **less amortized I/O per
  appended point** than replaying the window into the dynamic
  ``DynamicTopOpenStructure`` (insert-new / delete-expired), with both
  structures reporting identical checkpoint skylines;
* the engine's ledger partition ``attributed + maintenance == total -
  build`` is asserted after **every notification batch**, and the window
  structure's own partition (``append + expire + query == total``) at
  every checkpoint.

Run under pytest (full sweep) or standalone::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick]

Both modes persist the comparison table to ``BENCH_streaming.json``
(schema v1, see :func:`repro.bench.reporting.write_json_report`); the
quick mode shrinks the streams but keeps every cell and assertion
(including the 8-subscriber floor).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.bench_streaming import check, run_streaming_sweep
from repro.bench.reporting import write_json_report

JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_streaming.json"

QUICK = dict(n=1024, updates=96, window=192, stream_len=1024, query_every=32)
FULL = dict()


def run_sweeps(quick: bool = False):
    params = QUICK if quick else FULL
    table, summary = run_streaming_sweep(**params)
    write_json_report(
        [table],
        str(JSON_PATH),
        meta={
            "experiment": "streaming_deltas_and_windows",
            "quick": quick,
            "summary": summary,
        },
    )
    return table, summary


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest  # noqa: E402


@pytest.fixture(scope="module")
def sweeps():
    return run_sweeps(quick=False)


def test_streaming_deltas_beat_naive_and_windows_amortize(sweeps, capsys):
    table, summary = sweeps
    with capsys.disabled():
        table.show()
        print(f"\nwrote {JSON_PATH.name}")
    check(summary)


def test_json_report_written(sweeps):
    import json

    payload = json.loads(JSON_PATH.read_text())
    assert payload["schema"] == 1
    assert payload["meta"]["experiment"] == "streaming_deltas_and_windows"
    assert payload["tables"]


# ----------------------------------------------------------------------
# CLI entry point (CI smoke run: --quick)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller streams (same cells, assertions and subscriber floor)",
    )
    args = parser.parse_args(argv)
    table, summary = run_sweeps(quick=args.quick)
    table.show()
    check(summary)
    print(f"\nok -- wrote {JSON_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
