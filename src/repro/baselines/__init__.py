"""Baselines the paper compares against (Section 1.2).

* :class:`NaiveScanSkyline` -- scan the whole file, filter by the query and
  run the external-memory skyline algorithm on the survivors:
  ``O((n/B) log_{M/B}(n/B))`` I/Os per query.
* :class:`RTreeBBS` -- an STR-packed R-tree traversed with the
  branch-and-bound skyline (BBS) algorithm of Papadias et al., restricted to
  the query rectangle.  A heuristic with no worst-case guarantee.
* :class:`InternalMemoryStructure` -- a pointer-machine-style structure that
  reports points one at a time, paying the ``Omega(k)`` I/Os the paper
  attributes to all prior internal-memory solutions.
"""

from repro.baselines.naive import NaiveScanSkyline
from repro.baselines.rtree import RTree, RTreeBBS
from repro.baselines.internal import InternalMemoryStructure

__all__ = ["NaiveScanSkyline", "RTree", "RTreeBBS", "InternalMemoryStructure"]
