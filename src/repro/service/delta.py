"""The in-memory write delta: pending inserts and delete tombstones.

Writes never touch the static shard structures directly.  Following the
logarithmic method (Bentley--Saxe), inserts accumulate in a small in-memory
buffer that every query folds into its answer, and deletes of static points
are recorded as tombstones.  When the delta grows past the service's
threshold a compaction rebuilds the static shards from the live point set
and empties the buffer, so the memory the delta occupies stays bounded by
the threshold.

Skyline queries are *not* decomposable under deletion (removing a maximal
point can expose points it used to dominate), so tombstones cannot simply
be filtered out of a shard's precomputed answer.  Instead, a query whose
rectangle contains a tombstone of some shard recomputes that shard's local
skyline from the shard's resident live points; shards untouched by
tombstones keep using their static structures at full I/O efficiency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery

Key = Tuple[float, float, Optional[int]]


def point_key(point: Point) -> Key:
    """Identity key of a stored point: coordinates plus ``ident``."""
    return (point.x, point.y, point.ident)


class DeltaBuffer:
    """Pending inserts plus delete tombstones, with a change version."""

    def __init__(self) -> None:
        self.inserts: Dict[Key, Point] = {}
        self.tombstones: Dict[Key, Point] = {}
        # Bumped on every mutation; result-cache keys embed it, so any
        # write implicitly invalidates every cached answer.
        self.version = 0

    def __len__(self) -> int:
        return len(self.inserts) + len(self.tombstones)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Buffer an insert (re-inserting a tombstoned point revives it)."""
        key = point_key(point)
        if key in self.tombstones:
            del self.tombstones[key]
        else:
            self.inserts[key] = point
        self.version += 1

    def remove_insert(self, point: Point) -> bool:
        """Drop a pending insert matching ``point``; prefers an exact
        ``ident`` match among coordinate twins.  Returns success."""
        victim = self._match(self.inserts, point)
        if victim is None:
            return False
        del self.inserts[victim]
        self.version += 1
        return True

    def add_tombstone(self, point: Point) -> None:
        """Record that the *static* point ``point`` is deleted."""
        self.tombstones[point_key(point)] = point
        self.version += 1

    def clear(self) -> None:
        """Empty the buffer (after a compaction)."""
        self.inserts.clear()
        self.tombstones.clear()
        self.version += 1

    # ------------------------------------------------------------------
    # Query-side views
    # ------------------------------------------------------------------
    def is_deleted(self, point: Point) -> bool:
        return point_key(point) in self.tombstones

    def candidates_in(self, query: RangeQuery) -> List[Point]:
        """Pending inserts inside the query rectangle."""
        return [p for p in self.inserts.values() if query.contains(p)]

    def tombstone_hits(self, query: RangeQuery, x_lo: float, x_hi: float) -> bool:
        """Whether a tombstone lies inside ``query`` within ``[x_lo, x_hi)``.

        Only then is the static answer of the shard covering that x-range
        unreliable (a deleted point outside the rectangle can neither appear
        in, nor have dominated anything in, the answer).
        """
        return any(
            x_lo <= t.x < x_hi and query.contains(t)
            for t in self.tombstones.values()
        )

    def _match(self, table: Dict[Key, Point], point: Point) -> Optional[Key]:
        """A key in ``table`` matching ``point``'s coordinates, preferring an
        exact ident match -- the same one-victim semantics as
        :meth:`repro.RangeSkylineIndex.delete`."""
        exact = point_key(point)
        if exact in table:
            return exact
        for key in table:
            if key[0] == point.x and key[1] == point.y:
                return key
        return None
