"""Machine parameters of the simulated external-memory model."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class EMConfig:
    """Parameters of a simulated external-memory machine.

    Attributes
    ----------
    block_size:
        ``B`` -- the number of records (words) that fit in one disk block.
    memory_blocks:
        ``M / B`` -- how many blocks the buffer pool may hold at once.
        The paper's tall-cache style assumption ``M >= B^2`` is not required,
        but ``memory_blocks`` must be at least 4 so that a constant number of
        blocks can be pinned while still leaving room for normal traffic.
    """

    block_size: int = 64
    memory_blocks: int = 32

    def __post_init__(self) -> None:
        if self.block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {self.block_size}")
        if self.memory_blocks < 4:
            raise ValueError(
                f"memory_blocks must be >= 4, got {self.memory_blocks}"
            )

    @property
    def memory_words(self) -> int:
        """Total memory capacity ``M`` expressed in records (words)."""
        return self.block_size * self.memory_blocks

    def blocks_for(self, n_records: int) -> int:
        """Number of blocks needed to hold ``n_records`` records."""
        if n_records <= 0:
            return 0
        return math.ceil(n_records / self.block_size)

    def log_b(self, n: int) -> float:
        """``log_B(n)`` -- the branching-factor logarithm used by B-tree bounds."""
        if n <= 1:
            return 1.0
        return max(1.0, math.log(n, max(2, self.block_size)))

    def scan_cost(self, n_records: int) -> int:
        """The cost of one sequential scan over ``n_records`` records."""
        return self.blocks_for(n_records)

    def sort_cost(self, n_records: int) -> float:
        """The sorting bound ``(n/B) * log_{M/B}(n/B)`` of Aggarwal--Vitter."""
        n_blocks = self.blocks_for(n_records)
        if n_blocks <= 1:
            return 1.0
        fanout = max(2, self.memory_blocks - 1)
        return n_blocks * max(1.0, math.log(n_blocks, fanout))

    def with_block_size(self, block_size: int) -> "EMConfig":
        """A copy of this configuration with a different ``B``."""
        return EMConfig(block_size=block_size, memory_blocks=self.memory_blocks)

    def with_memory_blocks(self, memory_blocks: int) -> "EMConfig":
        """A copy of this configuration with a different buffer-pool size."""
        return EMConfig(block_size=self.block_size, memory_blocks=memory_blocks)


DEFAULT_CONFIG = EMConfig()
