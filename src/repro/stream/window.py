"""Sliding-window skyline maintenance on the I/O-CPQA (Theorem 3).

``WindowedSkyline`` maintains the skyline of the most recent points of an
append-only stream whose x-coordinates (timestamps) are strictly
increasing.  Two observations make the attrition queue *exactly* the
right machinery:

* **Attrition is skyline maintenance.**  Appending a point ``p`` keyed by
  ``-p.y`` attrites every earlier element with key ``>= -p.y`` -- i.e.
  every older point with ``y <= p.y``, which (having smaller x too) is
  precisely the set ``p`` dominates.  The surviving queue, read in key
  order, is the window skyline in increasing x / decreasing y.

* **Dominated points never resurface.**  A point dominated inside the
  window was dominated by a *newer* point, and windows expire oldest
  first -- the dominator always outlives its victims, so attriting a
  point is a permanent, correct eviction.  No regret set needs to be
  kept, which is what makes the cost ``O(1)`` worst-case / ``O(1/b)``
  amortized per operation (Theorem 3) instead of the logarithmic
  update bound of the dynamic tree structure.

Expiry uses a **deque of components**: arrivals are buffered in an
in-memory open run (the analogue of the I/O-CPQA's pinned tail) and
sealed into immutable per-chunk queues of ``chunk`` points.  A window
slide drops whole components from the front by comparing cached sequence
and coordinate bounds -- zero block transfers -- and only the one
boundary component is truncated element-wise through ``DeleteMin`` (each
record block read at most once across consecutive expiries).  The full
window skyline is the left-to-right ``CatenateAndAttrite`` fold of the
deque, which costs zero transfers and is cached between appends; because
queue values are persistent, that folded value doubles as the pinnable
snapshot :class:`repro.stream.ResumableTopK` iterates over.

Every block transfer the structure performs lands on its own private
:class:`~repro.em.storage.StorageManager` ledger and is charged to
exactly one of three meters -- ``append_io`` (seals), ``expire_io``
(boundary truncation) and ``query_io`` (reporting) -- so the partition
``append_io + expire_io + query_io == io_total`` holds exactly at all
times (asserted by :meth:`WindowedSkyline.ledger_ok` and the streaming
benchmark).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, cast

from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.pqa.iocpqa import IOCPQA

#: Window measured in points: the skyline of the last ``window`` appends.
WINDOW_COUNT = "count"
#: Window measured on the x-axis: points with ``x > newest.x - window``.
WINDOW_SPAN = "span"

WINDOW_MODES = (WINDOW_COUNT, WINDOW_SPAN)

#: The paper's Theorem 3 cost, quoted by :meth:`WindowedSkyline.explain`.
THEOREM_3_BOUND = (
    "O(1) worst-case block transfers per InsertAndAttrite / DeleteMin / "
    "CatenateAndAttrite, O(1/b) amortized (Theorem 3)"
)

#: Payload stored in the queues: ``(sequence number, point)``.
_Entry = Tuple[int, Point]


@dataclass(frozen=True)
class _Component:
    """One sealed chunk of the stream: its queue plus in-memory metadata.

    ``queue`` holds the chunk's attrition survivors keyed by ``-y``.
    ``xs`` are the x-coordinates of the chunk's *raw* points (cheap
    resident metadata -- one float per point, never a block transfer), so
    expiry decisions and live counts come from ``bisect`` instead of
    touching record blocks; ``dropped`` counts the expired raw prefix.
    """

    queue: IOCPQA
    first_seq: int
    xs: Tuple[float, ...]
    dropped: int = 0

    @property
    def last_seq(self) -> int:
        return self.first_seq + len(self.xs) - 1

    @property
    def oldest_live_seq(self) -> int:
        return self.first_seq + self.dropped

    @property
    def oldest_live_x(self) -> float:
        return self.xs[self.dropped]

    @property
    def newest_x(self) -> float:
        return self.xs[-1]

    def live_count(self, min_seq: int, min_x_exclusive: float) -> int:
        """Raw points of this chunk still inside the window."""
        start = max(
            self.dropped,
            min_seq - self.first_seq,
            bisect.bisect_right(self.xs, min_x_exclusive),
        )
        return max(0, len(self.xs) - start)


class WindowedSkyline:
    """The skyline of a sliding window over an append-only point stream.

    Parameters
    ----------
    window:
        Window extent: a point count (``mode="count"``, at least 1) or an
        x-axis span (``mode="span"``, positive).
    mode:
        ``"count"`` or ``"span"`` -- see :data:`WINDOW_MODES`.
    storage:
        The simulated machine to charge; a private default machine is
        created when omitted (``em_config`` tunes it).
    chunk:
        Points per sealed component (default: the machine's block size,
        so one component seal writes O(1) record blocks).
    """

    def __init__(
        self,
        window: float,
        mode: str = WINDOW_COUNT,
        *,
        storage: Optional[StorageManager] = None,
        chunk: Optional[int] = None,
        em_config: Optional[EMConfig] = None,
    ) -> None:
        if mode not in WINDOW_MODES:
            raise ValueError(
                f"mode must be one of {WINDOW_MODES}, got {mode!r}"
            )
        if mode == WINDOW_COUNT:
            if int(window) != window or window < 1:
                raise ValueError(
                    f"a count window must be a whole number >= 1, got {window}"
                )
        elif window <= 0:
            raise ValueError(f"a span window must be > 0, got {window}")
        self.window = window
        self.mode = mode
        self.storage = storage or StorageManager(em_config or EMConfig())
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk or self.storage.block_size
        self._components: Deque[_Component] = deque()
        self._open: List[_Entry] = []
        self._open_first_seq = 0
        self._appended = 0
        self._last_x = float("-inf")
        self._folded: Optional[IOCPQA] = None
        # The three-way ledger partition (see the module docstring).
        self._append_io = 0
        self._expire_io = 0
        self._query_io = 0

    # ------------------------------------------------------------------
    # Window geometry
    # ------------------------------------------------------------------
    def _min_live_seq(self) -> int:
        """Smallest live sequence number (count windows; 0 for span)."""
        if self.mode == WINDOW_COUNT:
            return max(0, self._appended - int(self.window))
        return 0

    def _min_live_x(self) -> float:
        """Exclusive x lower bound of the window (span; -inf for count)."""
        if self.mode == WINDOW_SPAN:
            return self._last_x - self.window
        return float("-inf")

    def _live(self, seq: int, x: float) -> bool:
        """Whether a point at sequence ``seq`` / coordinate ``x`` is
        still inside the window."""
        return seq >= self._min_live_seq() and x > self._min_live_x()

    # ------------------------------------------------------------------
    # The append stream
    # ------------------------------------------------------------------
    def append(self, point: Point) -> None:
        """Admit the next stream point and slide the window.

        The stream is ordered by x (time): a duplicate or regressing
        x-coordinate is rejected, which also preserves the general
        position the skyline structures assume.
        """
        if point.x <= self._last_x:
            raise ValueError(
                f"stream x must be strictly increasing: got {point.x} after "
                f"{self._last_x} (duplicate or regressing timestamp)"
            )
        before = self.storage.snapshot()
        self._open.append((self._appended, point))
        self._appended += 1
        self._last_x = point.x
        if len(self._open) >= self.chunk:
            self._seal_open_run()
        self._append_io += (self.storage.snapshot() - before).total
        self._expire()
        self._folded = None

    def _seal_open_run(self) -> None:
        """Seal the open run into one immutable component (O(chunk/b)
        block writes for the attrition survivors)."""
        if not self._open:
            return
        queue = IOCPQA.build(
            self.storage, [(-p.y, (seq, p)) for seq, p in self._open]
        )
        self._components.append(
            _Component(
                queue=queue,
                first_seq=self._open_first_seq,
                xs=tuple(p.x for _seq, p in self._open),
            )
        )
        self._open_first_seq += len(self._open)
        self._open = []

    # ------------------------------------------------------------------
    # Expiry (the deque-of-components slide)
    # ------------------------------------------------------------------
    def _expire(self) -> None:
        """Drop expired points: whole components by their cached bounds
        (zero transfers), the boundary component via ``DeleteMin``."""
        before = self.storage.snapshot()
        while self._components:
            front = self._components[0]
            if self._live(front.oldest_live_seq, front.oldest_live_x):
                break
            if not self._live(front.last_seq, front.newest_x):
                # The whole component expired: O(1), no block touched.
                self._components.popleft()
                continue
            # Boundary component: pop the expired prefix of survivors.
            # Survivors are in x order, so expired ones are a queue
            # prefix; raw expired points advance ``dropped`` for free.
            queue = front.queue
            while not queue.is_empty():
                head = queue.find_min()
                assert head is not None
                seq, p = cast(_Entry, head[1])
                if self._live(seq, p.x):
                    break
                _, queue = queue.delete_min()
            dropped = max(
                front.dropped,
                self._min_live_seq() - front.first_seq,
                bisect.bisect_right(front.xs, self._min_live_x()),
            )
            self._components[0] = _Component(
                queue=queue,
                first_seq=front.first_seq,
                xs=front.xs,
                dropped=min(dropped, len(front.xs) - 1),
            )
            break
        # The open run is in memory: trim its expired prefix for free.
        cut = 0
        while cut < len(self._open) and not self._live(
            self._open[cut][0], self._open[cut][1].x
        ):
            cut += 1
        if cut:
            self._open = self._open[cut:]
        self._expire_io += (self.storage.snapshot() - before).total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def skyline_queue(self) -> IOCPQA:
        """The window skyline as one persistent queue value.

        The left-to-right ``CatenateAndAttrite`` fold of the component
        deque plus the open run: zero block transfers (Theorem 3), and --
        because queue values are immutable -- a snapshot that later
        appends cannot disturb, which is what
        :class:`repro.stream.ResumableTopK` pins.
        """
        if self._folded is not None:
            return self._folded
        folded = IOCPQA.empty(self.storage, self.chunk)
        for component in self._components:
            folded = folded.catenate_and_attrite(component.queue)
        if self._open:
            open_queue = IOCPQA.build_in_memory(
                self.storage,
                [(-p.y, (seq, p)) for seq, p in self._open],
                self.chunk,
            )
            folded = folded.catenate_and_attrite(open_queue)
        self._folded = folded
        return folded

    def skyline(self) -> List[Point]:
        """The current window skyline in increasing x (decreasing y).

        Reporting reads each surviving record block once; the transfers
        are charged to ``query_io``.
        """
        before = self.storage.snapshot()
        items = self.skyline_queue().items()
        self._query_io += (self.storage.snapshot() - before).total
        return [cast(_Entry, payload)[1] for _key, payload in items]

    def __len__(self) -> int:
        """Number of live (unexpired) points currently in the window."""
        min_seq = self._min_live_seq()
        min_x = self._min_live_x()
        live = sum(
            component.live_count(min_seq, min_x)
            for component in self._components
        )
        live += sum(
            1 for seq, p in self._open if self._live(seq, p.x)
        )
        return live

    # ------------------------------------------------------------------
    # Accounting and introspection
    # ------------------------------------------------------------------
    @property
    def append_io(self) -> int:
        """Block transfers charged by appends (component seals)."""
        return self._append_io

    @property
    def expire_io(self) -> int:
        """Block transfers charged by window slides (boundary pops)."""
        return self._expire_io

    @property
    def query_io(self) -> int:
        """Block transfers charged by skyline reporting."""
        return self._query_io

    def charge_query_io(self, blocks: int) -> None:
        """Credit externally driven snapshot reads to the query meter.

        :class:`repro.stream.ResumableTopK` pops a pinned fold directly,
        hitting this structure's ledger; charging those transfers here
        keeps the three-way partition (:meth:`ledger_ok`) exact.
        """
        self._query_io += blocks

    def io_total(self) -> int:
        """The private machine's full ledger total."""
        return self.storage.io_total()

    def ledger_ok(self) -> bool:
        """The charging discipline: the three meters partition the ledger."""
        return (
            self._append_io + self._expire_io + self._query_io
            == self.io_total()
        )

    def explain(self) -> Dict[str, object]:
        """The structure choice and the paper bound behind it (no I/O)."""
        return {
            "structure": "windowed-iocpqa",
            "bound": THEOREM_3_BOUND,
            "window": self.window,
            "mode": self.mode,
            "chunk": self.chunk,
            "block_size": self.storage.block_size,
            "note": (
                "attrition == dominated-point eviction: the dominator of "
                "a window point always outlives it, so the surviving "
                "queue is the window skyline and no regret set is kept"
            ),
        }

    def describe(self) -> Dict[str, object]:
        """Occupancy, component layout and the I/O charge partition."""
        survivors = len(self.skyline_queue().reachable_record_blocks())
        return {
            "appended": self._appended,
            "live": len(self),
            "components": len(self._components),
            "open_run": len(self._open),
            "skyline_record_blocks": survivors,
            "append_io": self._append_io,
            "expire_io": self._expire_io,
            "query_io": self._query_io,
            "io_total": self.io_total(),
            "ledger_ok": self.ledger_ok(),
            **self.explain(),
        }
