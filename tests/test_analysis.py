"""The static passes of ``repro.analysis`` (and the repo's own cleanliness)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import cli, iolint, locklint
from repro.analysis.pragmas import scan_pragmas

SRC = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# Uncharged-I/O pass
# ----------------------------------------------------------------------
def test_iolint_flags_every_uncharged_access() -> None:
    source = (
        "def f(disk, storage):\n"
        "    data = disk.read_block(3)\n"
        "    raw = disk._blocks\n"
        "    storage.disk.poke(1, [])\n"
        "    free = storage.disk.peek(2)\n"
        "    return data, raw, free\n"
    )
    findings = iolint.lint_source("src/repro/toy.py", source)
    assert [f.line for f in findings] == [2, 3, 4, 5]
    assert all(f.rule == "uncharged-io" for f in findings)


def test_iolint_charged_receivers_not_flagged() -> None:
    # EMFile/StorageManager methods charge internally; only a receiver
    # chain ending in a literal ``disk`` handle is a bypass.
    source = (
        "def f(ordered, storage):\n"
        "    a = ordered.read_block(0)\n"
        "    b = storage.read(1)\n"
        "    return a, b\n"
    )
    assert iolint.lint_source("src/repro/toy.py", source) == []


def test_iolint_pragma_with_reason_suppresses() -> None:
    source = (
        "def f(disk):\n"
        "    # repro: uncharged-io(checker inspection, out-of-band)\n"
        "    return disk.peek(1)\n"
    )
    assert iolint.lint_source("src/repro/toy.py", source) == []


def test_iolint_pragma_requires_nonempty_reason() -> None:
    source = (
        "def f(disk):\n"
        "    return disk.peek(1)  # repro: uncharged-io()\n"
    )
    findings = iolint.lint_source("src/repro/toy.py", source)
    assert len(findings) == 1
    assert "non-empty reason" in findings[0].message


def test_iolint_reports_stale_pragma() -> None:
    source = (
        "def f(x):\n"
        "    # repro: uncharged-io(nothing here needs it)\n"
        "    return x + 1\n"
    )
    findings = iolint.lint_source("src/repro/toy.py", source)
    assert [f.rule for f in findings] == ["unused-pragma"]


def test_iolint_charging_layer_is_exempt() -> None:
    source = "def f(disk):\n    return disk.peek(1)\n"
    assert iolint.lint_source("src/repro/em/disk.py", source) == []
    assert iolint.lint_source("src/repro/toy.py", source) != []


def test_pragma_scanner_ignores_string_literals() -> None:
    source = 's = "# repro: uncharged-io(not a pragma)"\n'
    assert scan_pragmas(source).by_line == {}


def test_stacked_pragmas_all_apply_to_the_statement_below() -> None:
    source = (
        "def f():\n"
        "    # repro: calls(A.x)\n"
        "    # repro: calls(B.y)\n"
        "    g()\n"
    )
    pragmas = scan_pragmas(source)
    found = pragmas.find_all("calls", 4)
    assert sorted(p.argument for p in found) == ["A.x", "B.y"]


# ----------------------------------------------------------------------
# Lock-discipline pass
# ----------------------------------------------------------------------
TOY_PREAMBLE = (
    "import threading\n"
    "from repro.analysis.locks import tracked_lock\n"
)


def test_locklint_flags_raw_lock_in_tier() -> None:
    source = TOY_PREAMBLE + (
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert [f.rule for f in analysis.findings] == ["untracked-lock"]


def test_locklint_accepts_annotated_raw_lock() -> None:
    source = TOY_PREAMBLE + (
        "class S:\n"
        "    def __init__(self):\n"
        "        # repro: untracked-lock(bench-only helper, not served)\n"
        "        self._lock = threading.Lock()\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert analysis.findings == []


def test_locklint_builds_edges_from_lexical_nesting() -> None:
    source = TOY_PREAMBLE + (
        "class S:\n"
        "    def __init__(self):\n"
        "        self.a = tracked_lock('toy.a')\n"
        "        self.b = tracked_lock('toy.b')\n"
        "    def outer(self):\n"
        "        with self.a:\n"
        "            with self.b:\n"
        "                pass\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert ("toy.a", "toy.b") in analysis.edges
    assert analysis.findings == []


def test_locklint_detects_cycle() -> None:
    source = TOY_PREAMBLE + (
        "class S:\n"
        "    def __init__(self):\n"
        "        self.a = tracked_lock('toy.a')\n"
        "        self.b = tracked_lock('toy.b')\n"
        "    def one(self):\n"
        "        with self.a:\n"
        "            with self.b:\n"
        "                pass\n"
        "    def two(self):\n"
        "        with self.b:\n"
        "            with self.a:\n"
        "                pass\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert any(f.rule == "lock-cycle" for f in analysis.findings)


def test_locklint_follows_calls_directives_across_modules() -> None:
    caller = TOY_PREAMBLE + (
        "class Front:\n"
        "    def __init__(self, engine):\n"
        "        self.engine = engine\n"
        "        self.lock = tracked_lock('toy.front')\n"
        "    def serve(self):\n"
        "        with self.lock:\n"
        "            # repro: calls(Engine.run)\n"
        "            self.engine.run()\n"
    )
    callee = TOY_PREAMBLE + (
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self.inner = tracked_lock('toy.inner')\n"
        "    def run(self):\n"
        "        with self.inner:\n"
        "            pass\n"
    )
    analysis = locklint.analyze_sources(
        [
            ("src/repro/serve/front.py", caller),
            ("src/repro/engine/eng.py", callee),
        ]
    )
    assert ("toy.front", "toy.inner") in analysis.edges
    assert analysis.findings == []


def test_locklint_rejects_unknown_calls_target() -> None:
    source = TOY_PREAMBLE + (
        "def f():\n"
        "    # repro: calls(Nowhere.missing)\n"
        "    g()\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert [f.rule for f in analysis.findings] == ["unknown-directive-target"]


def test_locklint_guard_discipline() -> None:
    source = TOY_PREAMBLE + (
        "class Srv:\n"
        "    def __init__(self, engine):\n"
        "        self.engine = engine\n"
        "        self.lock = tracked_lock('toy.engine')  # repro: guards(engine)\n"
        "    def good(self):\n"
        "        with self.lock:\n"
        "            self.engine.run()\n"
        "    def bad(self):\n"
        "        self.engine.run()\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert [f.rule for f in analysis.findings] == ["unguarded-call"]
    assert analysis.findings[0].line == 11


def test_locklint_guard_allows_annotated_exception() -> None:
    source = TOY_PREAMBLE + (
        "class Srv:\n"
        "    def __init__(self, engine):\n"
        "        self.engine = engine\n"
        "        self.lock = tracked_lock('toy.engine')  # repro: guards(engine)\n"
        "    def startup_probe(self):\n"
        "        # repro: unguarded-call(runs before the lanes start)\n"
        "        self.engine.run()\n"
    )
    analysis = locklint.analyze_sources([("src/repro/serve/toy.py", source)])
    assert analysis.findings == []


# ----------------------------------------------------------------------
# The repository itself must be clean
# ----------------------------------------------------------------------
def test_repository_passes_reprolint() -> None:
    findings = cli.run([SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_static_lock_graph_contains_the_serving_chain() -> None:
    # The dispatcher holds the engine lock across a batch, whose
    # worklists are submitted to the shard workers' condition -- the one
    # cross-object edge of the serving tier.  If this edge vanishes, a
    # missing calls() annotation broke the chain and the runtime
    # cross-check would start rejecting healthy acquisitions.
    edges = locklint.static_lock_graph(
        locklint.default_scope(SRC / "repro")
    )
    assert ("serve.server.engine", "serve.workers.available") in edges
