"""A disk-resident B-tree with optional subtree aggregation.

Every node lives in its own simulated block, so the I/O cost of a search is
the height ``O(log_B n)``, an insertion or deletion costs ``O(log_B n)``
reads plus the writes along the path, and a range scan over ``k`` results
costs ``O(log_B n + k/B)`` thanks to leaf sibling pointers.

The optional ``aggregate`` hook maintains, for every child of an internal
node, a summary of that child's subtree (``max`` for the range-max tree of
Theorem 1).  :meth:`BTree.range_aggregate` then answers "max over a key
range" style queries along two root-to-leaf paths.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.btree.node import InternalNode, LeafNode
from repro.em.storage import StorageManager


class BTree:
    """An external-memory B-tree mapping totally ordered keys to values."""

    def __init__(
        self,
        storage: StorageManager,
        leaf_capacity: Optional[int] = None,
        fanout: Optional[int] = None,
        aggregate: Optional[Callable[[List[Any]], Any]] = None,
    ) -> None:
        self.storage = storage
        self.leaf_capacity = leaf_capacity or storage.block_size
        self.fanout = fanout or storage.block_size
        if self.leaf_capacity < 2 or self.fanout < 4:
            raise ValueError("leaf_capacity must be >= 2 and fanout >= 4")
        self.aggregate = aggregate
        self._count = 0
        self.root_id = self.storage.create(LeafNode())

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def height(self) -> int:
        """Number of levels (1 for a single leaf)."""
        levels = 1
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            levels += 1
            node = self.storage.read(node.children[0])
        return levels

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, key: Any) -> Optional[Any]:
        """The value stored under ``key`` or ``None``."""
        leaf = self._find_leaf(key)
        index = _lower_bound(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def __contains__(self, key: Any) -> bool:
        return self.search(key) is not None

    def predecessor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """The largest ``(key', value)`` with ``key' <= key``."""
        return self._boundary_entry(key, want_predecessor=True)

    def successor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """The smallest ``(key', value)`` with ``key' >= key``."""
        return self._boundary_entry(key, want_predecessor=False)

    def min_entry(self) -> Optional[Tuple[Any, Any]]:
        """The smallest key together with its value."""
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            node = self.storage.read(node.children[0])
        if node.keys:
            return node.keys[0], node.values[0]
        return None

    def max_entry(self) -> Optional[Tuple[Any, Any]]:
        """The largest key together with its value."""
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            node = self.storage.read(node.children[-1])
        if node.keys:
            return node.keys[-1], node.values[-1]
        return None

    def range_scan(self, key_lo: Any, key_hi: Any) -> Iterator[Tuple[Any, Any]]:
        """All ``(key, value)`` pairs with ``key_lo <= key <= key_hi``.

        Walks leaf sibling pointers, so the cost is ``O(log_B n + k/B)``.
        """
        leaf = self._find_leaf(key_lo)
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if key > key_hi:
                    return
                if key >= key_lo:
                    yield key, value
            if leaf.next_leaf is None:
                return
            leaf = self.storage.read(leaf.next_leaf)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in key order."""
        return self.range_scan(float("-inf"), float("inf"))

    def range_aggregate(self, key_lo: Any, key_hi: Any) -> Optional[Any]:
        """The aggregate of all values with keys in ``[key_lo, key_hi]``.

        Requires the tree to have been built with an ``aggregate`` hook.
        Visits the two boundary root-to-leaf paths and combines whole-subtree
        aggregates in between: ``O(log_B n)`` I/Os.
        """
        if self.aggregate is None:
            raise ValueError("tree was built without an aggregate function")
        collected: List[Any] = []
        self._collect_range_aggregate(self.root_id, key_lo, key_hi, collected)
        if not collected:
            return None
        return self.aggregate(collected)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert (or overwrite) ``key`` with ``value``."""
        result = self._insert(self.root_id, key, value)
        if result is not None:
            separator, new_child_id = result
            old_root_id = self.root_id
            root = InternalNode(
                children=[old_root_id, new_child_id],
                separators=[separator, self._subtree_max_key(new_child_id)],
                aggregates=[
                    self._subtree_aggregate(old_root_id),
                    self._subtree_aggregate(new_child_id),
                ],
            )
            self.root_id = self.storage.create(root)

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns whether it was present."""
        removed = self._delete(self.root_id, key)
        if removed:
            root = self.storage.read(self.root_id)
            if not root.is_leaf and len(root.children) == 1:
                only_child = root.children[0]
                self.storage.free(self.root_id)
                self.root_id = only_child
        return removed

    # ------------------------------------------------------------------
    # Internal helpers: search
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> LeafNode:
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            node = self.storage.read(node.children[node.child_index_for(key)])
        return node

    def _boundary_entry(
        self, key: Any, want_predecessor: bool
    ) -> Optional[Tuple[Any, Any]]:
        leaf = self._find_leaf(key)
        if want_predecessor:
            best: Optional[Tuple[Any, Any]] = None
            for k, v in zip(leaf.keys, leaf.values):
                if k <= key:
                    best = (k, v)
            if best is not None:
                return best
            # The predecessor may live in an earlier leaf; walk down again
            # along the max path of the left part of the tree.
            return self._predecessor_slow(key)
        for k, v in zip(leaf.keys, leaf.values):
            if k >= key:
                return (k, v)
        if leaf.next_leaf is not None:
            next_leaf = self.storage.read(leaf.next_leaf)
            if next_leaf.keys:
                return next_leaf.keys[0], next_leaf.values[0]
        return None

    def _predecessor_slow(self, key: Any) -> Optional[Tuple[Any, Any]]:
        best: Optional[Tuple[Any, Any]] = None
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            chosen = 0
            for index, separator in enumerate(node.separators):
                if separator <= key or index == 0:
                    chosen = index
                if separator > key:
                    break
            # Prefer the rightmost child whose subtree can contain keys <= key.
            candidate = node.child_index_for(key)
            node = self.storage.read(node.children[max(chosen, min(candidate, len(node.children) - 1))])
        for k, v in zip(node.keys, node.values):
            if k <= key:
                best = (k, v)
        return best

    def _collect_range_aggregate(
        self, node_id: int, key_lo: Any, key_hi: Any, out: List[Any]
    ) -> None:
        node = self.storage.read(node_id)
        if node.is_leaf:
            out.extend(
                value
                for key, value in zip(node.keys, node.values)
                if key_lo <= key <= key_hi
            )
            return
        for index, child_id in enumerate(node.children):
            child_min = node.separators[index - 1] if index > 0 else None
            child_max = node.separators[index]
            # Prune children entirely outside the range.
            if child_max < key_lo:
                continue
            if child_min is not None and child_min >= key_hi:
                # Child may still contain keys in range if its min <= hi;
                # separators store subtree maxima, so child_min here is the
                # previous child's max -- keys of this child exceed it.
                if child_min > key_hi:
                    break
            prev_max = node.separators[index - 1] if index > 0 else float("-inf")
            if prev_max >= key_lo and child_max <= key_hi:
                # Fully contained subtree: use the stored aggregate.
                out.append(node.aggregates[index])
            else:
                self._collect_range_aggregate(child_id, key_lo, key_hi, out)
            if child_max >= key_hi:
                break

    # ------------------------------------------------------------------
    # Internal helpers: insertion
    # ------------------------------------------------------------------
    def _insert(
        self, node_id: int, key: Any, value: Any
    ) -> Optional[Tuple[Any, int]]:
        node = self.storage.read(node_id)
        if node.is_leaf:
            return self._insert_into_leaf(node_id, node, key, value)
        index = node.child_index_for(key)
        child_id = node.children[index]
        split = self._insert(child_id, key, value)
        node.separators[index] = self._subtree_max_key(child_id)
        node.aggregates[index] = self._subtree_aggregate(child_id)
        if split is not None:
            separator, new_child_id = split
            node.separators[index] = separator
            node.aggregates[index] = self._subtree_aggregate(child_id)
            node.children.insert(index + 1, new_child_id)
            node.separators.insert(index + 1, self._subtree_max_key(new_child_id))
            node.aggregates.insert(index + 1, self._subtree_aggregate(new_child_id))
        self.storage.write(node_id, node)
        if len(node.children) > self.fanout:
            return self._split_internal(node_id, node)
        return None

    def _insert_into_leaf(
        self, node_id: int, leaf: LeafNode, key: Any, value: Any
    ) -> Optional[Tuple[Any, int]]:
        index = _lower_bound(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value
        else:
            leaf.keys.insert(index, key)
            leaf.values.insert(index, value)
            self._count += 1
        self.storage.write(node_id, leaf)
        if len(leaf.keys) > self.leaf_capacity:
            return self._split_leaf(node_id, leaf)
        return None

    def _split_leaf(self, node_id: int, leaf: LeafNode) -> Tuple[Any, int]:
        mid = len(leaf.keys) // 2
        right = LeafNode(
            keys=leaf.keys[mid:], values=leaf.values[mid:], next_leaf=leaf.next_leaf
        )
        right_id = self.storage.create(right)
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next_leaf = right_id
        self.storage.write(node_id, leaf)
        return leaf.keys[-1], right_id

    def _split_internal(self, node_id: int, node: InternalNode) -> Tuple[Any, int]:
        mid = len(node.children) // 2
        right = InternalNode(
            children=node.children[mid:],
            separators=node.separators[mid:],
            aggregates=node.aggregates[mid:],
        )
        right_id = self.storage.create(right)
        node.children = node.children[:mid]
        node.separators = node.separators[:mid]
        node.aggregates = node.aggregates[:mid]
        self.storage.write(node_id, node)
        return node.separators[-1], right_id

    # ------------------------------------------------------------------
    # Internal helpers: deletion
    # ------------------------------------------------------------------
    def _delete(self, node_id: int, key: Any) -> bool:
        node = self.storage.read(node_id)
        if node.is_leaf:
            index = _lower_bound(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            del node.values[index]
            self._count -= 1
            self.storage.write(node_id, node)
            return True
        index = node.child_index_for(key)
        child_id = node.children[index]
        removed = self._delete(child_id, key)
        if not removed:
            return False
        child = self.storage.read(child_id)
        if self._underflowing(child):
            self._rebalance_child(node_id, node, index)
            node = self.storage.read(node_id)
        else:
            node.separators[index] = self._subtree_max_key(child_id)
            node.aggregates[index] = self._subtree_aggregate(child_id)
            self.storage.write(node_id, node)
        return True

    def _underflowing(self, node: Any) -> bool:
        if node.is_leaf:
            return len(node.keys) < max(1, self.leaf_capacity // 4)
        return len(node.children) < max(2, self.fanout // 4)

    def _rebalance_child(
        self, parent_id: int, parent: InternalNode, index: int
    ) -> None:
        """Merge an underflowing child with a sibling (splitting again if fat)."""
        sibling_index = index - 1 if index > 0 else index + 1
        if sibling_index < 0 or sibling_index >= len(parent.children):
            # Single child: nothing to merge with; just refresh metadata.
            child_id = parent.children[index]
            parent.separators[index] = self._subtree_max_key(child_id)
            parent.aggregates[index] = self._subtree_aggregate(child_id)
            self.storage.write(parent_id, parent)
            return
        left_index, right_index = sorted((index, sibling_index))
        left_id = parent.children[left_index]
        right_id = parent.children[right_index]
        left = self.storage.read(left_id)
        right = self.storage.read(right_id)
        if left.is_leaf:
            merged_keys = left.keys + right.keys
            merged_values = left.values + right.values
            if len(merged_keys) <= self.leaf_capacity:
                left.keys, left.values = merged_keys, merged_values
                left.next_leaf = right.next_leaf
                self.storage.write(left_id, left)
                self._drop_child(parent, right_index)
                self.storage.free(right_id)
            else:
                mid = len(merged_keys) // 2
                left.keys, left.values = merged_keys[:mid], merged_values[:mid]
                right.keys, right.values = merged_keys[mid:], merged_values[mid:]
                self.storage.write(left_id, left)
                self.storage.write(right_id, right)
        else:
            merged_children = left.children + right.children
            merged_separators = left.separators + right.separators
            merged_aggregates = left.aggregates + right.aggregates
            if len(merged_children) <= self.fanout:
                left.children = merged_children
                left.separators = merged_separators
                left.aggregates = merged_aggregates
                self.storage.write(left_id, left)
                self._drop_child(parent, right_index)
                self.storage.free(right_id)
            else:
                mid = len(merged_children) // 2
                left.children = merged_children[:mid]
                left.separators = merged_separators[:mid]
                left.aggregates = merged_aggregates[:mid]
                right.children = merged_children[mid:]
                right.separators = merged_separators[mid:]
                right.aggregates = merged_aggregates[mid:]
                self.storage.write(left_id, left)
                self.storage.write(right_id, right)
        self._refresh_child_metadata(parent, left_index)
        if right_index < len(parent.children):
            self._refresh_child_metadata(parent, right_index)
        self.storage.write(parent_id, parent)

    def _drop_child(self, parent: InternalNode, index: int) -> None:
        del parent.children[index]
        del parent.separators[index]
        del parent.aggregates[index]

    def _refresh_child_metadata(self, parent: InternalNode, index: int) -> None:
        child_id = parent.children[index]
        parent.separators[index] = self._subtree_max_key(child_id)
        parent.aggregates[index] = self._subtree_aggregate(child_id)

    # ------------------------------------------------------------------
    # Subtree metadata
    # ------------------------------------------------------------------
    def _subtree_max_key(self, node_id: int) -> Any:
        node = self.storage.read(node_id)
        if node.is_leaf:
            return node.keys[-1] if node.keys else float("-inf")
        return node.separators[-1] if node.separators else float("-inf")

    def _subtree_aggregate(self, node_id: int) -> Any:
        if self.aggregate is None:
            return None
        node = self.storage.read(node_id)
        if node.is_leaf:
            return self.aggregate(node.values) if node.values else None
        present = [agg for agg in node.aggregates if agg is not None]
        return self.aggregate(present) if present else None


def _lower_bound(keys: List[Any], key: Any) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
