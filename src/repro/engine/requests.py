"""Typed request objects: the engine's single write/read entry format.

Every call into :class:`repro.engine.SkylineEngine` is a request object.
A :class:`QueryRequest` wraps the query rectangle (any shape of Figure 2;
the variant is auto-classified via :func:`repro.core.queries.classify`)
plus serving options -- ``limit``/``cursor`` pagination and a consistency
hint -- and an :class:`UpdateRequest` names an insert or delete victim.
Requests are frozen dataclasses, so they can be logged, hashed, retried
and replayed verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.point import Point
from repro.core.queries import RangeQuery, classify

#: ``cached`` lets the backend serve from its (epoch-keyed, always
#: consistent) result cache; ``fresh`` forces recomputation from the
#: structures, e.g. to measure the paper's bounds without cache luck.
CONSISTENCY_LEVELS = ("cached", "fresh")

OP_INSERT = "insert"
OP_DELETE = "delete"


@dataclass(frozen=True)
class QueryRequest:
    """One range-skyline read.

    Attributes
    ----------
    rect:
        The (possibly unbounded) query rectangle.  Its Figure-2 variant is
        derived, never supplied: see :attr:`variant`.
    limit:
        Maximum number of points to return (``None`` = all).  Results are
        in increasing x-order, so a truncated page is a prefix and the
        response carries a cursor for the rest.
    cursor:
        Resume token from a previous page: only points with ``x`` strictly
        greater than the cursor are returned.  Pass the previous
        :attr:`repro.engine.QueryResult.next_cursor` verbatim.
    consistency:
        ``"cached"`` (default) or ``"fresh"`` -- see
        :data:`CONSISTENCY_LEVELS`.
    """

    rect: RangeQuery = field(default_factory=RangeQuery)
    limit: Optional[int] = None
    cursor: Optional[float] = None
    consistency: str = "cached"

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_LEVELS}, "
                f"got {self.consistency!r}"
            )

    @property
    def variant(self) -> str:
        """The Figure-2 label of the rectangle (``classify(rect)``)."""
        return classify(self.rect)


@dataclass(frozen=True)
class UpdateRequest:
    """One write: insert a point, or delete a live point by coordinates.

    Deletes follow the one-victim semantics of the whole stack: among
    coordinate twins a point whose ``ident`` matches is preferred.
    """

    op: str
    point: Point

    def __post_init__(self) -> None:
        if self.op not in (OP_INSERT, OP_DELETE):
            raise ValueError(
                f"op must be {OP_INSERT!r} or {OP_DELETE!r}, got {self.op!r}"
            )

    @classmethod
    def insert(cls, point: Point) -> "UpdateRequest":
        return cls(OP_INSERT, point)

    @classmethod
    def delete(cls, point: Point) -> "UpdateRequest":
        return cls(OP_DELETE, point)
