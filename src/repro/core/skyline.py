"""In-memory reference skyline algorithms.

These are the "ground truth" against which every external-memory structure
is validated, plus the building blocks the baselines reuse.  All of them
return maximal points sorted by increasing x (hence decreasing y).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.point import Point
from repro.core.queries import RangeQuery


def skyline(points: Iterable[Point]) -> List[Point]:
    """The maxima (skyline) of an arbitrary point collection.

    Sort-based sweep: sort by decreasing x (ties by decreasing y) and keep a
    running maximum of y.  ``O(n log n)`` time, the standard internal-memory
    algorithm.
    """
    ordered = sorted(points, key=lambda p: (-p.x, -p.y))
    result: List[Point] = []
    best_y = float("-inf")
    for point in ordered:
        if point.y > best_y:
            result.append(point)
            best_y = point.y
    result.reverse()
    return result


def skyline_of_sorted(points_sorted_by_x: Sequence[Point]) -> List[Point]:
    """Skyline of points already sorted by increasing x.

    A single right-to-left pass; used by constructions that already hold an
    x-sorted list (e.g. the SABE pipeline) to avoid re-sorting.
    """
    result: List[Point] = []
    best_y = float("-inf")
    for point in reversed(points_sorted_by_x):
        if point.y > best_y:
            result.append(point)
            best_y = point.y
    result.reverse()
    return result


def skyline_divide_and_conquer(points: Sequence[Point]) -> List[Point]:
    """Divide-and-conquer skyline (kept as an independent cross-check).

    Splits by x-median, recurses, and removes from the left half every point
    dominated by the highest point of the right half -- mirroring the
    Overmars--van Leeuwen merge step that the dynamic structure (Section 4)
    re-implements with attrition.
    """
    pts = sorted(points, key=lambda p: (p.x, p.y))
    if not pts:
        return []
    return _dac(pts)


def _dac(pts: List[Point]) -> List[Point]:
    if len(pts) <= 2:
        return skyline_of_sorted(pts)
    mid = len(pts) // 2
    left = _dac(pts[:mid])
    right = _dac(pts[mid:])
    if not right:
        return left
    top_right_y = right[0].y
    surviving_left = [p for p in left if p.y > top_right_y]
    return surviving_left + right


def range_skyline(points: Iterable[Point], query: RangeQuery) -> List[Point]:
    """Reference answer to a range-skyline query: skyline of ``P ∩ Q``."""
    return skyline(query.filter(points))


def highest_point(points: Iterable[Point]) -> Optional[Point]:
    """The point with the maximum y-coordinate (None for an empty input)."""
    best: Optional[Point] = None
    for point in points:
        if best is None or point.y > best.y:
            best = point
    return best


def is_skyline(points: Sequence[Point], candidate: Sequence[Point]) -> bool:
    """Whether ``candidate`` is exactly the skyline of ``points``."""
    expected = {(p.x, p.y) for p in skyline(points)}
    got = {(p.x, p.y) for p in candidate}
    return expected == got


def count_dominated_pairs(points: Sequence[Point]) -> int:
    """Number of ordered pairs (p, q) with p dominating q (test utility)."""
    count = 0
    for p in points:
        for q in points:
            if p is not q and p.dominates(q):
                count += 1
    return count
