"""Price-vs-quality product search -- the motivating scenario of Section 1.1.

A catalogue stores products with two naturally contradicting attributes:
price (lower is better) and quality rating (higher is better).  A shopper
asks: "among the products whose price and rating fall in my acceptable
ranges, which ones are not beaten on both criteria?"  That is exactly a
range skyline query after mapping price to the x-axis as ``-price``.

The example serves the catalogue through the unified
:class:`repro.engine.SkylineEngine` -- each budget is one
:class:`~repro.engine.QueryRequest`, each answer carries its execution
report -- and compares the charged I/O against the naive full-scan
baseline on the same queries.
"""

from __future__ import annotations

import random

from repro import FourSidedQuery, Point
from repro.baselines import NaiveScanSkyline
from repro.em import EMConfig, StorageManager
from repro.engine import QueryRequest, SkylineEngine


def build_catalogue(n: int, seed: int = 7) -> list:
    """Synthetic products: price in [10, 2000], rating in [0, 100]."""
    rng = random.Random(seed)
    products = []
    for ident in range(n):
        price = rng.uniform(10, 2000) + ident * 1e-4
        # Higher prices loosely correlate with higher ratings, with noise.
        rating = min(100.0, max(0.0, price / 25 + rng.gauss(0, 18))) + ident * 1e-6
        # x = -price so that "dominates" means cheaper AND better rated.
        products.append(Point(-price, rating, ident=ident))
    return products


def describe(point: Point) -> str:
    return f"product #{point.ident:<5} price={-point.x:8.2f}  rating={point.y:6.2f}"


def main() -> None:
    catalogue = build_catalogue(8_000)
    engine = SkylineEngine.local(
        catalogue, em_config=EMConfig(block_size=64, memory_blocks=32)
    )

    budgets = [(100, 500, 40, 100), (300, 1200, 60, 100), (50, 250, 0, 80)]
    naive_storage = StorageManager(EMConfig(block_size=64, memory_blocks=32))
    naive = NaiveScanSkyline(naive_storage, catalogue)

    for price_lo, price_hi, rating_lo, rating_hi in budgets:
        # Price range [lo, hi] maps to x in [-hi, -lo].
        request = QueryRequest(
            FourSidedQuery(-price_hi, -price_lo, rating_lo, rating_hi)
        )
        result = engine.query(request)

        before = naive_storage.snapshot()
        naive.query(request.rect)
        naive_io = (naive_storage.snapshot() - before).total

        report = result.report
        print(
            f"price {price_lo:>4}-{price_hi:<4}  rating {rating_lo:>3}-{rating_hi:<3}"
            f"  -> {result.total_results:>3} undominated offers"
            f"   [engine ({report.structure}): {report.blocks} I/Os, "
            f"bound predicted {report.predicted_io:.1f}, "
            f"full scan: {naive_io} I/Os]"
        )
        for point in sorted(result.points, key=lambda p: -p.x)[:3]:
            print(f"    {describe(point)}")
        print()

    assert engine.attributed_io() == engine.io_total() - engine.build_io


if __name__ == "__main__":
    main()
