"""The visible level layout of the leveled update path.

The :class:`LevelManager` owns everything between the level-0 memtable
(the service's :class:`~repro.service.delta.DeltaBuffer`) and the
size-rebalanced base shards:

* **frozen memtables** -- sealed level-0 batches awaiting their flush
  merge; in memory, scan-free, visible to every query;
* **levels 1..k** -- immutable :class:`~repro.service.lsm.Component`
  structures of geometrically increasing capacity
  (``delta_threshold * level_growth**j`` records at level ``j``), each on
  its own simulated machine with its own ledger;
* the :class:`~repro.service.lsm.CompactionScheduler` that merges a
  level into the next in bounded incremental steps.

The manager never touches the base shards: a full
:meth:`repro.service.SkylineService.compact` folds every component into a
rebuilt base and calls :meth:`LevelManager.reset`.  Visibility is the
invariant that keeps intermediate merge states correct: a component stays
queryable until the merge that rewrites it is fully paid, at which point
the swap is atomic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.service.delta import DeltaBuffer
from repro.service.lsm.component import Component
from repro.service.lsm.scheduler import CompactionScheduler, MergeJob


class LevelManager:
    """Frozen memtables, levels 1..k, and their merge scheduler."""

    def __init__(
        self,
        *,
        em_config: EMConfig,
        epsilon: float,
        block_size: int,
        memtable_capacity: int,
        level_growth: int,
        merge_step_blocks: int,
        delta: DeltaBuffer,
        maintenance: IOStats,
        retired: IOStats,
        on_layout_change: Callable[[], None],
    ) -> None:
        self.em_config = em_config
        self.epsilon = epsilon
        self.block_size = block_size
        self.memtable_capacity = memtable_capacity
        self.level_growth = level_growth
        self.merge_step_blocks = merge_step_blocks
        self.delta = delta
        self.maintenance = maintenance
        self.retired = retired
        self._on_layout_change = on_layout_change
        self.frozen: List[Component] = []
        self.levels: Dict[int, Component] = {}
        self.scheduler = CompactionScheduler(self)
        self._next_comp_id = 1

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def next_component_id(self) -> int:
        comp_id = self._next_comp_id
        self._next_comp_id += 1
        return comp_id

    def capacity(self, level: int) -> int:
        """Record capacity of ``level`` (level 0 is the memtable)."""
        return self.memtable_capacity * self.level_growth**level

    def components(self) -> List[Component]:
        """Every visible immutable component, frozen first, then levels
        in increasing depth (query fan-out order)."""
        return self.frozen + [
            self.levels[j] for j in sorted(self.levels)
        ]

    def find_frozen(self, frozen_id: Optional[int]) -> Optional[Component]:
        for comp in self.frozen:
            if comp.comp_id == frozen_id:
                return comp
        return None

    def stats_members(self) -> List[IOStats]:
        """The visible level ledgers (members of the service aggregate)."""
        return [
            comp.stats
            for comp in self.components()
            if comp.stats is not None
        ]

    def remove_component(self, comp: Component) -> None:
        """Drop a merge input from visibility, retiring its ledger."""
        if comp in self.frozen:
            self.frozen.remove(comp)
        for j, level_comp in list(self.levels.items()):
            if level_comp is comp:
                del self.levels[j]
        if comp.stats is not None:
            self.retired.absorb(comp.stats)
        self._on_layout_change()

    def install_level(self, level: int, comp: Component) -> None:
        """Make a paid-off merge output visible at ``level``."""
        assert level not in self.levels
        self.levels[level] = comp
        self._on_layout_change()

    # ------------------------------------------------------------------
    # Update-path entry points
    # ------------------------------------------------------------------
    def seal(self, points: List[Point]) -> Component:
        """Freeze a full memtable and schedule its flush into level 1."""
        comp = Component(self.next_component_id(), points, build_index=False)
        self.frozen.append(comp)
        self.scheduler.schedule(MergeJob("flush", frozen_id=comp.comp_id))
        self._on_layout_change()
        return comp

    def tick(self) -> int:
        """One update's worth of piggybacked merge work (bounded)."""
        return self.scheduler.pay(self.merge_step_blocks)

    def drain(self) -> int:
        """Pay all outstanding merge debt; returns transfers charged."""
        return self.scheduler.drain()

    def reset(self) -> None:
        """Forget every component (a full compaction folded them into the
        base); visible ledgers are retired so no charge is lost."""
        self.scheduler.clear()
        for comp in self.components():
            if comp.stats is not None:
                self.retired.absorb(comp.stats)
        self.frozen = []
        self.levels = {}
        self._on_layout_change()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_points(self) -> List[Point]:
        """Points resident in visible components, minus tombstoned ones."""
        return [
            p
            for comp in self.components()
            for p in comp.points
            if not self.delta.is_deleted(p)
        ]

    def resident(self) -> int:
        return sum(len(comp) for comp in self.components())

    def describe_levels(self) -> List[dict]:
        """Per-level fill: {level, records, tombstones, capacity,
        merge_debt}, the block :meth:`SkylineService.describe` surfaces.

        Level 0 is the memtable (records = pending inserts; its
        tombstone count is the whole table, which conceptually lives at
        level 0 until merges consume it).  ``merge_debt`` sits on the
        level the active merge is building towards.
        """
        active = self.scheduler.active
        rows = [
            {
                "level": 0,
                "records": len(self.delta.inserts),
                "tombstones": len(self.delta.tombstones),
                "capacity": self.capacity(0),
                "merge_debt": 0,
                "frozen": [len(c) for c in self.frozen],
            }
        ]
        for j in sorted(set(self.levels) | ({active.out_level} if active else set())):
            comp = self.levels.get(j)
            rows.append(
                {
                    "level": j,
                    "records": 0 if comp is None else len(comp),
                    "tombstones": 0
                    if comp is None
                    else len(self.delta.owned_tombstones(comp.owner)),
                    "capacity": self.capacity(j),
                    "merge_debt": active.debt
                    if active is not None and active.out_level == j
                    else 0,
                }
            )
        return rows
