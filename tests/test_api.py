"""Tests for the top-level RangeSkylineIndex facade."""

import random

import pytest

from repro import (
    AntiDominanceQuery,
    BottomOpenQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    Point,
    RangeSkylineIndex,
    RightOpenQuery,
    TopOpenQuery,
    range_skyline,
)
from repro.em import EMConfig, StorageManager


def make_storage():
    return StorageManager(EMConfig(block_size=16, memory_blocks=32))


def random_points(n, universe, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(universe), n)
    ys = rng.sample(range(universe), n)
    return [Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))]


def all_variant_queries(universe, count, seed):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        a, b = sorted(rng.sample(range(universe), 2))
        c, d = sorted(rng.sample(range(universe), 2))
        queries.extend(
            [
                TopOpenQuery(a, b, c),
                RightOpenQuery(a, c, d),
                LeftOpenQuery(b, c, d),
                BottomOpenQuery(a, b, d),
                FourSidedQuery(a, b, c, d),
                DominanceQuery(a, c),
                AntiDominanceQuery(b, d),
                ContourQuery(b),
            ]
        )
    return queries


def test_static_index_answers_every_variant():
    points = random_points(180, 2000, 1)
    index = RangeSkylineIndex(make_storage(), points)
    for query in all_variant_queries(2000, 15, 2):
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        assert sorted((p.x, p.y) for p in index.query(query)) == expected
    assert len(index) == 180
    assert index.io_total() > 0


def test_dynamic_index_supports_updates():
    points = random_points(160, 2000, 3)
    index = RangeSkylineIndex(make_storage(), points[:80], dynamic=True)
    live = list(points[:80])
    for point in points[80:120]:
        index.insert(point)
        live.append(point)
    for victim in list(live[:15]):
        assert index.delete(victim)
        live.remove(victim)
    assert not index.delete(Point(-5, -5))
    for query in all_variant_queries(2000, 10, 4):
        expected = sorted((p.x, p.y) for p in range_skyline(live, query))
        assert sorted((p.x, p.y) for p in index.query(query)) == expected


def test_static_index_rejects_updates():
    index = RangeSkylineIndex(make_storage(), [Point(1, 1)])
    with pytest.raises(TypeError):
        index.insert(Point(2, 2))
    with pytest.raises(TypeError):
        index.delete(Point(1, 1))


def test_delete_preserves_ident_through_swapped_right_open():
    """Regression: deleting one coordinate twin must remove the *same*
    identity from the axis-swapped right-open structure, so a later
    right-open query reports the surviving twin's ident."""
    background = [Point(10, 90, 7), Point(90, 10, 8)]
    for order in ((1, 2), (2, 1)):
        index = RangeSkylineIndex(make_storage(), background, dynamic=True)
        for ident in order:
            index.insert(Point(50, 50, ident))
        assert index.delete(Point(50, 50, 1))
        for query in (
            RightOpenQuery(40, 40, 60),
            TopOpenQuery(40, 60, 40),
            FourSidedQuery(40, 60, 40, 60),
        ):
            twins = [p for p in index.query(query) if (p.x, p.y) == (50, 50)]
            assert [p.ident for p in twins] == [2], (order, type(query).__name__)
        # The surviving twin deletes cleanly afterwards.
        assert index.delete(Point(50, 50, 2))
        assert not any((p.x, p.y) == (50, 50) for p in index.points)


def test_skyline_and_empty_index():
    points = random_points(80, 1000, 5)
    index = RangeSkylineIndex(make_storage(), points)
    from repro import skyline

    assert sorted((p.x, p.y) for p in index.skyline()) == sorted(
        (p.x, p.y) for p in skyline(points)
    )
    empty = RangeSkylineIndex(make_storage(), [])
    assert empty.query(TopOpenQuery(0, 10, 0)) == []
    assert len(empty) == 0
