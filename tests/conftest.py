"""Shared fixtures for the test suite.

With ``REPRO_SANITIZE=1`` in the environment the whole suite runs under
the runtime sanitizers of :mod:`repro.analysis.sanitize`: ledger
ownership, lock-order tracking (cross-checked against the static graph
``tools/reprolint`` builds), and the engine's report-partition identity.
CI runs the suite once in each mode.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.analysis import locklint, sanitize
from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.storage import StorageManager

_SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="session", autouse=True)
def _repro_sanitizers() -> object:
    """Enable the runtime sanitizers for the whole run when asked to."""
    if not sanitize.enabled_from_env():
        yield None
        return
    sanitize.enable(
        static_edges=locklint.static_lock_graph(
            locklint.default_scope(_SRC_REPRO)
        )
    )
    yield None
    sanitize.disable()


@pytest.fixture
def storage() -> StorageManager:
    """A small simulated machine (B=16, 16 frames) for unit tests."""
    return StorageManager(EMConfig(block_size=16, memory_blocks=16))


@pytest.fixture
def big_storage() -> StorageManager:
    """A larger machine used by integration tests."""
    return StorageManager(EMConfig(block_size=32, memory_blocks=32))


def make_points(n: int, universe: int = 10_000, seed: int = 0) -> list:
    """Random points in general position (distinct x and y coordinates)."""
    rng = random.Random(seed)
    xs = rng.sample(range(universe), n)
    ys = rng.sample(range(universe), n)
    return [Point(float(x), float(y), ident=i) for i, (x, y) in enumerate(zip(xs, ys))]


@pytest.fixture
def points_200() -> list:
    return make_points(200, seed=1)


@pytest.fixture
def points_500() -> list:
    return make_points(500, seed=2)
