"""The rank-space top-open structure of Theorem 2 (O(1 + k/B) query I/Os).

The structure externalises the internal-memory structure of Brodal and
Tsakalidis over a chunk tree (see :mod:`repro.structures.chunktree`) and
plugs in the few-point structure of Lemma 5 inside every chunk, so that a
top-open query over the rank-space universe ``[U]^2`` costs a constant
number of block reads plus ``O(k/B)`` for the output.

The query follows the four steps of Section 3.3 and the recursive reporting
procedure of Lemma 6.  Strict y-thresholds (the ``]beta, U]`` rectangles of
the paper) are implemented by nudging the inclusive threshold up with
``math.nextafter``, which is exact for the integer coordinates of rank
space.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.core.skyline import skyline
from repro.em.storage import StorageManager
from repro.structures.chunktree import (
    AnnotatedPoint,
    BlockedPointList,
    ChunkTreeNode,
    annotated_skyline,
    build_chunk_tree,
    left_siblings,
    lowest_common_ancestor,
    path_to_child_of,
    right_siblings,
)
from repro.structures.fewpoint import FewPointStructure


def _strictly_above(threshold: float) -> float:
    """Inclusive lower bound equivalent to the strict bound ``> threshold``."""
    if math.isinf(threshold):
        return threshold
    return math.nextafter(threshold, math.inf)


class RankSpaceTopOpenStructure:
    """Linear-space, O(1 + k/B)-query top-open structure on rank-space points."""

    def __init__(
        self,
        storage: StorageManager,
        points: Iterable[Point],
        universe: Optional[int] = None,
    ) -> None:
        self.storage = storage
        self.points = sorted(points, key=lambda p: p.x)
        self.universe = int(universe or (max((p.x for p in self.points), default=1) + 1))
        self.block_size = storage.block_size
        self.chunk_width = max(
            1, self.block_size * max(1, math.ceil(math.log2(max(2, self.universe))))
        )
        num_chunks = max(1, math.ceil(self.universe / self.chunk_width))
        self.root, self.leaves = build_chunk_tree(num_chunks)
        self.num_chunks = len(self.leaves)
        self._blocked = BlockedPointList(storage)
        self._chunk_points: List[List[Point]] = [[] for _ in range(self.num_chunks)]
        for point in self.points:
            self._chunk_points[self._chunk_index(point.x)].append(point)
        self.chunk_structures: List[FewPointStructure] = [
            FewPointStructure(storage, chunk_points, universe=self.universe)
            for chunk_points in self._chunk_points
        ]
        # LMAX / RMAX blocks keyed by (chunk index, ancestor node id).
        self._lmax: Dict[Tuple[int, int], List[int]] = {}
        self._rmax: Dict[Tuple[int, int], List[int]] = {}
        self._high_points: Dict[int, List[Point]] = {}
        self._build_augmentation()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _chunk_index(self, x: float) -> int:
        index = int(x // self.chunk_width)
        return min(max(index, 0), self.num_chunks - 1)

    def _build_augmentation(self) -> None:
        self._compute_high(self.root)
        self._compute_max(self.root)
        for chunk_index, leaf in enumerate(self.leaves):
            ancestor = leaf.parent
            while ancestor is not None:
                # Siblings are taken for path nodes *strictly below* the child
                # of the ancestor, so that LMAX(z, u) / RMAX(z, u) tile exactly
                # the chunks between z and the boundary of its side of u --
                # the sets the query steps 2 and 3 consume.
                path = path_to_child_of(leaf, ancestor)[:-1]
                lefts = left_siblings(path)
                rights = right_siblings(path)
                self._lmax[(chunk_index, ancestor.node_id)] = self._blocked.write(
                    annotated_skyline(
                        [(v.node_id, self._high_points[v.node_id]) for v in lefts]
                    )
                )
                self._rmax[(chunk_index, ancestor.node_id)] = self._blocked.write(
                    annotated_skyline(
                        [(v.node_id, self._high_points[v.node_id]) for v in rights]
                    )
                )
                ancestor = ancestor.parent

    def _compute_high(self, node: ChunkTreeNode) -> List[Point]:
        """Bottom-up skyline merge; stores high(u) and returns skyline(P(u))."""
        if node.is_leaf:
            chunk_points = (
                self._chunk_points[node.chunk_lo]
                if node.chunk_lo < self.num_chunks
                else []
            )
            node_skyline = skyline(chunk_points)
        else:
            left_sky = self._compute_high(node.left)  # type: ignore[arg-type]
            right_sky = self._compute_high(node.right)  # type: ignore[arg-type]
            if right_sky:
                top_y = right_sky[0].y
                node_skyline = [p for p in left_sky if p.y > top_y] + right_sky
            else:
                node_skyline = list(left_sky)
        high = node_skyline[: self.block_size]
        self._high_points[node.node_id] = high
        node.high_size = len(high)
        node.high_block = self.storage.create(list(high)) if high else None
        node.highend = high[-1] if len(high) == self.block_size else None
        return node_skyline

    def _compute_max(self, node: ChunkTreeNode) -> None:
        if node.is_leaf:
            return
        if node.highend is not None:
            chunk = self.leaves[self._chunk_index(node.highend.x)]
            path = path_to_child_of(chunk, node)
            rights = right_siblings(path)
            node.max_blocks = self._blocked.write(
                annotated_skyline(
                    [(v.node_id, self._high_points[v.node_id]) for v in rights]
                )
            )
        self._compute_max(node.left)  # type: ignore[arg-type]
        self._compute_max(node.right)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of ``P`` inside a top-open rectangle, sorted by x."""
        if not query.is_top_open:
            raise ValueError(
                "RankSpaceTopOpenStructure answers top-open queries only"
            )
        return self.query_top_open(query.x_lo, query.x_hi, query.y_lo)

    def query_top_open(self, x_lo: float, x_hi: float, y_lo: float) -> List[Point]:
        """Answer ``[x_lo, x_hi] x [y_lo, inf[`` following Section 3.3."""
        if not self.points:
            return []
        x_lo_clamped = max(x_lo, 0)
        x_hi_clamped = min(x_hi, self.universe)
        if x_lo_clamped > x_hi_clamped:
            return []
        z1_index = self._chunk_index(x_lo_clamped)
        z2_index = self._chunk_index(x_hi_clamped)
        if z1_index == z2_index:
            return self.chunk_structures[z1_index].query_top_open(x_lo, x_hi, y_lo)
        z1, z2 = self.leaves[z1_index], self.leaves[z2_index]
        lca = lowest_common_ancestor(z1, z2)
        collected: Dict[Tuple[float, float], Point] = {}

        def emit(points: Iterable[Point]) -> None:
            for point in points:
                collected[(point.x, point.y)] = point

        # ``beta_exclusive`` is an *exclusive* lower bound on the y-coordinates
        # still worth reporting: initially just below the query's beta (so that
        # points with y exactly beta qualify), afterwards the highest reported y.
        beta_exclusive = y_lo if math.isinf(y_lo) else math.nextafter(y_lo, -math.inf)

        # Step 1: the rightmost chunk.
        step1 = self.chunk_structures[z2_index].query_top_open(x_lo, x_hi, y_lo)
        emit(step1)
        beta_exclusive = max([beta_exclusive] + [p.y for p in step1])

        # Step 2: left siblings of z2's path (middle subtrees, right part).
        beta_exclusive = self._process_side(
            z2_index, lca, self._lmax, beta_exclusive, emit
        )

        # Step 3: right siblings of z1's path (middle subtrees, left part).
        beta_exclusive = self._process_side(
            z1_index, lca, self._rmax, beta_exclusive, emit
        )

        # Step 4: the leftmost chunk, above everything reported so far.
        emit(
            self.chunk_structures[z1_index].query_top_open(
                x_lo, x_hi, _strictly_above(beta_exclusive)
            )
        )

        result = sorted(collected.values(), key=lambda p: p.x)
        return result

    def _process_side(
        self,
        chunk_index: int,
        lca: ChunkTreeNode,
        side_blocks: Dict[Tuple[int, int], List[int]],
        beta_exclusive: float,
        emit,
    ) -> float:
        """Steps 2/3 of the query: scan LMAX/RMAX and recurse where needed.

        ``beta_exclusive`` is an exclusive lower bound; the returned value is
        the updated exclusive bound (the highest y reported so far).
        """
        blocks = side_blocks.get((chunk_index, lca.node_id), [])
        annotated = self._blocked.read_above(blocks, beta_exclusive)
        emit(point for point, _ in annotated)
        if not annotated:
            return beta_exclusive
        per_node: Dict[int, List[Point]] = {}
        for point, source in annotated:
            per_node.setdefault(source, []).append(point)
        staircase = [point for point, _ in annotated]
        for node_id, points in per_node.items():
            if len(points) < self.block_size:
                continue
            node = self._find_node(lca, node_id)
            if node is None or node.highend is None:
                continue
            beta_i = self._next_staircase_y(
                staircase, node.highend, default=beta_exclusive
            )
            emit(self._report_above(node, beta_i))
        return max(beta_exclusive, max(point.y for point, _ in annotated))

    def _next_staircase_y(
        self, staircase: Sequence[Point], anchor: Point, default: float
    ) -> float:
        """y of the point just right of ``anchor`` in ``staircase`` (or default)."""
        for point in staircase:
            if point.x > anchor.x:
                return point.y
        return default

    def _find_node(
        self, ancestor: ChunkTreeNode, node_id: int
    ) -> Optional[ChunkTreeNode]:
        stack = [ancestor]
        while stack:
            node = stack.pop()
            if node.node_id == node_id:
                return node
            if not node.is_leaf:
                stack.append(node.left)  # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]
        return None

    # ------------------------------------------------------------------
    # Lemma 6: skyline of P(u) restricted to y > beta
    # ------------------------------------------------------------------
    def _report_above(self, node: ChunkTreeNode, beta: float) -> List[Point]:
        if node.is_leaf:
            structure = self.chunk_structures[node.chunk_lo]
            return structure.query_top_open(
                -math.inf, math.inf, _strictly_above(beta)
            )
        high = self._read_high(node)
        qualifying = [p for p in high if p.y > beta]
        if node.highend is None or len(qualifying) < self.block_size:
            return qualifying
        result: List[Point] = list(qualifying)
        annotated = self._blocked.read_above(node.max_blocks, beta)
        result.extend(point for point, _ in annotated)
        staircase = [point for point, _ in annotated]
        per_node: Dict[int, List[Point]] = {}
        for point, source in annotated:
            per_node.setdefault(source, []).append(point)
        for node_id, points in per_node.items():
            if len(points) < self.block_size:
                continue
            child = self._find_node(node, node_id)
            if child is None or child.highend is None:
                continue
            beta_i = self._next_staircase_y(staircase, child.highend, default=beta)
            result.extend(self._report_above(child, beta_i))
        # Points sharing highend(u)'s chunk but to its right.
        p = node.highend
        chunk = self.leaves[self._chunk_index(p.x)]
        beta_0 = staircase[0].y if staircase else beta
        structure = self.chunk_structures[chunk.chunk_lo]
        result.extend(
            structure.query_top_open(
                _strictly_above(p.x), math.inf, _strictly_above(beta_0)
            )
        )
        deduped: Dict[Tuple[float, float], Point] = {
            (point.x, point.y): point for point in result
        }
        return list(deduped.values())

    def _read_high(self, node: ChunkTreeNode) -> List[Point]:
        if node.high_block is None:
            return []
        return list(self.storage.read(node.high_block))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def block_count(self) -> int:
        """Blocks allocated for chunk structures and augmentation lists."""
        total = sum(structure.block_count() for structure in self.chunk_structures)
        total += sum(1 for node_id in self._high_points if self._high_points[node_id])
        total += sum(len(blocks) for blocks in self._lmax.values())
        total += sum(len(blocks) for blocks in self._rmax.values())
        return total
