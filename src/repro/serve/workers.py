"""Persistent per-shard workers keyed by shard *uid*.

The service's native batch executor (:func:`repro.service.batch
.execute_worklists`) spins up a transient thread pool per call and keys
worklists by shard *position*.  A serving runtime executes batches
continuously, so this pool keeps one long-lived worker thread per shard
**uid** -- the stable identity that survives topology changes -- and
installs itself as the service's pluggable ``batch_executor``.  Between
batches the workers stay warm (thread, per-worker counters, and the
shard machine's buffer pool they repeatedly drive); across an online
split or merge only the rewritten shards' workers are retired and the
children's created, exactly mirroring how the result cache scopes
invalidation to rewritten uids.  This is the ROADMAP's topology-aware
batch executor: worklists keyed by uid, so splits/merges between batches
never cold-start the untouched shards.

Accounting stays exact for the same reason the transient pool's did:
each worklist runs on exactly one worker, each shard machine charges a
private ledger, and nothing is shared between workers.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis import sanitize as _sanitize
from repro.analysis.locks import tracked_condition, tracked_lock
from repro.service.batch import ShardAnswer, ShardQueryFn, WorkItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import SkylineService

# One dispatched unit: ("query", (sid, worklist, shard_query), future) for
# a read batch, or ("call", zero-arg callable, future) for one shard's
# maintenance step (a per-shard tower drain).
_Task = Tuple[str, object, "Future"]


class _ShardWorker:
    """One daemon thread bound to one shard uid for the shard's lifetime."""

    def __init__(self, uid: int) -> None:
        self.uid = uid
        self.batches = 0
        self.items = 0
        self._tasks: "list" = []
        self._available = tracked_condition("serve.workers.available")
        self._stopped = False
        self.thread = threading.Thread(
            target=self._loop, name=f"skyserve-shard-{uid}", daemon=True
        )
        self.thread.start()

    def submit(self, task: _Task) -> None:
        with self._available:
            self._tasks.append(task)
            self._available.notify()

    def stop(self) -> None:
        with self._available:
            self._stopped = True
            self._available.notify()

    def _loop(self) -> None:
        while True:
            with self._available:
                while not self._tasks and not self._stopped:
                    self._available.wait()
                if self._stopped and not self._tasks:
                    return
                kind, payload, future = self._tasks.pop(0)
            try:
                if kind == "query":
                    sid, items, shard_query = payload  # type: ignore[misc]
                    result: object = [
                        ((position, sid), shard_query(sid, query))
                        for position, query in items
                    ]
                    self.items += len(items)
                else:  # "call": one maintenance step
                    result = payload()  # type: ignore[operator]
            except BaseException as exc:  # surfaced on the batch future
                future.set_exception(exc)
                continue
            self.batches += 1
            future.set_result(result)


class ShardWorkerPool:
    """A uid-keyed pool of persistent shard workers.

    Instances are callables with the executor signature
    ``(worklists, shard_query, parallelism) -> {(position, sid): answer}``
    expected by :attr:`repro.service.SkylineService.batch_executor`.  The
    configured ``parallelism`` is ignored: the pool *is* the fan-out, one
    dedicated worker per live shard.
    """

    def __init__(self, service: "SkylineService") -> None:
        self.service = service
        self.workers: Dict[int, _ShardWorker] = {}
        self.created = 0
        self.retired = 0
        # Concurrent read batches call sync() from several dispatcher
        # threads at once; the worker table reconciliation must not race.
        self._sync_lock = tracked_lock("serve.workers.sync")

    # ------------------------------------------------------------------
    # Topology tracking
    # ------------------------------------------------------------------
    def sync(self) -> Dict[int, int]:
        """Reconcile workers with the live topology; returns sid -> uid.

        Called at the start of every batch (topology only moves between
        batches: the server's writer lane and read batches are mutually
        exclusive).  Workers for vanished uids are retired; new uids get
        fresh workers; everyone else stays warm.
        """
        with self._sync_lock:
            live = {shard.sid: shard.uid for shard in self.service.shards}
            alive = set(live.values())
            for uid in list(self.workers):
                if uid not in alive:
                    # repro: calls(_ShardWorker.stop)
                    self.workers.pop(uid).stop()
                    self.retired += 1
            for uid in alive:
                if uid not in self.workers:
                    self.workers[uid] = _ShardWorker(uid)
                    self.created += 1
            return live

    # ------------------------------------------------------------------
    # Batch execution (the service's batch_executor hook)
    # ------------------------------------------------------------------
    def __call__(
        self,
        worklists: Dict[int, List[WorkItem]],
        shard_query: ShardQueryFn,
        parallelism: int = 1,
    ) -> Dict[Tuple[int, int], ShardAnswer]:
        # Batch entry is a declared handoff point: shard ledgers last
        # charged by the caller (build, compaction) may now be charged by
        # the uid-bound workers.
        _sanitize.sync_point()
        uid_of_sid = self.sync()
        futures: List[Future] = []
        for sid in sorted(worklists):
            future: Future = Future()
            # repro: calls(_ShardWorker.submit)
            self.workers[uid_of_sid[sid]].submit(
                ("query", (sid, worklists[sid], shard_query), future)
            )
            futures.append(future)
        results: Dict[Tuple[int, int], ShardAnswer] = {}
        for future in futures:
            results.update(future.result())
        # And batch exit hands the ledgers back to the caller.
        _sanitize.sync_point()
        return results

    # ------------------------------------------------------------------
    # Maintenance execution (the service's run_maintenance hook)
    # ------------------------------------------------------------------
    def run_maintenance(self, steps: Dict[int, object]) -> Dict[int, object]:
        """Run one zero-arg maintenance callable per shard *uid* on that
        shard's dedicated worker, in parallel; returns uid -> result.

        Per-shard towers make this sound: each step drains one shard's
        private tower and charges only tower-private ledgers, so
        concurrent steps never touch the same counter and the totals are
        bit-identical to a serial drain -- the same isolation argument
        the query path proves.  Entry and exit are declared handoff
        points, mirroring :meth:`__call__`.
        """
        _sanitize.sync_point()
        self.sync()
        futures: Dict[int, Future] = {}
        for uid in sorted(steps):
            future: Future = Future()
            worker = self.workers.get(uid)
            if worker is None:
                # A uid the live topology no longer lists (the caller
                # raced a topology change): run the step inline.
                try:
                    future.set_result(steps[uid]())  # type: ignore[operator]
                except BaseException as exc:
                    future.set_exception(exc)
            else:
                # repro: calls(_ShardWorker.submit)
                worker.submit(("call", steps[uid], future))
            futures[uid] = future
        results = {uid: future.result() for uid, future in futures.items()}
        _sanitize.sync_point()
        return results

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        for worker in self.workers.values():
            worker.stop()
        self.workers.clear()

    def describe(self) -> Dict[str, object]:
        return {
            "workers": len(self.workers),
            "created": self.created,
            "retired": self.retired,
            "per_worker": {
                uid: {"batches": w.batches, "items": w.items}
                for uid, w in sorted(self.workers.items())
            },
        }


def install_worker_pool(service: "SkylineService") -> Optional[ShardWorkerPool]:
    """Attach a pool as ``service.batch_executor``; returns it (or None if
    one of this type is already installed)."""
    if isinstance(service.batch_executor, ShardWorkerPool):
        return None
    pool = ShardWorkerPool(service)
    service.batch_executor = pool
    return pool
