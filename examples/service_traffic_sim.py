"""Traffic simulation: a sharded skyline engine under mixed read/write load.

Run with::

    PYTHONPATH=src python examples/service_traffic_sim.py

The simulation drives a sharded :class:`repro.engine.SkylineEngine` the
way a product-search tier would be driven: every tick delivers a *batch*
of range-skyline queries (a Zipf-skewed mix of hot windows and fresh
rectangles) interleaved with a trickle of catalogue updates (new offers
inserted, stale offers deleted).  Every request comes back with its
:class:`~repro.engine.ExecutionReport`, so the per-tick figures -- block
transfers, cache hits, shard pruning -- are sums of per-request report
fields rather than counter diffs; writes land in the level-0 memtable
and, whenever it passes the configured threshold, seal into the leveled
merge scheduler -- each write's report carries at most the bounded
incremental merge step (``maintenance_blocks``), never a stop-the-world
rebuild.  A final summary checks the engine against the in-memory
reference skyline and the ledger partition.
"""

from __future__ import annotations

import random

from repro import FourSidedQuery, Point, RangeQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.engine import SkylineEngine
from repro.service import ServiceConfig

from repro.workloads import clustered_points

TICKS = 12
QUERIES_PER_TICK = 40
WRITES_PER_TICK = 18
HOT_WINDOWS = 10
UNIVERSE = 1_000_000


def make_hot_windows(rng: random.Random, count: int):
    windows = []
    for _ in range(count):
        width = rng.uniform(0.01, 0.04) * UNIVERSE
        start = rng.uniform(0, UNIVERSE - width)
        beta = rng.uniform(0, UNIVERSE)
        if rng.random() < 0.6:
            windows.append(TopOpenQuery(start, start + width, beta))
        else:
            windows.append(
                FourSidedQuery(start, start + width, beta * 0.5, beta * 0.5 + 0.3 * UNIVERSE)
            )
    return windows


def tick_queries(rng: random.Random, windows):
    """Zipf-skewed repeats of the hot windows plus a few one-off rectangles."""
    weights = [1.0 / (rank + 1) for rank in range(len(windows))]
    queries = rng.choices(windows, weights=weights, k=QUERIES_PER_TICK - 4)
    for _ in range(4):
        a, b = sorted(rng.uniform(0, UNIVERSE) for _ in range(2))
        queries.append(TopOpenQuery(a, b, rng.uniform(0, UNIVERSE)))
    return queries


def main() -> None:
    rng = random.Random(2013)
    points = clustered_points(8_000, universe=UNIVERSE, seed=7)
    engine = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=8,
            block_size=32,
            memory_blocks=32,
            delta_threshold=48,
            cache_capacity=512,
        ),
    )
    service = engine.backend.service
    live = list(points)
    next_ident = len(points)
    windows = make_hot_windows(rng, HOT_WINDOWS)

    print(f"serving {len(engine)} points from {len(service.shards)} shards")
    header = (
        f"{'tick':>4} {'queries':>8} {'cache hits':>11} {'pruned':>7} "
        f"{'read I/O':>9} {'write I/O':>10} {'memtable':>9} {'merges':>7}"
    )
    print(header)
    print("-" * len(header))
    for tick in range(TICKS):
        # Read batch: one report per request.
        results = engine.query_many(tick_queries(rng, windows))
        read_io = sum(r.report.blocks for r in results)
        hits = sum(1 for r in results if r.report.cache_hit)
        pruned = sum(r.report.shards_pruned for r in results)

        # Bursty writes every third tick: 2/3 inserts at off-grid
        # coordinates, 1/3 deletes.  Read-only ticks in between are served
        # straight from the result cache (a write only invalidates the
        # cached answers whose rectangles overlap the shard it routes to,
        # via the per-shard write versions embedded in every cache key).
        write_io = 0
        if tick % 3 == 0:
            for w in range(WRITES_PER_TICK):
                if w % 3 < 2:
                    point = Point(
                        rng.randrange(UNIVERSE) + 0.5,
                        rng.uniform(0, UNIVERSE),
                        next_ident,
                    )
                    try:
                        outcome = engine.insert(point)
                    except ValueError:
                        continue  # coordinate collision with a live point
                    write_io += outcome.report.blocks
                    live.append(point)
                    next_ident += 1
                elif live:
                    victim = live.pop(rng.randrange(len(live)))
                    write_io += engine.delete(victim).report.blocks

        print(
            f"{tick:>4} {len(results):>8} {hits:>11} {pruned:>7} "
            f"{read_io:>9} {write_io:>10} {len(service.delta.inserts):>9} "
            f"{service.merges_completed:>7}"
        )

    status = engine.describe()
    backend = status["backend"]
    print("\nfinal state:")
    for key in ("shard_sizes", "live_points", "update_path", "io_total"):
        print(f"  {key}: {backend[key]}")
    print(f"  levels: {backend['levels']}")
    print(f"  result_cache: {backend['result_cache']}")
    print(f"  engine: {status['engine']}")
    assert (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )

    reference = sorted((p.x, p.y) for p in range_skyline(live, RangeQuery()))
    served = sorted((p.x, p.y) for p in engine.query(RangeQuery()).points)
    assert served == reference, "engine skyline diverged from the reference"
    print(f"\nskyline of the live catalogue: {len(served)} points (verified)")


if __name__ == "__main__":
    main()
