"""The multiversion (partially persistent) B-tree.

Updates are applied to the *current* version, which must be non-decreasing
over the lifetime of the tree (the sweep over x-coordinates guarantees
this).  Past versions remain queryable forever: ``range_query(version, lo,
hi)`` and ``scan_from(version, lo, visitor)`` run against the snapshot
B-tree of ``version`` in ``O(log_B n + k/B)`` I/Os, because every node
guarantees a minimum number of entries alive at each version it spans
(the weak version condition of Becker et al.).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Tuple

from repro.em.storage import StorageManager
from repro.ppbtree.nodes import INF, MVEntry, MVNode


class MultiversionBTree:
    """A partially persistent B-tree over totally ordered keys."""

    def __init__(self, storage: StorageManager, capacity: Optional[int] = None) -> None:
        self.storage = storage
        # Leave slack below the block size so that the transient growth of a
        # node during a restructuring step never exceeds one block.
        base = capacity or storage.block_size
        self.capacity = max(8, base - 4)
        self.live_min = max(2, self.capacity // 5)
        self.strong_low = max(self.live_min + 1, (2 * self.capacity) // 5)
        self.strong_high = max(self.strong_low + 2, (4 * self.capacity) // 5)
        # roots[i] = (first version covered, block id); kept sorted by version.
        self.roots: List[Tuple[float, int]] = []
        self.current_version = -INF
        self.update_count = 0
        self.version_copies = 0

    # ------------------------------------------------------------------
    # Updates (applied at non-decreasing versions)
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any, version: float) -> None:
        """Insert ``key -> value`` effective from ``version`` on."""
        self._advance_version(version)
        self.update_count += 1
        if not self.roots:
            root = MVNode(is_leaf=True, entries=[MVEntry(key, version, INF, value)])
            root_id = self.storage.create(root)
            self.roots.append((version, root_id))
            return
        while True:
            path = self._descend_current(key)
            leaf_id, leaf = path[-1]
            if len(leaf.entries) + 1 > self.capacity:
                self._restructure(path, version)
                continue
            leaf.entries.append(MVEntry(key, version, INF, value))
            leaf.entries.sort(key=lambda e: (e.key, e.start))
            self.storage.write(leaf_id, leaf)
            return

    def delete(self, key: Any, version: float) -> bool:
        """Logically delete the live entry with ``key`` as of ``version``."""
        self._advance_version(version)
        if not self.roots:
            return False
        self.update_count += 1
        path = self._descend_current(key)
        leaf_id, leaf = path[-1]
        target = None
        for entry in leaf.entries:
            if entry.alive_now and entry.key == key:
                target = entry
                break
        if target is None:
            return False
        target.end = version
        self.storage.write(leaf_id, leaf)
        if leaf.live_count() < self.live_min and len(path) > 1:
            self._restructure(path, version)
        return True

    def _advance_version(self, version: float) -> None:
        if version < self.current_version:
            raise ValueError(
                f"versions must be non-decreasing: {version} < {self.current_version}"
            )
        self.current_version = version

    # ------------------------------------------------------------------
    # Queries against arbitrary versions
    # ------------------------------------------------------------------
    def root_for(self, version: float) -> Optional[int]:
        """Block id of the root of the snapshot at ``version``."""
        candidate: Optional[int] = None
        for start, root_id in self.roots:
            if start <= version:
                candidate = root_id
            else:
                break
        return candidate

    def range_query(self, version: float, key_lo: Any, key_hi: Any) -> List[Any]:
        """Values of entries alive at ``version`` with key in ``[key_lo, key_hi]``."""
        results: List[Any] = []

        def visitor(key: Any, value: Any) -> bool:
            if key > key_hi:
                return False
            results.append(value)
            return True

        self.scan_from(version, key_lo, visitor)
        return results

    def scan_from(
        self, version: float, key_lo: Any, visitor: Callable[[Any, Any], bool]
    ) -> None:
        """Visit entries alive at ``version`` with key >= ``key_lo`` in key order.

        ``visitor(key, value)`` returns ``False`` to stop the scan.  Because
        every node on the snapshot holds Omega(capacity) live entries, the
        cost is ``O(log_B n + k/B)`` I/Os for ``k`` visited entries.
        """
        root_id = self.root_for(version)
        if root_id is None:
            return
        self._scan_node(root_id, version, key_lo, visitor)

    def _scan_node(
        self,
        node_id: int,
        version: float,
        key_lo: Any,
        visitor: Callable[[Any, Any], bool],
    ) -> bool:
        """Returns ``False`` when the visitor asked to stop."""
        node: MVNode = self.storage.read(node_id)
        live = sorted(node.live_entries(version), key=lambda e: e.key)
        if node.is_leaf:
            for entry in live:
                if entry.key < key_lo:
                    continue
                if not visitor(entry.key, entry.value):
                    return False
            return True
        for index, entry in enumerate(live):
            upper = live[index + 1].key if index + 1 < len(live) else INF
            # The child rooted at ``entry`` covers keys in [entry.key, upper)
            # within this snapshot; the first child also covers keys below
            # its router.
            if upper <= key_lo and index + 1 < len(live):
                continue
            if not self._scan_node(entry.value, version, key_lo, visitor):
                return False
        return True

    def snapshot_items(self, version: float) -> List[Tuple[Any, Any]]:
        """All (key, value) pairs alive at ``version`` in key order."""
        items: List[Tuple[Any, Any]] = []

        def visitor(key: Any, value: Any) -> bool:
            items.append((key, value))
            return True

        self.scan_from(version, -INF, visitor)
        return items

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def block_count(self) -> int:
        """Number of blocks ever created for this tree (the paper's space)."""
        return self._count_blocks()

    def _count_blocks(self) -> int:
        self.storage.flush()
        seen: set = set()
        stack = [root_id for _, root_id in self.roots]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            # repro: uncharged-io(space accounting walks every reachable block to count them; the paper's space bound is measured out-of-band, not charged as transfers)
            node: MVNode = self.storage.disk.peek(node_id)
            if not node.is_leaf:
                stack.extend(entry.value for entry in node.entries)
        return len(seen)

    # ------------------------------------------------------------------
    # Descent and restructuring (the version-copy machinery)
    # ------------------------------------------------------------------
    def _descend_current(self, key: Any) -> List[Tuple[int, MVNode]]:
        """Path of (block id, node) from the current root to the target leaf."""
        root_id = self.roots[-1][1]
        path: List[Tuple[int, MVNode]] = []
        node_id = root_id
        while True:
            node: MVNode = self.storage.read(node_id)
            path.append((node_id, node))
            if node.is_leaf:
                return path
            live = sorted(
                (e for e in node.entries if e.alive_now), key=lambda e: e.key
            )
            chosen = live[0]
            for entry in live:
                if entry.key <= key:
                    chosen = entry
                else:
                    break
            node_id = chosen.value

    def _restructure(self, path: List[Tuple[int, MVNode]], version: float) -> None:
        """Version-copy the last node of ``path`` (merging / splitting as needed)."""
        node_id, node = path[-1]
        parent = path[-2] if len(path) > 1 else None
        self.version_copies += 1

        live = [e for e in node.entries if e.alive_now]
        for entry in live:
            entry.end = version
        self.storage.write(node_id, node)
        copied = [MVEntry(e.key, version, INF, e.value) for e in live]
        dead_ids = [node_id]

        # Merge with a live sibling when too few entries survive.
        if parent is not None and len(copied) < self.strong_low:
            sibling = self._take_sibling(parent, node_id, version)
            if sibling is not None:
                sibling_id, sibling_live = sibling
                copied.extend(
                    MVEntry(e.key, version, INF, e.value) for e in sibling_live
                )
                dead_ids.append(sibling_id)

        copied.sort(key=lambda e: e.key)
        new_nodes: List[Tuple[int, MVNode]] = []
        if len(copied) > self.strong_high:
            mid = len(copied) // 2
            halves = [copied[:mid], copied[mid:]]
        else:
            halves = [copied]
        for half in halves:
            new_node = MVNode(is_leaf=node.is_leaf, entries=half)
            new_id = self.storage.create(new_node)
            new_nodes.append((new_id, new_node))

        if parent is None:
            self._install_new_root(new_nodes, version)
            return
        parent_id, parent_node = parent
        # End the parent entries of every dead child and add routers for the
        # new nodes.
        for entry in parent_node.entries:
            if entry.alive_now and entry.value in dead_ids:
                entry.end = version
        for new_id, new_node in new_nodes:
            router = min(e.key for e in new_node.entries) if new_node.entries else -INF
            parent_node.entries.append(MVEntry(router, version, INF, new_id))
        parent_node.entries.sort(key=lambda e: (e.key, e.start))
        self.storage.write(parent_id, parent_node)
        if (
            len(parent_node.entries) > self.capacity
            or parent_node.live_count() < self.live_min
        ):
            self._restructure(path[:-1], version)

    def _take_sibling(
        self, parent: Tuple[int, MVNode], node_id: int, version: float
    ) -> Optional[Tuple[int, List[MVEntry]]]:
        """Pick a live sibling of ``node_id``, end its live entries, return them."""
        parent_id, parent_node = parent
        live_children = sorted(
            (e for e in parent_node.entries if e.alive_now), key=lambda e: e.key
        )
        position = next(
            (i for i, e in enumerate(live_children) if e.value == node_id), None
        )
        if position is None:
            return None
        sibling_entry: Optional[MVEntry] = None
        if position + 1 < len(live_children):
            sibling_entry = live_children[position + 1]
        elif position > 0:
            sibling_entry = live_children[position - 1]
        if sibling_entry is None:
            return None
        sibling_id = sibling_entry.value
        sibling: MVNode = self.storage.read(sibling_id)
        sibling_live = [e for e in sibling.entries if e.alive_now]
        for entry in sibling_live:
            entry.end = version
        self.storage.write(sibling_id, sibling)
        return sibling_id, sibling_live

    def _install_new_root(
        self, new_nodes: List[Tuple[int, MVNode]], version: float
    ) -> None:
        if len(new_nodes) == 1:
            self.roots.append((version, new_nodes[0][0]))
            return
        entries = []
        for new_id, new_node in new_nodes:
            router = min(e.key for e in new_node.entries) if new_node.entries else -INF
            entries.append(MVEntry(router, version, INF, new_id))
        is_leaf = False
        root = MVNode(is_leaf=is_leaf, entries=entries)
        root_id = self.storage.create(root)
        self.roots.append((version, root_id))
