"""Partially persistent (multiversion) B-tree -- the PPB-tree of Section 2.

The static top-open structure stores the segment set ``Sigma(P)`` in a
partially persistent B-tree keyed on y-coordinate, where a segment is
inserted at the version equal to its left endpoint's x-coordinate and
deleted at its right endpoint's x-coordinate.  A vertical-segment stabbing
query at ``x = alpha`` is then a range query on the snapshot B-tree of
version ``alpha``.

The implementation follows the multiversion B-tree of Becker et al. (the
reference the paper cites): entries carry version intervals, nodes are
rebuilt by version copies with strong-condition key splits / merges, and a
small in-memory root index maps versions to roots.
"""

from repro.ppbtree.nodes import MVEntry, MVNode
from repro.ppbtree.ppbtree import MultiversionBTree
from repro.ppbtree.build import build_segment_ppbtree, sweep_events

__all__ = [
    "MVEntry",
    "MVNode",
    "MultiversionBTree",
    "build_segment_ppbtree",
    "sweep_events",
]
