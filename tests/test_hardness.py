"""Tests for the lower-bound workload (Lemma 8) and indexability analysis."""

import pytest

from repro.core.skyline import range_skyline
from repro.hardness import (
    IndexabilityAnalyzer,
    chazelle_liu_input,
    indexability_query_lower_bound,
    pointer_machine_space_lower_bound,
    rho,
)
from repro.hardness.chazelle_liu import verify_workload


def test_rho_reverses_and_complements_digits():
    # omega = 10, lam = 3: i = 123 -> digits 1,2,3 -> reversed 3,2,1 ->
    # complement (9-d) -> 6,7,8 -> 678.
    assert rho(123, 10, 3) == 678
    assert rho(0, 2, 3) == 7  # 000 -> 111
    assert rho(5, 2, 3) == rho(0b101, 2, 3) == 0b010


def test_workload_sizes_match_lemma8():
    for omega, lam in [(2, 3), (4, 2), (3, 3)]:
        workload = chazelle_liu_input(omega, lam)
        assert workload.n == omega ** lam
        assert len(workload.queries) == lam * omega ** (lam - 1)
        assert all(q.output_size == omega for q in workload.queries)


def test_workload_satisfies_lemma8_properties():
    workload = chazelle_liu_input(3, 3)
    assert verify_workload(workload)


def test_queries_share_at_most_one_point():
    workload = chazelle_liu_input(4, 2)
    for i, first in enumerate(workload.queries):
        first_ids = {p.ident for p in first.expected}
        for second in workload.queries[i + 1 :]:
            assert len(first_ids & {p.ident for p in second.expected}) <= 1


def test_mirrored_form_is_an_anti_dominance_skyline_workload():
    workload = chazelle_liu_input(4, 2)
    mirrored = workload.mirrored_points()
    for index, query in enumerate(workload.mirrored_queries()):
        expected = sorted((p.x, p.y) for p in workload.mirrored_expected(index))
        got = sorted((p.x, p.y) for p in range_skyline(mirrored, query))
        assert expected == got


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        chazelle_liu_input(1, 2)
    with pytest.raises(ValueError):
        chazelle_liu_input(2, 0)


def test_indexability_analyzer_layouts_and_overhead():
    workload = chazelle_liu_input(4, 3)
    analyzer = IndexabilityAnalyzer(workload, block_size=4)
    reports = analyzer.evaluate_standard_layouts()
    assert {r.name for r in reports} == {"x-sorted", "y-sorted", "z-order"}
    for report in reports:
        assert report.blocks_used == workload.n // 4
        assert report.min_blocks_per_query >= 1
        assert report.max_blocks_per_query >= report.min_blocks_per_query
        # No linear layout reaches the ideal k/B cost on its worst query.
        assert report.max_blocks_per_query > report.optimal_blocks_per_query
    layout = analyzer.x_sorted_layout()
    assert analyzer.access_overhead(layout) >= 1.0
    assert analyzer.theorem_space_bound() > 0


def test_lower_bound_formulas():
    assert indexability_query_lower_bound(2 ** 20, 64, 1.0) > indexability_query_lower_bound(
        2 ** 10, 64, 1.0
    )
    assert pointer_machine_space_lower_bound(2 ** 16) > 2 ** 16
    assert pointer_machine_space_lower_bound(2) == 2
