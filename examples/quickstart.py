"""Quickstart: index a point set and run every range-skyline query variant.

Run with::

    python examples/quickstart.py

The example builds the high-level :class:`repro.RangeSkylineIndex` over a
small product-like dataset, issues one query of every shape from Figure 2 of
the paper, and prints the block I/Os each query charged to the simulated
external-memory machine.
"""

from __future__ import annotations

from repro import (
    AntiDominanceQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    Point,
    RangeSkylineIndex,
    RightOpenQuery,
    TopOpenQuery,
)
from repro.em import EMConfig, StorageManager
from repro.workloads import uniform_points


def main() -> None:
    # A simulated machine with 64-record blocks and a 32-block buffer pool.
    storage = StorageManager(EMConfig(block_size=64, memory_blocks=32))

    # 5 000 uniform points in general position.
    points = uniform_points(5_000, universe=100_000, seed=42)
    index = RangeSkylineIndex(storage, points)
    print(f"indexed {len(index)} points using {storage.blocks_in_use()} blocks")
    print(f"construction charged {index.io_total()} block transfers\n")

    queries = [
        ("top-open", TopOpenQuery(20_000, 80_000, 60_000)),
        ("right-open", RightOpenQuery(50_000, 20_000, 90_000)),
        ("left-open", LeftOpenQuery(60_000, 20_000, 90_000)),
        ("dominance", DominanceQuery(70_000, 70_000)),
        ("anti-dominance", AntiDominanceQuery(30_000, 30_000)),
        ("contour", ContourQuery(55_000)),
        ("4-sided", FourSidedQuery(25_000, 75_000, 25_000, 75_000)),
    ]
    header = f"{'query':<15} {'results':>8} {'I/Os':>6}"
    print(header)
    print("-" * len(header))
    for name, query in queries:
        storage.drop_cache()
        before = storage.snapshot()
        result = index.query(query)
        io = (storage.snapshot() - before).total
        print(f"{name:<15} {len(result):>8} {io:>6}")

    print("\nfirst few maxima of the 4-sided query:")
    for point in index.query(FourSidedQuery(25_000, 75_000, 25_000, 75_000))[:5]:
        print(f"  ({point.x:.0f}, {point.y:.0f})")


if __name__ == "__main__":
    main()
