"""Pluggable execution backends behind the engine's one front door.

A :class:`Backend` turns a validated request into points plus a
:class:`QueryTrace` (the service-tier facts -- cache hit, shard fan-out,
tombstone fallback -- the engine folds into the per-request
:class:`~repro.engine.report.ExecutionReport`), and exposes the
structural facts (``B``, per-scope ``n``, ``epsilon``) the planner needs.
Two implementations ship:

* :class:`LocalIndexBackend` -- a single :class:`repro.RangeSkylineIndex`
  on one simulated machine: the embedded/single-node deployment.
* :class:`ShardedServiceBackend` -- a
  :class:`repro.service.SkylineService`: x-range shards, batch execution,
  result cache, log-merge updates, and (when configured) the durability
  tier, whose :meth:`ShardedServiceBackend.open` / ``close`` passthrough
  recovers and cleanly shuts down the underlying store.

Both charge every block transfer to ledgers the engine snapshots around
each request, so per-request report totals sum exactly to the backend
ledger -- the invariant the engine's accounting tests pin down.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Tuple

from repro.api import RangeSkylineIndex
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.counters import IOSnapshot
from repro.em.storage import StorageManager
from repro.engine.plan import (
    BOUND_UPDATE_LEVELED,
    BOUND_UPDATE_THRESHOLD,
    QueryPlan,
    amortized_update_io,
    build_plan,
    structure_for,
)
from repro.engine.requests import OP_INSERT, QueryRequest, UpdateRequest
from repro.service.config import ServiceConfig
from repro.service.durability import DurableStore
from repro.service.service import QueryExecutionTrace, SkylineService


class QueryTrace:
    """Backend-side facts about one executed query (no block counts --
    those come from the ledger snapshots the engine takes)."""

    __slots__ = (
        "cache_hit",
        "shards_visited",
        "shards_pruned",
        "tombstone_fallback",
        "coalesced",
    )

    def __init__(
        self,
        cache_hit: bool = False,
        shards_visited: int = 1,
        shards_pruned: int = 0,
        tombstone_fallback: bool = False,
        coalesced: bool = False,
    ) -> None:
        self.cache_hit = cache_hit
        self.shards_visited = shards_visited
        self.shards_pruned = shards_pruned
        self.tombstone_fallback = tombstone_fallback
        self.coalesced = coalesced


class Backend(Protocol):
    """What the engine needs from an execution tier."""

    #: Stable backend identifier, embedded in plans and reports.
    name: str

    @property
    def write_path(self) -> str:
        """Label reports use as the ``structure`` of update requests."""
        ...

    def snapshot(self) -> IOSnapshot:
        """Current ledger counters (engine measures per-request deltas)."""
        ...

    def maintenance_snapshot(self) -> IOSnapshot:
        """Current maintenance-ledger counters: the incremental merge
        work charged alongside updates (all-zero on backends without a
        leveled update path)."""
        ...

    def io_total(self) -> int:
        """Total block transfers charged so far (including construction)."""
        ...

    def block_size(self) -> int:
        """``B`` of the simulated machine(s)."""
        ...

    def __len__(self) -> int:
        """Number of live points."""
        ...

    def execute(
        self, rect: RangeQuery, consistency: str
    ) -> Tuple[List[Point], QueryTrace]:
        """Answer ``rect`` (full, unpaginated result in x-order)."""
        ...

    def execute_many(
        self, rects: List[RangeQuery], consistency: str
    ) -> List[Tuple[List[Point], QueryTrace]]:
        """Answer a batch through the backend's native batch executor."""
        ...

    def apply(self, request: UpdateRequest) -> bool:
        """Apply one update; ``False`` iff a delete found no victim."""
        ...

    def plan(self, request: QueryRequest) -> QueryPlan:
        """The structure choice and instantiated paper bound, no execution."""
        ...

    def describe(self) -> Dict[str, object]:
        """Status snapshot for dashboards."""
        ...

    def drop_caches(self) -> None:
        """Empty the buffer pool(s) for cold-cache measurements."""
        ...

    def compact(self) -> None:
        """Fold pending writes into the static structures (no-op when the
        backend has no delta to fold)."""
        ...

    def drain(self, sid: Optional[int] = None) -> Dict[str, int]:
        """Pay all outstanding incremental merge debt now (no-op when
        the backend has no merge scheduler); with ``sid`` only that
        shard's private tower is drained.  Returns the drain counters."""
        ...

    def split_shard(self, sid: int, cut: Optional[float] = None) -> Optional[float]:
        """Split shard ``sid`` (no-op returning ``None`` on backends
        without a shard topology); returns the cut applied."""
        ...

    def merge_shards(self, sid: int) -> Optional[float]:
        """Merge shards ``sid`` and ``sid + 1`` (no-op returning ``None``
        on backends without a shard topology); returns the removed cut."""
        ...

    def fold_shard(self, sid: int) -> int:
        """Fold shard ``sid`` in place (no-op returning 0 on backends
        without a shard topology); returns records touched."""
        ...

    def close(self) -> int:
        """Flush/shutdown; returns backend-specific flush count."""
        ...


class LocalIndexBackend:
    """A single :class:`repro.RangeSkylineIndex` on one simulated machine."""

    name = "local-index"
    write_path = "dynamic-structures"

    def __init__(self, index: RangeSkylineIndex) -> None:
        self.index = index

    @classmethod
    def build(
        cls,
        points: List[Point],
        *,
        dynamic: bool = False,
        epsilon: float = 0.5,
        em_config: Optional[EMConfig] = None,
        storage: Optional[StorageManager] = None,
    ) -> "LocalIndexBackend":
        """Index ``points`` on a fresh machine (or a caller-supplied one)."""
        machine = storage if storage is not None else StorageManager(em_config)
        return cls(
            RangeSkylineIndex(machine, points, dynamic=dynamic, epsilon=epsilon)
        )

    # -- ledger --------------------------------------------------------
    def snapshot(self) -> IOSnapshot:
        return self.index.storage.snapshot()

    def maintenance_snapshot(self) -> IOSnapshot:
        return IOSnapshot()

    def io_total(self) -> int:
        return self.index.io_total()

    def block_size(self) -> int:
        return self.index.storage.block_size

    def __len__(self) -> int:
        return len(self.index)

    # -- execution -----------------------------------------------------
    def execute(
        self, rect: RangeQuery, consistency: str
    ) -> Tuple[List[Point], QueryTrace]:
        # The monolithic index has no result cache, so both consistency
        # levels recompute; there is exactly one "shard" and no delta.
        return self.index.query(rect), QueryTrace(shards_visited=1)

    def execute_many(
        self, rects: List[RangeQuery], consistency: str
    ) -> List[Tuple[List[Point], QueryTrace]]:
        """One native ``query_many`` call (variant/x-ordered for
        buffer-pool locality)."""
        return [
            (points, QueryTrace(shards_visited=1))
            for points in self.index.query_many(rects)
        ]

    def apply(self, request: UpdateRequest) -> bool:
        if request.op == OP_INSERT:
            self.index.insert(request.point)
            return True
        return self.index.delete(request.point)

    # -- planning ------------------------------------------------------
    def plan(self, request: QueryRequest) -> QueryPlan:
        # The facade builds its 4-sided structure with a floored epsilon;
        # quote the value the structure actually uses.
        epsilon = self.index.epsilon
        if structure_for(request.variant) == "four-sided":
            epsilon = self.index.four_sided_epsilon
        return build_plan(
            request,
            backend=self.name,
            block_size=self.block_size(),
            epsilon=epsilon,
            dynamic=self.index.dynamic,
            scopes=[(None, len(self.index))],
            shards_pruned=0,
        )

    # -- lifecycle -----------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "points": len(self.index),
            "dynamic": self.index.dynamic,
            "epsilon": self.index.epsilon,
            "block_size": self.block_size(),
            "io_total": self.io_total(),
            "blocks_in_use": self.index.storage.blocks_in_use(),
        }

    def drop_caches(self) -> None:
        self.index.storage.drop_cache()

    def compact(self) -> None:
        """No-op: the monolithic index applies updates in place."""

    def drain(self, sid: Optional[int] = None) -> Dict[str, int]:
        """No-op: the monolithic index has no merge scheduler."""
        return {"merge_io": 0, "merges_completed": 0}

    def split_shard(self, sid: int, cut: Optional[float] = None) -> Optional[float]:
        """No-op: the monolithic index has no shard topology."""
        return None

    def merge_shards(self, sid: int) -> Optional[float]:
        """No-op: the monolithic index has no shard topology."""
        return None

    def fold_shard(self, sid: int) -> int:
        """No-op: the monolithic index has no shard topology."""
        return 0

    def close(self) -> int:
        self.index.storage.flush()
        return 0


class ShardedServiceBackend:
    """A :class:`repro.service.SkylineService` behind the engine API."""

    name = "sharded-service"

    def __init__(self, service: SkylineService) -> None:
        self.service = service

    @property
    def write_path(self) -> str:
        """Label reports carry for updates: the configured update path."""
        return (
            "leveled-lsm"
            if self.service.config.update_path == "leveled"
            else "delta-buffer"
        )

    @classmethod
    def build(
        cls,
        points: List[Point],
        config: Optional[ServiceConfig] = None,
        store: Optional[DurableStore] = None,
        **overrides: object,
    ) -> "ShardedServiceBackend":
        return cls(SkylineService(points, config, store=store, **overrides))

    @classmethod
    def open(
        cls,
        store: DurableStore,
        config: Optional[ServiceConfig] = None,
        **overrides: object,
    ) -> "ShardedServiceBackend":
        """Durability passthrough: recover the service a store holds."""
        return cls(SkylineService.open(store, config, **overrides))

    # -- ledger --------------------------------------------------------
    def snapshot(self) -> IOSnapshot:
        return self.service.snapshot()

    def maintenance_snapshot(self) -> IOSnapshot:
        return self.service.maintenance.snapshot()

    def io_total(self) -> int:
        return self.service.io_total()

    def block_size(self) -> int:
        return self.service.config.block_size

    def __len__(self) -> int:
        return len(self.service)

    # -- execution -----------------------------------------------------
    def _visited(self, rect: RangeQuery) -> List[int]:
        return self.service.router.shards_for(rect)

    def _trace_from(self, trace: QueryExecutionTrace) -> QueryTrace:
        # The service is the single source of truth for routing, cache
        # and tombstone-fallback facts; nothing is re-derived here.
        visited = len(trace.shard_ids)
        return QueryTrace(
            cache_hit=trace.cache_hit,
            shards_visited=visited,
            shards_pruned=len(self.service.shards) - visited,
            tombstone_fallback=trace.tombstone_fallback,
            coalesced=trace.coalesced,
        )

    def execute(
        self, rect: RangeQuery, consistency: str
    ) -> Tuple[List[Point], QueryTrace]:
        service = self.service
        # repro: calls(SkylineService.query_many_traced)
        results, traces = service.query_many_traced(
            [rect], use_cache=consistency != "fresh"
        )
        return results[0], self._trace_from(traces[0])

    def execute_many(
        self, rects: List[RangeQuery], consistency: str
    ) -> List[Tuple[List[Point], QueryTrace]]:
        """One native ``query_many_traced`` call: worklist batching,
        duplicate coalescing and ``parallelism`` thread fan-out all
        apply.  The traced variant keeps concurrent batch executions from
        racing on ``service.last_traces``."""
        service = self.service
        # repro: calls(SkylineService.query_many_traced)
        results, traces = service.query_many_traced(
            rects, use_cache=consistency != "fresh"
        )
        return [
            (points, self._trace_from(trace))
            for points, trace in zip(results, traces)
        ]

    def apply(self, request: UpdateRequest) -> bool:
        if request.op == OP_INSERT:
            self.service.insert(request.point)
            return True
        return self.service.delete(request.point)

    # -- planning ------------------------------------------------------
    def plan(self, request: QueryRequest) -> QueryPlan:
        # Every shard (and every leveled component) is a static
        # RangeSkylineIndex over its resident points; the memtable merge
        # is in-memory and charges no transfers.  On the leveled path the
        # query additionally fans across every level structure, so the
        # plan carries one scope per level and reports the level layout
        # plus the amortized update bound instantiated with the actual
        # B, n, growth factor and memtable capacity.
        service = self.service
        config = service.config
        visited = self._visited(request.rect)
        scopes: List[Tuple[Optional[int], int]] = [
            (sid, len(service.shards[sid])) for sid in visited
        ]
        epsilon = config.epsilon
        if structure_for(request.variant) == "four-sided":
            epsilon = max(0.25, epsilon)  # the shard index floors it too
        level_scopes: List[Tuple[int, int]] = []
        level_layout: List[Tuple[int, int]] = []
        if service.leveled:
            # Towers are per-shard: the layout and the per-level search
            # terms are instantiated over the *visited* shards' towers
            # only -- exactly the structures this query's execution fans
            # across.  Level 0 counts the visited shards' memtable cuts
            # plus their sealed-but-not-yet-flushed frozen memtables;
            # level -1 aggregates inherited components through their
            # refs' adoption intervals.
            rect = request.rect
            layout: Dict[int, int] = {0: 0}
            for sid in visited:
                shard = service.shards[sid]
                tower = shard.tower
                assert tower is not None
                layout[0] += tower.pending_inserts() + sum(
                    len(c) for c in tower.frozen
                )
                for level in sorted(tower.levels):
                    comp = tower.levels[level]
                    # Mirror the execution-side prune: a level with no
                    # point in the rectangle's x-window answers for free,
                    # so it adds no search term to the predicted cost.
                    lo = comp.columns.bisect_x_left(rect.x_lo)
                    if lo < len(comp.points) and comp.points[lo].x <= rect.x_hi:
                        level_scopes.append((level, len(comp)))
                    layout[level] = layout.get(level, 0) + len(comp)
                for ref in tower.inherited:
                    comp = ref.comp
                    layout[-1] = layout.get(-1, 0) + len(ref)
                    # The prune bisect runs against the ref-narrowed
                    # window, like the execution side.
                    x_lo = max(rect.x_lo, ref.x_lo)
                    x_hi = rect.x_hi
                    if ref.x_hi != math.inf:
                        x_hi = min(
                            x_hi, math.nextafter(ref.x_hi, -math.inf)
                        )
                    lo = max(comp.columns.bisect_x_left(x_lo), ref.lo)
                    if lo < ref.hi and comp.points[lo].x <= x_hi:
                        level_scopes.append((-1, len(ref)))
            level_layout = [(level, layout[level]) for level in sorted(layout)]
            update_path = "leveled"
            update_bound = BOUND_UPDATE_LEVELED
            update_io = amortized_update_io(
                len(service),
                self.block_size(),
                config.level_growth,
                config.delta_threshold,
            )
        else:
            update_path = "threshold-compact"
            update_bound = BOUND_UPDATE_THRESHOLD
            update_io = len(service) / max(2, self.block_size())
        return build_plan(
            request,
            backend=self.name,
            block_size=self.block_size(),
            epsilon=epsilon,
            dynamic=False,
            scopes=scopes,
            shards_pruned=len(service.shards) - len(visited),
            level_scopes=level_scopes,
            update_path=update_path,
            level_layout=level_layout,
            update_bound=update_bound,
            update_io=update_io,
            topology_version=service.router.version,
        )

    # -- lifecycle -----------------------------------------------------
    def describe(self) -> Dict[str, object]:
        status = dict(self.service.describe())
        status["backend"] = self.name
        return status

    def drop_caches(self) -> None:
        self.service.drop_caches()

    def compact(self) -> None:
        self.service.compact()

    def drain(self, sid: Optional[int] = None) -> Dict[str, int]:
        return self.service.drain(sid)

    def split_shard(self, sid: int, cut: Optional[float] = None) -> Optional[float]:
        return self.service.split_shard(sid, cut)

    def merge_shards(self, sid: int) -> Optional[float]:
        return self.service.merge_shards(sid)

    def fold_shard(self, sid: int) -> int:
        return self.service.fold_shard(sid)

    def close(self) -> int:
        return self.service.close()
