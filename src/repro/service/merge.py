"""Cross-shard and delta skyline merging.

Correctness of the shard merge (top-open semantics generalise to every
variant): shards partition the x-axis, so for a candidate ``p`` from shard
``i`` every potential dominator with strictly larger x lives in shard
``i`` itself or in a shard to the right.  Within the shard, ``p`` already
survived the local skyline computation.  Across shards the x-coordinate of
any right-shard point exceeds ``p.x``, hence it dominates ``p`` exactly
when its y is ``>= p.y``.  The highest point of ``Q ∩ shard_j`` is never
locally dominated, so it appears in shard ``j``'s local result -- meaning
the running maximum y over the local results of shards ``> i`` equals the
maximum y over *all* their points inside ``Q``.  A candidate therefore
survives globally iff its y strictly exceeds that running maximum, which is
what :func:`merge_shard_skylines` checks in one right-to-left pass.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.point import Point
from repro.core.skyline import skyline


def merge_shard_skylines(per_shard: Sequence[Sequence[Point]]) -> List[Point]:
    """Merge per-shard skylines (in increasing-x shard order) into one.

    Each element of ``per_shard`` must be the skyline of one shard's points
    inside the query, sorted by increasing x.  One right-to-left pass keeps
    a candidate iff its y strictly exceeds the maximum y seen in shards to
    its right; the result is the global skyline, sorted by increasing x.
    """
    parts: List[List[Point]] = []
    best_y = float("-inf")
    for results in reversed(per_shard):
        if not results:
            continue
        surviving = [p for p in results if p.y > best_y]
        if surviving:
            parts.append(surviving)
        best_y = max(best_y, max(p.y for p in results))
    parts.reverse()
    return [p for part in parts for p in part]


def merge_component_skylines(sources: Sequence[Sequence[Point]]) -> List[Point]:
    """Merge candidate sets from overlapping components into one skyline.

    This is :func:`merge_shard_skylines` generalised from the x-disjoint
    shard partition to ``k + 1`` arbitrary sources -- the base-shard merge,
    one local answer per immutable level component, and the in-memory
    memtable candidates -- whose x-ranges overlap freely.  The same
    right-to-left running-max-y argument applies once the pass runs over
    the *union* in decreasing-x order: with globally distinct coordinates
    (the service's general-position invariant), a candidate survives in
    the union's skyline iff its y strictly exceeds the maximum y among all
    candidates of strictly larger x.  Sources need not be skylines
    themselves -- points dominated within their own source are dominated in
    the union too, so the sweep drops them the same way.  Every source
    must contain only points inside the query rectangle.  Returns the
    skyline sorted by increasing x.
    """
    candidates = [p for source in sources for p in source]
    candidates.sort(key=lambda p: (-p.x, -p.y))
    best_y = float("-inf")
    kept: List[Point] = []
    for point in candidates:
        if point.y > best_y:
            kept.append(point)
            best_y = point.y
    kept.reverse()
    return kept


def merge_with_delta(
    static_result: Sequence[Point], delta_candidates: Iterable[Point]
) -> List[Point]:
    """Fold pending (in-memory) inserts into a merged static skyline.

    ``static_result`` is the skyline of the static points inside the query;
    ``delta_candidates`` are the pending inserts inside the query.  The
    skyline of the union of the two small sets equals the skyline of the
    full point set inside the query: any static point missing from
    ``static_result`` is dominated by a member of it, and that member is in
    the union.
    """
    candidates = list(delta_candidates)
    if not candidates:
        return list(static_result)
    return skyline(list(static_result) + candidates)
