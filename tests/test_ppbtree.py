"""Tests for the multiversion (partially persistent) B-tree."""

import math
import random

import pytest

from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.ppbtree import MultiversionBTree, build_segment_ppbtree, sweep_events
from repro.ppbtree.nodes import MVEntry, MVNode
from repro.segments import compute_sigma


def make_storage(block_size=16):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=16))


def random_points(n, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(10 * n), n)
    ys = rng.sample(range(10 * n), n)
    return sorted(
        (Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))), key=lambda p: p.x
    )


def test_entry_and_node_liveness():
    entry = MVEntry(key=5, start=1, end=3, value="v")
    assert entry.alive_at(1) and entry.alive_at(2.9) and not entry.alive_at(3)
    assert not entry.alive_now
    node = MVNode(is_leaf=True, entries=[entry, MVEntry(1, 0, value="w")])
    assert node.live_count() == 1
    assert len(node.live_entries(2)) == 2
    assert node.record_size() == 2


def test_versions_must_be_non_decreasing():
    tree = MultiversionBTree(make_storage())
    tree.insert(1, "a", version=5)
    with pytest.raises(ValueError):
        tree.insert(2, "b", version=4)


def test_snapshot_queries_reflect_history():
    tree = MultiversionBTree(make_storage())
    tree.insert(10, "ten", version=0)
    tree.insert(20, "twenty", version=1)
    tree.delete(10, version=2)
    tree.insert(30, "thirty", version=3)
    assert [k for k, _ in tree.snapshot_items(0)] == [10]
    assert [k for k, _ in tree.snapshot_items(1)] == [10, 20]
    assert [k for k, _ in tree.snapshot_items(2)] == [20]
    assert [k for k, _ in tree.snapshot_items(3)] == [20, 30]
    assert tree.range_query(3, 25, 100) == ["thirty"]
    assert tree.range_query(-1, 0, 100) == []


def test_delete_of_absent_key_is_noop():
    tree = MultiversionBTree(make_storage())
    assert not tree.delete(5, version=0)
    tree.insert(5, "x", version=1)
    assert not tree.delete(6, version=2)
    assert tree.delete(5, version=3)


def test_interval_liveness_against_reference():
    """Random interval workload: every snapshot matches a brute-force replay."""
    rng = random.Random(7)
    tree = MultiversionBTree(make_storage(block_size=16))
    intervals = []
    for i in range(300):
        start = i
        end = i + rng.randint(1, 60)
        key = rng.random()
        intervals.append((key, start, end))
    events = []
    for key, start, end in intervals:
        events.append((start, 1, key))
        events.append((end, 0, key))
    events.sort()
    for time, kind, key in events:
        if kind == 1:
            tree.insert(key, key, version=time)
        else:
            tree.delete(key, version=time)
    for probe in [0.5, 10.5, 50.5, 150.5, 299.5, 330.5]:
        expected = sorted(k for k, s, e in intervals if s <= probe < e)
        got = sorted(k for k, _ in tree.snapshot_items(probe))
        assert got == expected


def test_scan_from_supports_early_termination():
    tree = MultiversionBTree(make_storage())
    for i in range(100):
        tree.insert(i, i, version=0)
    visited = []

    def visitor(key, value):
        visited.append(key)
        return len(visited) < 5

    tree.scan_from(0, 50, visitor)
    assert visited == [50, 51, 52, 53, 54]


def test_sweep_events_order():
    points = random_points(50, 1)
    segments = compute_sigma(points)
    events = sweep_events(segments)
    xs = [x for x, _, _ in events]
    assert xs == sorted(xs)
    bounded = [s for s in segments if not math.isinf(s.x_right)]
    assert len(events) == len(segments) + len(bounded)


def test_segment_ppbtree_snapshots_match_live_segments():
    points = random_points(250, 2)
    segments = compute_sigma(points)
    tree = build_segment_ppbtree(make_storage(), segments)
    rng = random.Random(3)
    for _ in range(25):
        x = rng.uniform(0, 2500)
        expected = sorted(s.y for s in segments if s.covers_x(x))
        got = sorted(k for k, _ in tree.snapshot_items(x))
        assert got == expected
    assert tree.block_count() > 0
    assert tree.version_copies > 0


def test_segment_ppbtree_space_is_linear():
    points = random_points(600, 4)
    segments = compute_sigma(points)
    storage = make_storage(block_size=32)
    tree = build_segment_ppbtree(storage, segments)
    blocks = tree.block_count()
    # O(n/B) blocks with a generous constant.
    assert blocks <= 12 * (len(points) / 32 + 1)
