"""Theorem 3: the I/O-efficient catenable priority queue with attrition.

Claims: FindMin, DeleteMin, InsertAndAttrite and CatenateAndAttrite all run
in O(1) worst-case I/Os and O(1/b) amortized I/Os, and the queue occupies
O((n - m)/B) blocks after n inserts/catenations and m DeleteMins.

The experiment runs mixed operation sequences for growing n and several
record sizes b, reporting worst-case and amortized I/Os per operation and
the final space against the (n - m)/b prediction.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import BenchmarkTable
from repro.bench.harness import make_storage
from repro.pqa import IOCPQA

BLOCK_SIZE = 64
SWEEP = [(2_000, 64), (8_000, 64), (8_000, 16), (8_000, 4)]


def run_sequence(n_ops: int, record_capacity: int) -> dict:
    storage = make_storage(block_size=BLOCK_SIZE, memory_blocks=64)
    rng = random.Random(n_ops * 31 + record_capacity)
    queue = IOCPQA.empty(storage, record_capacity)
    side_queues = []
    worst = 0
    deletes = 0
    inserts = 0
    before_all = storage.snapshot()
    for step in range(n_ops):
        op = rng.random()
        before = storage.snapshot()
        if op < 0.60:
            queue = queue.insert_and_attrite(rng.random(), step)
            inserts += 1
        elif op < 0.80:
            item, queue = queue.delete_min()
            if item is not None:
                deletes += 1
        elif op < 0.95 or not side_queues:
            side_queues.append(
                IOCPQA.build(
                    storage,
                    [(rng.random(), None) for _ in range(rng.randint(1, 2 * record_capacity))],
                    record_capacity,
                )
            )
            inserts += 1
        else:
            queue = queue.catenate_and_attrite(side_queues.pop())
            inserts += 1
        worst = max(worst, (storage.snapshot() - before).total)
    total_io = (storage.snapshot() - before_all).total
    return {
        "amortized": total_io / n_ops,
        "worst": worst,
        "space_blocks": len(queue.reachable_record_blocks()),
        "survivors": len(queue.keys()),
        "inserts": inserts,
        "deletes": deletes,
    }


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Theorem 3 -- I/O-CPQA operation costs and space")
    for n_ops, b in SWEEP:
        stats = run_sequence(n_ops, b)
        table.add(
            measured_io=stats["amortized"],
            predicted=1.0 / b,
            n_ops=n_ops,
            b=b,
            worst_case_io=stats["worst"],
            space_blocks=stats["space_blocks"],
            space_bound=max(1, stats["survivors"] // b + 1),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_cpqa_amortized_and_worst_case(benchmark, sweep_table, capsys):
    """Amortized cost scales like 1/b; worst case stays a small constant."""
    with capsys.disabled():
        sweep_table.show()
    for row in sweep_table.rows:
        assert row.params["worst_case_io"] <= 20  # O(1) worst case
        assert row.params["space_blocks"] <= 4 * row.params["space_bound"] + 4
    # Amortized cost per op must drop as the record size b grows.
    by_b = {row.params["b"]: row.measured_io for row in sweep_table.rows if row.params["n_ops"] == 8_000}
    assert by_b[64] <= by_b[4]

    storage = make_storage(block_size=BLOCK_SIZE)

    def mixed_ops():
        q = IOCPQA.empty(storage, 64)
        for i in range(500):
            q = q.insert_and_attrite(float(i % 97) + i * 1e-6, i)
        return q

    benchmark(mixed_ops)
