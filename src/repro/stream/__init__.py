"""repro.stream -- the streaming skyline tier.

The paper's attrition machinery (I/O-CPQA, Theorem 3) turned into three
product surfaces over append/update streams::

    from repro.stream import WindowedSkyline, SubscriptionManager, ResumableTopK

* :class:`WindowedSkyline` -- the skyline of the last ``W`` points
  (count- or x-span windows) of an append stream.  Attrition *is* the
  skyline maintenance: dominated points are expelled on arrival and never
  resurface, at Theorem 3's O(1/b) amortized transfers per point; a
  deque of sealed components makes window expiry free for whole chunks.

* :class:`SubscriptionManager` -- continuous queries.  Standing
  rectangles receive :class:`~repro.engine.SkylineDelta` notifications
  (points entering/leaving the skyline) instead of re-asking; the
  per-shard ``(uid, write_version)`` scopes the result cache already
  tracks let a pump skip every subscription whose shards were not
  written, at zero block transfers.

* :class:`ResumableTopK` -- incremental top-k iteration that survives
  interleaved updates by pinning a persistent I/O-CPQA snapshot; pages
  tile the pinned answer exactly, and each page's cursor doubles as an
  engine pagination token.

The serving tier exposes subscriptions over threads and asyncio -- see
:meth:`repro.serve.SkylineServer.subscribe`.  Every block transfer is
charged on an explicit meter with an exact partition invariant; the
streaming benchmark (``benchmarks/bench_streaming.py``) asserts the
ledger identities and the delta-vs-naive I/O win.
"""

from repro.stream.subscriptions import (
    Scope,
    ScopeVector,
    Subscription,
    SubscriptionManager,
    make_delta_report,
)
from repro.stream.topk import (
    STRUCTURE_ENGINE_SNAPSHOT,
    STRUCTURE_WINDOW_SNAPSHOT,
    ResumableTopK,
)
from repro.stream.window import (
    THEOREM_3_BOUND,
    WINDOW_COUNT,
    WINDOW_MODES,
    WINDOW_SPAN,
    WindowedSkyline,
)

__all__ = [
    "WindowedSkyline",
    "SubscriptionManager",
    "Subscription",
    "ResumableTopK",
    "Scope",
    "ScopeVector",
    "make_delta_report",
    "WINDOW_COUNT",
    "WINDOW_SPAN",
    "WINDOW_MODES",
    "THEOREM_3_BOUND",
    "STRUCTURE_WINDOW_SNAPSHOT",
    "STRUCTURE_ENGINE_SNAPSHOT",
]
