"""Staircase representation of a skyline.

A skyline "naturally forms an orthogonal staircase where increasing
x-coordinates imply decreasing y-coordinates" (Section 1).  The structures
in :mod:`repro.structures` manipulate these staircases constantly: finding
the point just right of another in the staircase, clipping a staircase to a
y-threshold, merging staircases under dominance, etc.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.point import Point
from repro.core.skyline import skyline


class Staircase:
    """An immutable skyline stored sorted by increasing x (decreasing y)."""

    def __init__(self, points: Iterable[Point], already_maximal: bool = False) -> None:
        pts = list(points)
        if not already_maximal:
            pts = skyline(pts)
        else:
            pts = sorted(pts, key=lambda p: p.x)
        self._points: List[Point] = pts
        self._xs: List[float] = [p.x for p in pts]
        self._validate()

    def _validate(self) -> None:
        for prev, curr in zip(self._points, self._points[1:]):
            if not (prev.x < curr.x and prev.y > curr.y):
                raise ValueError(
                    "staircase points must strictly increase in x and decrease in y"
                )

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __getitem__(self, index: int) -> Point:
        return self._points[index]

    def points(self) -> List[Point]:
        """The staircase points, sorted by increasing x."""
        return list(self._points)

    def is_empty(self) -> bool:
        return not self._points

    # ------------------------------------------------------------------
    # Queries used by the range-skyline structures
    # ------------------------------------------------------------------
    def highest(self) -> Optional[Point]:
        """The highest (leftmost) point of the staircase."""
        return self._points[0] if self._points else None

    def lowest(self) -> Optional[Point]:
        """The lowest (rightmost) point of the staircase."""
        return self._points[-1] if self._points else None

    def above(self, y_threshold: float) -> List[Point]:
        """All staircase points with y-coordinate strictly above ``y_threshold``."""
        return [p for p in self._points if p.y > y_threshold]

    def right_neighbour(self, point: Point) -> Optional[Point]:
        """The staircase point immediately to the right of ``point``.

        The query algorithm of Theorem 2 repeatedly needs "the point just to
        the right of ``highend(v)`` in the staircase of S".
        """
        index = bisect.bisect_right(self._xs, point.x)
        if index < len(self._points):
            return self._points[index]
        return None

    def dominator_exists(self, point: Point) -> bool:
        """Whether some staircase point dominates ``point``."""
        index = bisect.bisect_left(self._xs, point.x)
        return index < len(self._points) and self._points[index].y >= point.y

    def first_in_x_range(self, x_lo: float, x_hi: float) -> Optional[Point]:
        """The leftmost staircase point with x in ``[x_lo, x_hi]``."""
        index = bisect.bisect_left(self._xs, x_lo)
        if index < len(self._points) and self._points[index].x <= x_hi:
            return self._points[index]
        return None

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def merge(self, other: "Staircase") -> "Staircase":
        """The skyline of the union of the two staircases."""
        return Staircase(self.points() + other.points())

    def restrict(self, x_lo: float = float("-inf"), x_hi: float = float("inf"),
                 y_lo: float = float("-inf")) -> "Staircase":
        """Staircase points inside ``[x_lo, x_hi] x [y_lo, inf[``.

        Note this is the skyline restricted to the range, not the skyline of
        the restricted point set (the two differ for 4-sided queries).
        """
        selected = [
            p
            for p in self._points
            if x_lo <= p.x <= x_hi and p.y >= y_lo
        ]
        return Staircase(selected, already_maximal=True)

    @classmethod
    def of(cls, points: Sequence[Point]) -> "Staircase":
        """Build the staircase of an arbitrary point set."""
        return cls(points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Staircase({self._points!r})"
