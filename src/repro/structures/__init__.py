"""External-memory range-skyline structures (the paper's main results).

===========================  ==========================================
Structure                    Paper result
===========================  ==========================================
StaticTopOpenStructure       Theorem 1  (R^2, O(log_B n + k/B) query)
RayDragStructure             Lemma 4    (ray dragging in O(1) I/Os)
FewPointStructure            Lemma 5    (top-open on few points)
RankSpaceTopOpenStructure    Theorem 2  (rank space, O(1 + k/B) query)
GridTopOpenStructure         Corollary 1 ([U]^2, O(log log_B U + k/B))
DynamicTopOpenStructure      Theorem 4  (dynamic, I/O-CPQA based)
FourSidedStructure           Theorem 6  (4-sided, O((n/B)^eps + k/B))
===========================  ==========================================

All structures share the same conventions: points come from
:mod:`repro.core`, blocks are charged through a
:class:`~repro.em.StorageManager`, and queries return the maximal points of
``P`` intersected with the query rectangle, sorted by increasing x.
"""

from repro.structures.topopen_static import StaticTopOpenStructure
from repro.structures.raydrag import RayDragStructure
from repro.structures.fewpoint import FewPointStructure
from repro.structures.rankspace_topopen import RankSpaceTopOpenStructure
from repro.structures.grid_topopen import GridTopOpenStructure
from repro.structures.dynamic_topopen import DynamicTopOpenStructure
from repro.structures.foursided import FourSidedStructure

__all__ = [
    "StaticTopOpenStructure",
    "RayDragStructure",
    "FewPointStructure",
    "RankSpaceTopOpenStructure",
    "GridTopOpenStructure",
    "DynamicTopOpenStructure",
    "FourSidedStructure",
]
