"""Sequential record files on the simulated disk.

An :class:`EMFile` models the flat files the paper's algorithms stream over:
appending ``n`` records or scanning them costs ``ceil(n / B)`` I/Os, which is
exactly the ``O(n/B)`` term appearing in the SABE construction (Theorem 1)
and the naive baseline.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.em.disk import BlockId
from repro.em.storage import StorageManager


class EMFile:
    """An append-only sequence of records stored in full blocks."""

    def __init__(self, storage: StorageManager, name: str = "") -> None:
        self.storage = storage
        self.name = name
        self._block_ids: List[BlockId] = []
        self._tail: List[Any] = []  # in-memory partial block being filled
        self._length = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one record; a block write is charged when the block fills."""
        self._tail.append(record)
        self._length += 1
        if len(self._tail) >= self.storage.block_size:
            self._flush_tail()

    def extend(self, records: Iterable[Any]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def close(self) -> None:
        """Flush the partially filled last block, if any."""
        if self._tail:
            self._flush_tail()

    def _flush_tail(self) -> None:
        block_id = self.storage.create(list(self._tail))
        self.storage.write(block_id, list(self._tail))
        self._block_ids.append(block_id)
        self._tail = []

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Any]:
        """Iterate over all records; costs one read per stored block."""
        for block_id in self._block_ids:
            for record in self.storage.read(block_id):
                yield record
        # The tail has not been written out yet, so reading it is free.
        yield from list(self._tail)

    def read_block(self, index: int) -> Sequence[Any]:
        """Read the ``index``-th block of the file (one I/O)."""
        if index < 0 or index >= len(self._block_ids):
            raise IndexError(f"block index {index} out of range")
        return self.storage.read(self._block_ids[index])

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Any]:
        return self.scan()

    @property
    def block_count(self) -> int:
        """Number of full blocks written so far."""
        return len(self._block_ids)

    @classmethod
    def from_records(
        cls,
        storage: StorageManager,
        records: Iterable[Any],
        name: str = "",
        close: bool = True,
    ) -> "EMFile":
        """Materialise ``records`` into a new file (charges the writes)."""
        emfile = cls(storage, name=name)
        emfile.extend(records)
        if close:
            emfile.close()
        return emfile


class RecordWriter:
    """Buffered writer emitting records to a fresh :class:`EMFile`.

    A thin convenience wrapper used by the sweep-line algorithms that output
    segments in sorted order: ``with RecordWriter(storage) as out: out.emit(x)``.
    """

    def __init__(self, storage: StorageManager, name: str = "") -> None:
        self.file = EMFile(storage, name=name)

    def emit(self, record: Any) -> None:
        """Write one record."""
        self.file.append(record)

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.file.close()

    def result(self) -> EMFile:
        """The file written so far (call after closing)."""
        return self.file
