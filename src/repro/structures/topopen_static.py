"""The SABE static top-open structure (Section 2 / Theorem 1).

Composition:

* a range-max B-tree over x-coordinates supplies ``beta'``, the highest
  y-coordinate inside the query rectangle, in ``O(log_B n)`` I/Os;
* the segment set ``Sigma(P)`` (Section 2.2) stored in a partially
  persistent B-tree keyed on y answers the converted vertical-segment
  stabbing query in ``O(log_B n + k/B)`` I/Os.

Both components are built in ``O(n/B)`` I/Os from x-sorted input
(``build_sorted``), which is the "sort-aware build-efficient" property the
paper proves; ``construction_io`` exposes the measured figure so the SABE
benchmark can compare against the classic super-linear construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.btree.rangemax import RangeMaxBTree
from repro.core.columns import sort_points_by_x
from repro.core.point import Point
from repro.core.queries import RangeQuery, TopOpenQuery
from repro.em.storage import StorageManager
from repro.ppbtree.build import build_segment_ppbtree
from repro.ppbtree.ppbtree import MultiversionBTree
from repro.segments.reduction import compute_sigma
from repro.segments.segment import HorizontalSegment


class StaticTopOpenStructure:
    """Linear-space static structure for top-open range skyline queries."""

    def __init__(self, storage: StorageManager, points: Iterable[Point]) -> None:
        ordered = sorted(points, key=lambda p: p.x)
        self._init_from_sorted(storage, ordered)

    @classmethod
    def build_sorted(
        cls, storage: StorageManager, points_sorted_by_x: Sequence[Point]
    ) -> "StaticTopOpenStructure":
        """SABE construction from x-sorted points (skips the sort)."""
        instance = cls.__new__(cls)
        instance._init_from_sorted(storage, list(points_sorted_by_x))
        return instance

    def _init_from_sorted(
        self, storage: StorageManager, ordered: List[Point]
    ) -> None:
        self.storage = storage
        self.points = ordered
        before = storage.snapshot()
        self.range_max = RangeMaxBTree.build_sorted(storage, ordered)
        self.segments: List[HorizontalSegment] = compute_sigma(ordered)
        self.ppb_tree: MultiversionBTree = build_segment_ppbtree(
            storage, self.segments
        )
        self.construction_io = (storage.snapshot() - before).total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of ``P`` inside a top-open rectangle, sorted by x."""
        if not query.is_top_open:
            raise ValueError("StaticTopOpenStructure answers top-open queries only")
        return self.query_top_open(query.x_lo, query.x_hi, query.y_lo)

    def query_top_open(self, x_lo: float, x_hi: float, y_lo: float) -> List[Point]:
        """Answer ``[x_lo, x_hi] x [y_lo, inf[`` per the reduction of Section 2.1."""
        if not self.points:
            return []
        beta_prime = self.range_max.max_y_in(x_lo, x_hi)
        if beta_prime is None or beta_prime < y_lo:
            return []
        # Report the segments of Sigma(P) stabbed by the vertical segment
        # x_hi x [y_lo, beta'].  Such segments are alive at version x_hi.
        segments: List[HorizontalSegment] = self.ppb_tree.range_query(
            x_hi, y_lo, beta_prime
        )
        result = [seg.source for seg in segments if seg.source is not None]
        # Candidate-set assembly is columnar: argsort one x array instead
        # of a lambda-keyed object sort (pure in-memory work -- the
        # transfers were already charged by the PPB-tree traversal).
        return sort_points_by_x(result)

    def query_contour(self, x_hi: float) -> List[Point]:
        """Contour query (Figure 2g): the skyline of points left of ``x_hi``."""
        return self.query_top_open(float("-inf"), x_hi, float("-inf"))

    def query_dominance(self, x_lo: float, y_lo: float) -> List[Point]:
        """Dominance query (Figure 2e): skyline of the upper-right quadrant."""
        return self.query_top_open(x_lo, float("inf"), y_lo)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def block_count(self) -> int:
        """Blocks used by the PPB-tree component (dominates the space)."""
        return self.ppb_tree.block_count()

    def __len__(self) -> int:
        return len(self.points)


def build_top_open(
    storage: StorageManager, points: Iterable[Point]
) -> StaticTopOpenStructure:
    """Convenience constructor mirroring the other structures' helpers."""
    return StaticTopOpenStructure(storage, points)


def top_open_query_bound(n: int, k: int, block_size: int) -> float:
    """The theoretical ``O(log_B n + k/B)`` I/O bound (for benchmark tables)."""
    import math

    if n <= 1:
        return 1.0
    return math.log(max(2, n), max(2, block_size)) + k / block_size
