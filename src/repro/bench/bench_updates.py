"""Update-path benchmarks: leveled incremental merges vs threshold compact.

The sweep drives the *same* mixed read/write workload through the sharded
service on both update paths and measures, per cell:

* **mean update I/O** -- the average block transfers per insert/delete,
  counting both the update's own attributed charge and the incremental
  merge debt it paid (``maintenance_blocks``), so the leveled path's
  amortisation cannot hide work;
* **max single-op I/O spike** -- the worst transfer count any single
  update charged.  On the legacy ``threshold-compact`` path this is the
  ``O(n/B)`` stop-the-world rebuild the update tripping the threshold
  pays; on the leveled path it is bounded by
  ``ServiceConfig.merge_step_blocks`` -- the headline claim of the
  leveled refactor is this spike dropping by >= 10x at n = 50k;
* **mean query I/O** -- cache-bypassing probes interleaved with the
  updates; the leveled path fans across the level structures, and the
  acceptance bound is staying within 1.5x of the legacy path's mean;
* the **ledger partition** -- ``attributed + maintenance == total -
  build`` is asserted on every cell before its row is recorded.

``benchmarks/bench_updates.py`` drives the sweep (pytest or ``--quick``
CLI) and persists the table to ``BENCH_updates.json`` via
:func:`repro.bench.reporting.write_json_report`.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.point import Point
from repro.core.queries import FourSidedQuery, RangeQuery, TopOpenQuery
from repro.engine import QueryRequest, SkylineEngine, amortized_update_io
from repro.service import ServiceConfig
from repro.workloads import uniform_points

Summary = Dict[str, Dict[str, float]]

UPDATE_PATHS = ("threshold-compact", "leveled")


def _fresh_updates(count: int, seed: int) -> List[Point]:
    rng = random.Random(seed)
    xs = rng.sample(range(2_000_000, 2_000_000 + 20 * count), count)
    ys = rng.sample(range(2_000_000, 2_000_000 + 20 * count), count)
    return [
        Point(float(x), float(y), 1_000_000 + i)
        for i, (x, y) in enumerate(zip(xs, ys))
    ]


def _probe_queries(universe: int, count: int, seed: int) -> List[RangeQuery]:
    """A fixed mix of top-open and 4-sided probes over the base universe."""
    rng = random.Random(seed)
    probes: List[RangeQuery] = []
    for _ in range(count):
        a, b = sorted(rng.uniform(0, universe) for _ in range(2))
        c = rng.uniform(0, universe)
        probes.append(TopOpenQuery(a, b, c))
        lo, hi = sorted(rng.uniform(0, universe) for _ in range(2))
        probes.append(FourSidedQuery(a, b, lo, hi))
    return probes


def run_update_path_sweep(
    ns: Sequence[int] = (10_000, 50_000),
    updates: int = 256,
    query_every: int = 8,
    shard_count: int = 8,
    block_size: int = 64,
    memory_blocks: int = 32,
    delta_threshold: int = 128,
    merge_step_blocks: int = 8,
    universe: int = 1_000_000,
    seed: int = 0,
) -> Tuple[BenchmarkTable, Summary]:
    """The leveled-vs-threshold-compact sweep described in the module doc.

    Every cell runs the identical op sequence: mostly inserts with one
    delete per eight updates, a pair of cache-bypassing probes every
    ``query_every`` updates, all through the engine so each op's exact
    ledger delta (attributed plus maintenance) is observable.  ``updates``
    must exceed ``delta_threshold`` so the legacy path actually pays at
    least one stop-the-world compaction inside the measured window.
    """
    if updates <= delta_threshold:
        raise ValueError("updates must exceed delta_threshold so the legacy "
                         "path compacts inside the measured window")
    table = BenchmarkTable(
        f"Update-path comparison -- {updates} mixed updates, "
        f"B={block_size}, memtable={delta_threshold}, "
        f"step={merge_step_blocks}"
    )
    summary: Summary = {}
    for n in ns:
        base = uniform_points(n, universe=universe, seed=seed)
        payloads = _fresh_updates(updates, seed=seed + 1)
        probes = _probe_queries(universe, max(2, updates // query_every), seed + 2)
        for update_path in UPDATE_PATHS:
            engine = SkylineEngine.sharded(
                base,
                ServiceConfig(
                    shard_count=shard_count,
                    block_size=block_size,
                    memory_blocks=memory_blocks,
                    delta_threshold=delta_threshold,
                    merge_step_blocks=merge_step_blocks,
                    update_path=update_path,
                ),
            )
            service = engine.backend.service
            rng = random.Random(seed + 3)
            live = list(base)
            update_costs: List[int] = []
            query_costs: List[int] = []
            probe_iter = iter(probes)
            started = time.perf_counter()
            for i, point in enumerate(payloads):
                if i % 8 == 7 and live:
                    victim = live.pop(rng.randrange(len(live)))
                    result = engine.delete(victim)
                    assert result.applied
                else:
                    result = engine.insert(point)
                    live.append(point)
                update_costs.append(
                    result.report.blocks + result.report.maintenance_blocks
                )
                if i % query_every == query_every - 1:
                    try:
                        probe = next(probe_iter)
                    except StopIteration:
                        probe_iter = iter(probes)
                        probe = next(probe_iter)
                    query = engine.query(
                        QueryRequest(probe, consistency="fresh")
                    )
                    query_costs.append(query.report.blocks)
            elapsed = time.perf_counter() - started
            # The partition invariant must hold on every cell.
            assert (
                engine.attributed_io() + engine.maintenance_io()
                == engine.io_total() - engine.build_io
            ), f"ledger partition broke: n={n} path={update_path}"
            plan = engine.explain(RangeQuery())
            mean_update = sum(update_costs) / len(update_costs)
            max_spike = max(update_costs)
            mean_query = sum(query_costs) / len(query_costs)
            cell = {
                "mean_update_io": round(mean_update, 3),
                "max_update_spike": max_spike,
                "mean_query_io": round(mean_query, 3),
                "compactions": service.compactions,
                "merges_completed": service.merges_completed
                if service.leveled
                else 0,
                "maintenance_io": engine.maintenance_io(),
                "levels": max(
                    (len(tower.levels) for tower in service.towers()),
                    default=0,
                ),
                "amortized_bound": round(
                    amortized_update_io(
                        len(service),
                        block_size,
                        service.config.level_growth,
                        delta_threshold,
                    ),
                    3,
                ),
                "ledger_ok": 1,
            }
            summary[f"n={n}/{update_path}"] = cell
            table.add(
                measured_io=max_spike,
                seconds=elapsed,
                n=n,
                update_path=update_path,
                mean_update_io=cell["mean_update_io"],
                mean_query_io=cell["mean_query_io"],
                compactions=service.compactions,
                merges=cell["merges_completed"],
                levels=cell["levels"],
                maintenance_io=cell["maintenance_io"],
                update_bound=plan.update_bound,
            )
    return table, summary


def check(summary: Summary, spike_factor: float = 10.0) -> None:
    """The acceptance assertions both pytest and the CLI run enforce."""
    ns = sorted({int(key.split("/")[0].split("=")[1]) for key in summary})
    for n in ns:
        legacy = summary[f"n={n}/threshold-compact"]
        leveled = summary[f"n={n}/leveled"]
        assert legacy["compactions"] >= 1, (
            f"legacy path never compacted at n={n}; the spike comparison "
            "would be vacuous"
        )
        assert leveled["compactions"] == 0
        assert leveled["merges_completed"] >= 1
        assert leveled["ledger_ok"] and legacy["ledger_ok"]
        spike_ratio = legacy["max_update_spike"] / max(
            1, leveled["max_update_spike"]
        )
        assert spike_ratio >= spike_factor, (
            f"n={n}: leveled max spike {leveled['max_update_spike']} is not "
            f">= {spike_factor}x below legacy {legacy['max_update_spike']}"
        )
        query_ratio = leveled["mean_query_io"] / max(
            1e-9, legacy["mean_query_io"]
        )
        assert query_ratio <= 1.5, (
            f"n={n}: leveled mean query I/O {leveled['mean_query_io']} "
            f"exceeds 1.5x legacy {legacy['mean_query_io']}"
        )
