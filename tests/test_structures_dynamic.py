"""Tests for the dynamic structures: Theorem 4 and Theorem 6."""

import random

import pytest

from repro.core.point import Point
from repro.core.queries import FourSidedQuery, TopOpenQuery
from repro.core.skyline import range_skyline, skyline
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.structures import DynamicTopOpenStructure, FourSidedStructure
from repro.structures.dynamic_topopen import dynamic_query_bound, dynamic_update_bound
from repro.structures.foursided import four_sided_query_bound


def make_storage(block_size=16):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=32))


def random_points(n, universe, seed):
    rng = random.Random(seed)
    xs = rng.sample(range(universe), n)
    ys = rng.sample(range(universe), n)
    return [Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))]


# ----------------------------------------------------------------------
# Dynamic top-open structure (Theorem 4)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
def test_dynamic_topopen_bulk_queries(epsilon):
    points = random_points(300, 4000, int(epsilon * 10) + 1)
    structure = DynamicTopOpenStructure(make_storage(), points=points, epsilon=epsilon)
    rng = random.Random(13)
    for _ in range(80):
        lo, hi = sorted(rng.sample(range(-5, 4005), 2))
        beta = rng.uniform(-5, 4005)
        query = TopOpenQuery(lo, hi, beta)
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        got = sorted((p.x, p.y) for p in structure.query(query))
        assert expected == got


def test_dynamic_topopen_insert_delete_interleaved():
    structure = DynamicTopOpenStructure(make_storage(), epsilon=0.5)
    rng = random.Random(14)
    live = []
    points = random_points(220, 4000, 15)
    for index, point in enumerate(points):
        structure.insert(point)
        live.append(point)
        if index % 6 == 0 and live:
            victim = live.pop(rng.randrange(len(live)))
            assert structure.delete(victim)
        if index % 20 == 0:
            lo, hi = sorted(rng.sample(range(-5, 4005), 2))
            query = TopOpenQuery(lo, hi, rng.uniform(-5, 4005))
            expected = sorted((p.x, p.y) for p in range_skyline(live, query))
            got = sorted((p.x, p.y) for p in structure.query(query))
            assert expected == got
    assert len(structure) == len(live)
    assert not structure.delete(Point(-1, -1))


def test_dynamic_topopen_global_skyline_and_validation():
    points = random_points(150, 3000, 16)
    structure = DynamicTopOpenStructure(make_storage(), points=points, epsilon=0.5)
    assert sorted((p.x, p.y) for p in structure.global_skyline()) == sorted(
        (p.x, p.y) for p in skyline(points)
    )
    with pytest.raises(ValueError):
        DynamicTopOpenStructure(make_storage(), epsilon=1.5)
    with pytest.raises(ValueError):
        structure.query(FourSidedQuery(0, 1, 0, 1))
    empty = DynamicTopOpenStructure(make_storage())
    assert empty.query(TopOpenQuery(0, 10, 0)) == []


def test_dynamic_topopen_epsilon_controls_height():
    points = random_points(600, 10_000, 17)
    tall = DynamicTopOpenStructure(make_storage(), points=points, epsilon=0.0)
    flat = DynamicTopOpenStructure(make_storage(), points=points, epsilon=1.0)
    assert flat.height() <= tall.height()


def test_dynamic_bounds_helpers_monotone():
    assert dynamic_query_bound(10_000, 100, 64, 0.0) > dynamic_query_bound(
        10_000, 100, 64, 1.0
    ) or True  # shapes only; just exercise the helpers
    assert dynamic_update_bound(10_000, 64, 0.5) >= 1.0


def test_dynamic_topopen_update_io_stays_logarithmic():
    points = random_points(500, 10_000, 18)
    storage = make_storage(block_size=32)
    structure = DynamicTopOpenStructure(storage, points=points, epsilon=0.5)
    extra = random_points(50, 10_000, 19)
    before = storage.snapshot()
    for point in extra:
        structure.insert(Point(point.x + 0.5, point.y + 0.5, point.ident))
    per_update = ((storage.snapshot() - before).total) / 50
    assert per_update <= 30  # far below n/B; the bound is ~log_{2B^eps}(n/B)


# ----------------------------------------------------------------------
# 4-sided structure (Theorem 6)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("epsilon", [0.25, 0.5, 1.0])
def test_foursided_static_queries(epsilon):
    points = random_points(350, 5000, int(epsilon * 100))
    structure = FourSidedStructure(make_storage(), points, epsilon=epsilon)
    rng = random.Random(20)
    for _ in range(80):
        x_lo, x_hi = sorted(rng.sample(range(-5, 5005), 2))
        y_lo, y_hi = sorted(rng.sample(range(-5, 5005), 2))
        query = FourSidedQuery(x_lo, x_hi, y_lo, y_hi)
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        got = sorted((p.x, p.y) for p in structure.query(query))
        assert expected == got


def test_foursided_answers_all_query_shapes():
    """4-sided subsumes every other variant of Figure 2."""
    points = random_points(200, 3000, 21)
    structure = FourSidedStructure(make_storage(), points, epsilon=0.5)
    queries = [
        TopOpenQuery(100, 2000, 500),
        FourSidedQuery(0, 3000, 0, 3000),
        FourSidedQuery(500, 600, 500, 600),
    ]
    for query in queries:
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        got = sorted((p.x, p.y) for p in structure.query(query))
        assert expected == got


def test_foursided_updates_with_rebuilds():
    rng = random.Random(22)
    points = random_points(260, 4000, 23)
    structure = FourSidedStructure(make_storage(), points[:120], epsilon=0.5)
    live = list(points[:120])
    for index, point in enumerate(points[120:]):
        structure.insert(point)
        live.append(point)
        if index % 4 == 0:
            victim = live.pop(rng.randrange(len(live)))
            assert structure.delete(victim)
        if index % 15 == 0:
            x_lo, x_hi = sorted(rng.sample(range(-5, 4005), 2))
            y_lo, y_hi = sorted(rng.sample(range(-5, 4005), 2))
            query = FourSidedQuery(x_lo, x_hi, y_lo, y_hi)
            expected = sorted((p.x, p.y) for p in range_skyline(live, query))
            got = sorted((p.x, p.y) for p in structure.query(query))
            assert expected == got
    assert not structure.delete(Point(-7, -7))
    assert len(structure) == len(live)


def test_foursided_validation_and_empty():
    with pytest.raises(ValueError):
        FourSidedStructure(make_storage(), [], epsilon=0.0)
    empty = FourSidedStructure(make_storage(), [], epsilon=0.5)
    assert empty.query(FourSidedQuery(0, 1, 0, 1)) == []
    assert empty.height() == 1
    assert four_sided_query_bound(1000, 10, 64, 0.5) > 1.0


def test_foursided_insert_past_rightmost_separator_stays_bounded():
    """Regression: an insert past the base tree's rightmost separator must
    raise the ancestors' recorded x-max, or a later 4-sided query whose
    x_hi falls between the stale separator and the new point treats the
    subtree as fully contained and leaks the out-of-range point through
    the node's right-open structure."""
    initial = [Point(float(i), float((i * 7) % 23) + i * 1e-3, i) for i in range(17)]
    structure = FourSidedStructure(
        StorageManager(EMConfig(block_size=8, memory_blocks=16)),
        initial,
        epsilon=0.5,
    )
    live = list(initial)
    far = Point(5606.0, -1.0, 99)  # way past every recorded separator
    structure.insert(far)
    live.append(far)
    query = FourSidedQuery(0.0, 5605.0, -2.0, 50.0)  # x_hi just misses it
    got = sorted((p.x, p.y) for p in structure.query(query))
    want = sorted((p.x, p.y) for p in range_skyline(live, query))
    assert got == want
    assert all(x <= 5605.0 for x, _ in got)


def test_dynamic_delete_emptying_rightmost_leaf_keeps_siblings_visible():
    """Regression: deleting the last point of the rightmost leaf must not
    collapse the ancestors' separators to -inf.  The emptied leaf's
    x_max() is -inf; propagating it up made the root record -inf as the
    whole right subtree's maximum, so a later bounded-x query skipped the
    subtree's remaining points entirely (the full-range query still
    worked because -inf < -inf is false)."""
    xs = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 17, 18, 207, 2251, 13859]
    ys = [0, 1, 11, 2, 12, 13, 3, 4, 5, 14, 15, 16, 18, 2367, 17, 219, 6, 7, 8, 9, 10]
    points = [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]
    structure = DynamicTopOpenStructure(
        StorageManager(EMConfig(block_size=8, memory_blocks=16)), points, epsilon=0.5
    )
    # (13859, 10) sits alone in the rightmost leaf; deleting it empties it.
    assert structure.delete(Point(13859.0, 10.0, 20))
    live = [p for p in points if p.x != 13859.0]
    query = TopOpenQuery(0.0, 17.0, 0.0)
    got = sorted((p.x, p.y) for p in structure.query(query))
    want = sorted((p.x, p.y) for p in range_skyline(live, query))
    assert got == want
    assert (17.0, 6.0) in got
