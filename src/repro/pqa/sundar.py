"""The classic internal-memory priority queue with attrition (Sundar 1989).

Used as a reference oracle in tests and as the "previous work" baseline in
the PQA benchmarks.  Because the surviving content of a PQA is always a
strictly increasing sequence in insertion order, a plain Python list with
binary-search truncation implements the semantics exactly; Sundar's paper
is about achieving O(1) worst-case time, which is irrelevant for an oracle.
"""

from __future__ import annotations

import bisect
from typing import Any, Generic, Iterable, List, Optional, Tuple, TypeVar

K = TypeVar("K")


class SundarPQA(Generic[K]):
    """An internal-memory PQA over totally ordered keys with payloads."""

    def __init__(self, items: Optional[Iterable[Tuple[K, Any]]] = None) -> None:
        # Keys strictly increase from front (minimum) to back.
        self._keys: List[K] = []
        self._payloads: List[Any] = []
        if items is not None:
            for key, payload in items:
                self.insert_and_attrite(key, payload)

    # ------------------------------------------------------------------
    # Core PQA operations
    # ------------------------------------------------------------------
    def find_min(self) -> Optional[Tuple[K, Any]]:
        """The minimum element, or ``None`` when the queue is empty."""
        if not self._keys:
            return None
        return self._keys[0], self._payloads[0]

    def delete_min(self) -> Optional[Tuple[K, Any]]:
        """Remove and return the minimum element (``None`` when empty)."""
        if not self._keys:
            return None
        key = self._keys.pop(0)
        payload = self._payloads.pop(0)
        return key, payload

    def insert_and_attrite(self, key: K, payload: Any = None) -> None:
        """Insert ``key`` and attrite every element >= ``key``."""
        cut = bisect.bisect_left(self._keys, key)
        del self._keys[cut:]
        del self._payloads[cut:]
        self._keys.append(key)
        self._payloads.append(payload)

    def catenate_and_attrite(self, other: "SundarPQA[K]") -> "SundarPQA[K]":
        """Append ``other`` to this queue, attriting elements >= min(other).

        Returns ``self`` (both inputs are consumed, mirroring the paper's
        destructive ephemeral semantics).
        """
        other_min = other.find_min()
        if other_min is not None:
            cut = bisect.bisect_left(self._keys, other_min[0])
            del self._keys[cut:]
            del self._payloads[cut:]
        self._keys.extend(other._keys)
        self._payloads.extend(other._payloads)
        other._keys = []
        other._payloads = []
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def is_empty(self) -> bool:
        return not self._keys

    def keys(self) -> List[K]:
        """Surviving keys in queue (= increasing) order."""
        return list(self._keys)

    def items(self) -> List[Tuple[K, Any]]:
        """Surviving (key, payload) pairs in queue order."""
        return list(zip(self._keys, self._payloads))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SundarPQA({self._keys!r})"
