"""Maintaining a range skyline under a stream of insertions and deletions.

Scenario: a monitoring system tracks sensors by (timestamp, reading).  New
measurements arrive continuously, old ones expire, and dashboards repeatedly
ask for the maxima ("most recent AND highest reading") within a sliding
time window and above a reading threshold -- a top-open range skyline query.

The dynamic structure of Theorem 4 supports exactly this: logarithmic-I/O
updates and queries whose cost is dominated by the output size.  The example
replays a stream, issues periodic window queries, and prints the amortized
I/O cost of both.
"""

from __future__ import annotations

import random

from repro import Point, TopOpenQuery
from repro.em import EMConfig, StorageManager
from repro.structures import DynamicTopOpenStructure


def main() -> None:
    rng = random.Random(3)
    storage = StorageManager(EMConfig(block_size=64, memory_blocks=64))
    structure = DynamicTopOpenStructure(storage, epsilon=0.5)

    window = 2_000           # keep the last 2 000 measurements
    horizon = 10_000         # total stream length
    live: list = []
    update_io = 0
    query_io = 0
    query_count = 0

    for step in range(horizon):
        timestamp = float(step)
        reading = rng.uniform(0, 1000) + step * 1e-7
        point = Point(timestamp, reading, ident=step)

        before = storage.snapshot()
        structure.insert(point)
        live.append(point)
        if len(live) > window:
            expired = live.pop(0)
            structure.delete(expired)
        update_io += (storage.snapshot() - before).total

        if step % 1_000 == 999:
            # Dashboard query: maxima of the last 1 500 ticks with reading >= 400.
            query = TopOpenQuery(timestamp - 1_500, timestamp, 400.0)
            before = storage.snapshot()
            maxima = structure.query(query)
            query_io += (storage.snapshot() - before).total
            query_count += 1
            best = max(maxima, key=lambda p: p.y)
            print(
                f"t={step:>5}: {len(maxima):>3} maxima in window, "
                f"best reading {best.y:7.2f} at t={best.x:.0f}"
            )

    updates = horizon + max(0, horizon - window)
    print()
    print(f"stream length                 : {horizon}")
    print(f"amortized I/Os per update     : {update_io / updates:.2f}")
    print(f"amortized I/Os per query      : {query_io / max(1, query_count):.2f}")
    print(f"structure height (base tree)  : {structure.height()}")
    print(f"points currently indexed      : {len(structure)}")


if __name__ == "__main__":
    main()
