"""Unit tests for the buffer pool (LRU, pinning, write-back)."""

import pytest

from repro.em.cache import BufferPool, BufferPoolError
from repro.em.config import EMConfig
from repro.em.disk import DiskModel


def make_pool(frames=2, block_size=8):
    disk = DiskModel(EMConfig(block_size=block_size, memory_blocks=4))
    return disk, BufferPool(disk, capacity_blocks=frames)


def test_cache_hit_costs_nothing():
    disk, pool = make_pool()
    block = disk.write_new([1])
    pool.get(block)
    reads_before = disk.stats.reads
    pool.get(block)
    assert disk.stats.reads == reads_before
    assert pool.hits == 1 and pool.misses == 1
    assert 0 < pool.hit_rate < 1


def test_lru_eviction_writes_back_dirty_frames():
    disk, pool = make_pool(frames=2)
    a = disk.allocate()
    b = disk.allocate()
    c = disk.allocate()
    pool.put(a, ["a"])
    pool.put(b, ["b"])
    writes_before = disk.stats.writes
    pool.put(c, ["c"])  # evicts a (dirty) -> one write-back
    assert disk.stats.writes == writes_before + 1
    assert disk.peek(a) == ["a"]


def test_pinned_blocks_are_not_evicted():
    disk, pool = make_pool(frames=2)
    a = disk.write_new(["a"])
    b = disk.allocate()
    c = disk.allocate()
    pool.pin(a)
    pool.put(b, ["b"])
    pool.put(c, ["c"])
    assert pool.contains(a)
    assert a in pool.pinned_blocks()
    pool.unpin(a)
    assert a not in pool.pinned_blocks()


def test_unpin_without_pin_raises():
    disk, pool = make_pool()
    a = disk.write_new(["a"])
    with pytest.raises(BufferPoolError):
        pool.unpin(a)


def test_put_unallocated_block_raises():
    _, pool = make_pool()
    with pytest.raises(BufferPoolError):
        pool.put(999, ["x"])


def test_flush_and_evict_all():
    disk, pool = make_pool(frames=4)
    a = pool.create(["a"])
    b = pool.create(["b"])
    pool.flush(a)
    assert disk.peek(a) == ["a"]
    pool.evict_all()
    assert disk.peek(b) == ["b"]
    assert pool.resident_count() == 0


def test_write_through_writes_immediately():
    disk, pool = make_pool()
    a = disk.allocate()
    pool.put(a, ["x"], write_through=True)
    assert disk.peek(a) == ["x"]


def test_invalidate_drops_frame_without_writeback():
    disk, pool = make_pool()
    a = disk.write_new(["old"])
    pool.put(a, ["new"])
    pool.invalidate(a)
    assert disk.peek(a) == ["old"]
