"""Ablation: the effect of the machine parameters B, M and the eps knob.

Not a table of the paper, but the design choices DESIGN.md calls out:

* larger blocks reduce the output term k/B of every structure;
* a larger buffer pool only helps constructions (SABE relies on the hot
  path), not cold-cache queries;
* eps trades base-tree height against per-output cost in the dynamic
  structure (Theorem 4).
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.structures import DynamicTopOpenStructure, StaticTopOpenStructure
from repro.workloads import top_open_queries, uniform_points

N = 2048
QUERIES = 8


def run_block_size_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Ablation -- block size B (static top-open)")
    points = sorted(uniform_points(N, seed=N), key=lambda p: p.x)
    queries = top_open_queries(points, QUERIES, selectivity=0.4, seed=N)
    for block_size in [16, 32, 64, 128]:
        storage = make_storage(block_size=block_size)
        structure = StaticTopOpenStructure.build_sorted(storage, points)
        io_per_query, avg_k = measure_queries(storage, structure, queries)
        table.add(
            measured_io=io_per_query,
            predicted=None,
            B=block_size,
            avg_k=round(avg_k, 1),
            build_io=structure.construction_io,
        )
    return table


def run_epsilon_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Ablation -- eps knob of the dynamic structure")
    points = uniform_points(N, seed=N + 1)
    queries = top_open_queries(points, QUERIES, selectivity=0.4, seed=N + 1)
    for epsilon in [0.0, 0.25, 0.5, 0.75, 1.0]:
        storage = make_storage(block_size=64)
        structure = DynamicTopOpenStructure(storage, points=points, epsilon=epsilon)
        io_per_query, avg_k = measure_queries(storage, structure, queries)
        table.add(
            measured_io=io_per_query,
            predicted=None,
            eps=epsilon,
            height=structure.height(),
            avg_k=round(avg_k, 1),
        )
    return table


@pytest.fixture(scope="module")
def block_table() -> BenchmarkTable:
    return run_block_size_sweep()


@pytest.fixture(scope="module")
def eps_table() -> BenchmarkTable:
    return run_epsilon_sweep()


def test_block_size_ablation(benchmark, block_table, capsys):
    """Larger blocks reduce per-query I/Os on output-heavy queries."""
    with capsys.disabled():
        block_table.show()
    measured = block_table.measured_values()
    assert measured[-1] <= measured[0]

    points = sorted(uniform_points(512, seed=4), key=lambda p: p.x)
    benchmark(lambda: StaticTopOpenStructure.build_sorted(make_storage(64), points))


def test_epsilon_ablation(eps_table, capsys):
    """Raising eps lowers (or keeps) the base-tree height."""
    with capsys.disabled():
        eps_table.show()
    heights = [row.params["height"] for row in eps_table.rows]
    assert heights[-1] <= heights[0]
