"""Streaming sensor maintenance on the attrition queue tier.

Scenario: a monitoring system tracks sensors by (timestamp, reading).
New measurements arrive continuously, old ones expire, and dashboards
want two live views:

* the **window skyline** -- the maxima ("most recent AND highest
  reading") of the last 2 000 measurements.  ``repro.stream`` maintains
  it directly on the I/O-CPQA: appending a reading *attrites* every
  older dominated one (Theorem 3: O(1/b) amortized block transfers per
  point), so there is no periodic re-query at all;

* a **threshold subscription** -- readings above 400 inside one watched
  time era, entering or leaving the skyline of a sharded engine that
  ingests every 16th measurement.  The subscription is pumped after each
  ingest, and the per-shard ``(uid, write_version)`` scopes skip the
  recompute whenever the written shard does not overlap the watched
  rectangle -- visible below once the stream moves past the era.

Compare the amortized per-update I/O printed at the end with the
logarithmic dynamic-structure replay this example used before the
streaming tier existed (that baseline is now measured side by side in
``benchmarks/bench_streaming.py``).
"""

from __future__ import annotations

import random

from repro import Point, RangeQuery
from repro.em import EMConfig
from repro.engine import SkylineEngine, SubscribeRequest, UpdateRequest
from repro.stream import SubscriptionManager, WindowedSkyline


def main() -> None:
    rng = random.Random(3)

    window = 2_000           # keep the last 2 000 measurements
    horizon = 6_000          # total stream length
    ingest_every = 16        # engine ingest cadence for the subscription

    skyline = WindowedSkyline(
        window, "count", em_config=EMConfig(block_size=64, memory_blocks=64)
    )

    # The subscription side: a sharded engine seeded with sparse
    # historical readings (so the shards partition the time axis) and
    # fed a sample of the live stream.  The dashboard watches one time
    # era with a reading threshold; once the stream moves past that era,
    # every ingest lands on a shard outside the watched scope and the
    # recompute is skipped.
    history = [
        Point(i * (horizon / 256.0) + 0.05, rng.uniform(0, 1000), ident=-1 - i)
        for i in range(256)
    ]
    engine = SkylineEngine.sharded(
        history, shard_count=4, block_size=64, memory_blocks=64, cache_capacity=0
    )
    manager = SubscriptionManager(engine)
    threshold = RangeQuery(x_lo=1_000.0, x_hi=2_500.0, y_lo=400.0)
    subscription, _initial = manager.register(SubscribeRequest(threshold))
    notify_io = 0
    alerts = 0

    for step in range(horizon):
        timestamp = float(step) + rng.uniform(0.1, 0.9)
        reading = rng.uniform(0, 1000) + step * 1e-7
        point = Point(timestamp, reading, ident=step)
        skyline.append(point)

        if step % ingest_every == ingest_every - 1:
            engine.update(UpdateRequest.insert(point))
            before = engine.io_total()
            for delta in manager.pump().values():
                alerts += 1
                for entered in delta.entered:
                    if entered.ident == step:
                        print(
                            f"t={step:>5}: reading {entered.y:7.2f} entered "
                            f"the >=400 skyline "
                            f"({len(delta.left)} displaced)"
                        )
            notify_io += engine.io_total() - before

        if step % 1_000 == 999:
            maxima = skyline.skyline()
            best = max(maxima, key=lambda p: p.y)
            print(
                f"t={step:>5}: {len(maxima):>3} maxima in the window, "
                f"best reading {best.y:7.2f} at t={best.x:.0f}"
            )

    assert skyline.ledger_ok()
    described = skyline.describe()
    pumped = manager.describe()
    print()
    print(f"stream length                 : {horizon}")
    print(
        "amortized I/Os per append     : "
        f"{(skyline.append_io + skyline.expire_io) / horizon:.4f}"
    )
    print(
        "amortized I/Os per query      : "
        f"{skyline.query_io / (horizon // 1_000):.2f}"
    )
    print(f"window occupancy / components : {len(skyline)} / {described['components']}")
    print(f"bound                         : {described['bound']}")
    print(
        "subscription pumps            : "
        f"{pumped['pumps']} ({pumped['skipped']} skipped by scope, "
        f"{alerts} deltas delivered)"
    )
    print(
        "notification I/O per ingest   : "
        f"{notify_io / (horizon // ingest_every):.2f} blocks"
    )
    print(f"threshold view size           : {len(subscription.snapshot())}")


if __name__ == "__main__":
    main()
