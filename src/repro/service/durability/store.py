"""The durable store: the simulated persistent medium a service survives on.

A :class:`DurableStore` is the one object that outlives a
:class:`repro.service.SkylineService` process.  It owns a dedicated
:class:`repro.em.StorageManager` (with *no* buffer pool -- durability
writes must reach the platter, a write-back cache would defeat the WAL) and
three persistent areas on it:

* the **WAL area**: an ordered list of blocks, each holding up to ``B``
  :class:`~repro.service.durability.wal.WalRecord` s, appended by the
  write-ahead log's group commits (one charged block write each);
* the **snapshot area**: per-shard point blocks written at compaction
  checkpoints by :mod:`~repro.service.durability.snapshot`;
* the **manifest chain**: one block per installed
  :class:`~repro.service.durability.snapshot.SnapshotManifest`, each naming
  the snapshot blocks and the LSN up to which the WAL is folded in.

Everything the store keeps outside disk blocks (block ids, record counts,
the manifest list) is directory metadata a real implementation would hold
in a superblock; it is deliberately tiny and free, while every byte of
point or log payload moves through charged block transfers.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.em.disk import BlockId
from repro.em.storage import StorageManager

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.service.config import ServiceConfig
    from repro.service.durability.snapshot import SnapshotManifest
    from repro.service.durability.wal import WalRecord


class DurableStore:
    """The persistent medium: WAL blocks, snapshot blocks, manifests."""

    def __init__(self, em_config: Optional[EMConfig] = None) -> None:
        self.em_config = em_config or EMConfig()
        # The durability ledger: every WAL append, snapshot write and
        # replay read is charged here, separate from the query-path
        # ledgers of the shard machines.
        self.stats = IOStats()
        self.storage = StorageManager(
            self.em_config, stats=self.stats, use_cache=False
        )
        # WAL directory: (block id, records in block), in append order.
        self.wal_blocks: List[Tuple[BlockId, int]] = []
        self.wal_durable: int = 0
        # LSN of the last record dropped by :meth:`reclaim`; the retained
        # WAL blocks hold exactly records ``wal_base + 1 .. wal_durable``.
        self.wal_base: int = 0
        # Installed snapshot manifests, in increasing installed_lsn order.
        self.manifests: List["SnapshotManifest"] = []
        # The config the owning service ran with; SkylineService.open
        # falls back to it so recovery needs nothing but the store.
        self.service_config: Optional["ServiceConfig"] = None

    # ------------------------------------------------------------------
    # WAL area
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        return self.storage.block_size

    def append_wal_records(self, records: Sequence["WalRecord"]) -> int:
        """Persist ``records`` in blocks of at most ``B``; returns blocks written."""
        written = 0
        for start in range(0, len(records), self.block_size):
            chunk = list(records[start : start + self.block_size])
            block_id = self.storage.create(chunk)
            self.wal_blocks.append((block_id, len(chunk)))
            self.wal_durable += len(chunk)
            written += 1
        return written

    def read_wal_suffix(self, after_lsn: int) -> Iterator["WalRecord"]:
        """Durable records with ``lsn > after_lsn``, charging one read per
        block actually touched (blocks wholly folded into a snapshot are
        skipped for free -- that is the point of snapshotting)."""
        first_lsn = self.wal_base
        for block_id, count in self.wal_blocks:
            if first_lsn + count > after_lsn:
                for record in self.storage.read(block_id):
                    if record.lsn > after_lsn:
                        yield record
            first_lsn += count

    def wal_block_count(self) -> int:
        return len(self.wal_blocks)

    # ------------------------------------------------------------------
    # Manifest chain
    # ------------------------------------------------------------------
    def install_manifest(self, manifest: "SnapshotManifest") -> "SnapshotManifest":
        """Write the manifest block (one write) and chain it as the newest."""
        block_id = self.storage.create(manifest)
        installed = dataclasses.replace(manifest, block_id=block_id)
        self.manifests.append(installed)
        return installed

    def latest_manifest(
        self, max_installed_lsn: Optional[int] = None
    ) -> Optional["SnapshotManifest"]:
        """The newest manifest (optionally restricted to those installed at
        or before ``max_installed_lsn``, the crash simulator's view)."""
        for manifest in reversed(self.manifests):
            if max_installed_lsn is None or manifest.installed_lsn <= max_installed_lsn:
                return manifest
        return None

    def snapshot_block_count(self) -> int:
        """Blocks held by installed snapshots (manifest blocks included)."""
        return sum(m.block_count for m in self.manifests)

    # ------------------------------------------------------------------
    # Space reclamation
    # ------------------------------------------------------------------
    def reclaim(self) -> dict:
        """Free superseded snapshots and the WAL prefix folded into the
        newest manifest; returns the freed block counts.

        Recovery only ever loads the newest surviving manifest, so once a
        manifest is durable every older snapshot -- and every WAL block
        whose records are all folded into it -- is unreachable garbage; a
        store that never reclaims grows without bound even at constant
        live-set size.  Frees are bookkeeping (the cost model charges
        transfers, not deallocation).  Reclamation is deliberately an
        explicit operator action, not an install-time side effect: the
        crash simulator can only replay kill points at or after the
        retained history (``wal_base``), so tests enumerate crashes first
        and operators reclaim on their own cadence.
        """
        freed_snapshot = 0
        freed_wal = 0
        if self.manifests:
            newest = self.manifests[-1]
            for manifest in self.manifests[:-1]:
                for shard_ids in manifest.shard_blocks:
                    for block_id in shard_ids:
                        self.storage.free(block_id)
                        freed_snapshot += 1
                for block_id in manifest.extra_blocks():
                    self.storage.free(block_id)
                    freed_snapshot += 1
                if manifest.block_id is not None:
                    self.storage.free(manifest.block_id)
                    freed_snapshot += 1
            self.manifests = [newest]
            # Folded records form an LSN prefix, so the freeable WAL
            # blocks are exactly a leading run of the directory.
            while self.wal_blocks:
                block_id, count = self.wal_blocks[0]
                if self.wal_base + count > newest.folded_lsn:
                    break
                self.storage.free(block_id)
                self.wal_blocks.pop(0)
                self.wal_base += count
                freed_wal += 1
        return {
            "snapshot_blocks_freed": freed_snapshot,
            "wal_blocks_freed": freed_wal,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def blocks_in_use(self) -> int:
        return self.storage.blocks_in_use()

    def describe(self) -> dict:
        """Durability counters for dashboards and benchmark reports."""
        return {
            "wal_durable_records": self.wal_durable,
            "wal_blocks": self.wal_block_count(),
            "snapshots": len(self.manifests),
            "snapshot_blocks": self.snapshot_block_count(),
            "reads": self.stats.reads,
            "writes": self.stats.writes,
            "blocks_in_use": self.blocks_in_use(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DurableStore(wal={self.wal_durable} records/"
            f"{self.wal_block_count()} blocks, snapshots={len(self.manifests)})"
        )
