"""Invariant analysis for the reproduction: static lint + runtime sanitizers.

Two static passes (driven by ``tools/reprolint``):

* :mod:`repro.analysis.iolint` -- every block transfer must be charged
  to an :class:`~repro.em.counters.IOStats` ledger; uncharged escape
  hatches (``DiskModel.peek``/``poke``, raw disk state) are flagged
  unless annotated ``# repro: uncharged-io(<reason>)``.
* :mod:`repro.analysis.locklint` -- extracts the lock acquisition sites
  of the serving tier, builds the static lock-order graph, and fails on
  cycles, on untracked raw locks, and on guarded-attribute calls made
  outside their guarding lock.

Three opt-in runtime sanitizers (``REPRO_SANITIZE=1``, see
:mod:`repro.analysis.sanitize`):

* **ledger ownership** -- an :class:`~repro.em.counters.IOStats` charged
  from two threads without an intervening synchronization point raises
  :class:`~repro.analysis.sanitize.LedgerRaceError`;
* **lock order** -- :class:`~repro.analysis.locks.LockOrderTracker`
  raises :class:`~repro.analysis.sanitize.LockOrderError` on dynamic
  inversions, before the deadlock, and cross-checks observed edges
  against the static graph;
* **report partition** -- every
  :class:`~repro.engine.report.ExecutionReport` must satisfy
  ``attributed + maintenance == total - build``; a gap raises
  :class:`~repro.analysis.sanitize.PartitionError`.
"""

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.locks import (
    LockOrderTracker,
    TrackedCondition,
    TrackedLock,
    tracked_condition,
    tracked_lock,
)
from repro.analysis.sanitize import (
    LedgerRaceError,
    LockOrderError,
    PartitionError,
    SanitizerError,
)

__all__ = [
    "Finding",
    "sort_findings",
    "LockOrderTracker",
    "TrackedCondition",
    "TrackedLock",
    "tracked_condition",
    "tracked_lock",
    "LedgerRaceError",
    "LockOrderError",
    "PartitionError",
    "SanitizerError",
]
