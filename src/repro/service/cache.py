"""An LRU cache of query results keyed by per-shard identities and versions.

A cached answer is only ever returned for the exact generation of data it
was computed against: the key embeds, for every shard the query's
rectangle overlaps, the shard's stable :attr:`~repro.service.shard
.Shard.uid` *and* the per-shard write version the service bumps whenever
an update lands in that shard's x-range.  Invalidation is therefore
scoped: an insert routed to one shard makes only keys visiting that shard
unreachable, while a cached answer whose rectangle lies entirely in
another shard's range stays valid -- correct because a range-skyline
answer depends only on the live points inside the rectangle, all of which
lie in the visited shards' x-ranges (a point outside the rectangle can
neither appear in nor dominate anything in the answer).  Keying on the
uid rather than the positional shard id extends the same scoping to
*topology* changes: a hot-shard split or cold-shard merge destroys the
uids of exactly the shards it rewrites, so only keys touching the changed
shards become unreachable while every other cached answer (whose shards
kept their uids, even if their positional ids shifted) survives.  Stale
entries become unreachable immediately and age out of the LRU;
:meth:`ResultCache.invalidate_all` additionally drops them eagerly (the
service calls it on compaction, when whole generations die at once).

A cache built with ``capacity <= 0`` is *disabled*: it stores nothing and
every lookup is a miss.  Disabled lookups still count as misses -- a
dashboard reading ``hit_rate`` sees an honest 0.0 over real traffic, not
a 0/0 that merely looks like one -- and :meth:`ResultCache.describe`
reports the state explicitly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery

CacheKey = Tuple[Hashable, ...]


def make_key(
    query: RangeQuery,
    shard_scopes: Sequence[Tuple[int, int]],
) -> CacheKey:
    """Cache key: the query rectangle plus the data generation it reads.

    ``shard_scopes`` carries ``(uid, write_version)`` for every shard the
    query overlaps: the ``uid`` is stable for the shard's whole life (and
    dies with it at a split, merge or compaction), ``write_version``
    advances on every update routed into the shard's x-range.
    """
    return (
        query.x_lo,
        query.x_hi,
        query.y_lo,
        query.y_hi,
        tuple(shard_scopes),
    )


class ResultCache:
    """A bounded LRU mapping cache keys to result lists."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, List[Point]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[List[Point]]:
        """The cached result, refreshed to most-recently-used; None on miss.

        A disabled cache (``capacity <= 0``) never hits, but the lookup
        still counts as a miss so ``hit_rate`` keeps measuring real
        traffic instead of silently reporting over zero lookups.
        """
        if self.capacity <= 0:
            self.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return list(entry)

    def put(self, key: CacheKey, result: Sequence[Point]) -> None:
        """Store a result, evicting the least-recently-used beyond capacity."""
        if self.capacity <= 0:
            return
        self._entries[key] = list(result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        """Eagerly drop every entry (uid keys already make them stale)."""
        self._entries.clear()

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache.

        Exactly ``0.0`` before the first lookup (0/0 is pinned, not
        incidental): no traffic means no hits, and consumers such as
        ``describe()["cache_hit_rate"]`` rely on the value being a plain
        float either way.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> dict:
        """Hit/miss counters and occupancy, for dashboards and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate(), 3),
            "state": "enabled" if self.enabled else "disabled",
        }
