"""The visible level layout of the leveled update path.

The :class:`LevelManager` owns everything between the level-0 memtable
(the service's :class:`~repro.service.delta.DeltaBuffer`) and the
size-rebalanced base shards:

* **frozen memtables** -- sealed level-0 batches awaiting their flush
  merge; in memory, scan-free, visible to every query;
* **levels 1..k** -- immutable :class:`~repro.service.lsm.Component`
  structures of geometrically increasing capacity
  (``delta_threshold * level_growth**j`` records at level ``j``), each on
  its own simulated machine with its own ledger;
* the :class:`~repro.service.lsm.CompactionScheduler` that merges a
  level into the next in bounded incremental steps.

The manager never touches the base shards: a full
:meth:`repro.service.SkylineService.compact` folds every component into a
rebuilt base and calls :meth:`LevelManager.reset`.  Visibility is the
invariant that keeps intermediate merge states correct: a component stays
queryable until the merge that rewrites it is fully paid, at which point
the swap is atomic.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.service.delta import DeltaBuffer, point_key
from repro.service.lsm.component import Component
from repro.service.lsm.scheduler import CompactionScheduler, MergeJob


class LevelManager:
    """Frozen memtables, levels 1..k, and their merge scheduler."""

    def __init__(
        self,
        *,
        em_config: EMConfig,
        epsilon: float,
        block_size: int,
        memtable_capacity: int,
        level_growth: int,
        merge_step_blocks: int,
        delta: DeltaBuffer,
        maintenance: IOStats,
        retired: IOStats,
        on_layout_change: Callable[[], None],
    ) -> None:
        self.em_config = em_config
        self.epsilon = epsilon
        self.block_size = block_size
        self.memtable_capacity = memtable_capacity
        self.level_growth = level_growth
        self.merge_step_blocks = merge_step_blocks
        self.delta = delta
        self.maintenance = maintenance
        self.retired = retired
        self._on_layout_change = on_layout_change
        self.frozen: List[Component] = []
        self.levels: Dict[int, Component] = {}
        self.scheduler = CompactionScheduler(self)
        self._next_comp_id = 1

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def next_component_id(self) -> int:
        comp_id = self._next_comp_id
        self._next_comp_id += 1
        return comp_id

    def capacity(self, level: int) -> int:
        """Record capacity of ``level`` (level 0 is the memtable)."""
        return self.memtable_capacity * self.level_growth**level

    def components(self) -> List[Component]:
        """Every visible immutable component, frozen first, then levels
        in increasing depth (query fan-out order)."""
        return self.frozen + [
            self.levels[j] for j in sorted(self.levels)
        ]

    def find_frozen(self, frozen_id: Optional[int]) -> Optional[Component]:
        for comp in self.frozen:
            if comp.comp_id == frozen_id:
                return comp
        return None

    def stats_members(self) -> List[IOStats]:
        """The visible level ledgers (members of the service aggregate)."""
        return [
            comp.stats
            for comp in self.components()
            if comp.stats is not None
        ]

    def remove_component(self, comp: Component) -> None:
        """Drop a merge input from visibility, retiring its ledger."""
        if comp in self.frozen:
            self.frozen.remove(comp)
        for j, level_comp in list(self.levels.items()):
            if level_comp is comp:
                del self.levels[j]
        if comp.stats is not None:
            self.retired.absorb(comp.stats)
        self._on_layout_change()

    def install_level(self, level: int, comp: Component) -> None:
        """Make a paid-off merge output visible at ``level``."""
        assert level not in self.levels
        self.levels[level] = comp
        self._on_layout_change()

    # ------------------------------------------------------------------
    # Update-path entry points
    # ------------------------------------------------------------------
    def seal(self, points: List[Point]) -> Component:
        """Freeze a full memtable and schedule its flush into level 1."""
        comp = Component(self.next_component_id(), points, build_index=False)
        self.frozen.append(comp)
        self.scheduler.schedule(MergeJob("flush", frozen_id=comp.comp_id))
        self._on_layout_change()
        return comp

    def tick(self) -> int:
        """One update's worth of piggybacked merge work (bounded)."""
        return self.scheduler.pay(self.merge_step_blocks)

    def drain(self) -> int:
        """Pay all outstanding merge debt; returns transfers charged."""
        return self.scheduler.drain()

    def handover_slice(self, x_lo: float, x_hi: float) -> Tuple[List[Point], int]:
        """Carve the records with x in ``[x_lo, x_hi)`` out of the visible
        components for a topology change to fold into base shards.

        This is the level side of a hot-shard split: the split rebuilds
        its two children from the hot shard's residents *plus* this slice,
        so the level structures stop carrying the hot region's weight.
        Per component the slice is a contiguous run of the x-sorted
        points; every component holding one is rewritten without it, so
        after the split the handed-over range is *clean*: no level holds
        any of its points, and the content-based component prune excludes
        the remainders from that range's queries for free.  The cost is
        ``O((n_slice + overlapping component mass) / B)`` -- reading each
        overlapping component and rebuilding its remainder -- charged to
        the maintenance ledger; the overlapping mass is bounded by the
        level tower over the updates since the range was last folded, so
        a split stays a local operation (``bench_resharding`` asserts the
        worst step against both a linear per-record bound and a fraction
        of one measured global rebuild).  An in-flight merge reading a rewritten input is
        cancelled and re-queued (it re-resolves inputs when it restarts);
        tombstones owned by a rewritten component are consumed if their
        victim leaves with the slice (the split children are built from
        live points only) and re-owned to the remainder component
        otherwise.  Reads of rewritten indexed components and remainder
        rebuilds are charged to the maintenance ledger; frozen memtables
        are in memory and free.

        Returns ``(handed-over live points, records touched)`` -- the
        caller folds the points into the new base shards and uses the
        touched count to report the operation's size.
        """
        handed: List[Point] = []
        touched = 0
        for comp in list(self.components()):
            pts = comp.points
            lo = bisect.bisect_left(pts, x_lo, key=lambda p: p.x)
            hi = bisect.bisect_left(pts, x_hi, key=lambda p: p.x)
            inside = pts[lo:hi]
            if not inside:
                continue
            remainder = pts[:lo] + pts[hi:]
            touched += len(pts)
            active = self.scheduler.active
            if active is not None and comp in active.inputs:
                self.scheduler.cancel_active()
            level = next(
                (j for j, c in self.levels.items() if c is comp), None
            )
            if comp.index is not None and pts:
                # A real handover reads the component off its machine.
                self.maintenance.record_read(
                    math.ceil(len(pts) / self.block_size)
                )
            self.remove_component(comp)
            owned = self.delta.owned_tombstones(comp.owner)
            handed.extend(
                p
                for p in inside
                if point_key(p) not in owned and not self.delta.is_deleted(p)
            )
            for key, victim in owned.items():
                if x_lo <= victim.x < x_hi and key in self.delta.tombstones:
                    # The victim leaves with the slice: the children are
                    # built from live points, so the tombstone is done.
                    self.delta.drop_tombstone(key)
            if remainder:
                if comp.index is None:
                    new_comp = Component(
                        self.next_component_id(), remainder, build_index=False
                    )
                    self.frozen.append(new_comp)
                    self.scheduler.schedule(
                        MergeJob("flush", frozen_id=new_comp.comp_id)
                    )
                    self._on_layout_change()
                else:
                    new_comp = Component(
                        self.next_component_id(),
                        remainder,
                        em_config=self.em_config,
                        epsilon=self.epsilon,
                    )
                    # The rebuild is part of the bounded topology change:
                    # mirror the private build cost to maintenance now and
                    # reset the ledger before it joins the aggregate.
                    assert new_comp.stats is not None
                    self.maintenance.record_read(new_comp.stats.reads)
                    self.maintenance.record_write(new_comp.stats.writes)
                    new_comp.stats.reset()
                    assert level is not None
                    self.install_level(level, new_comp)
                for key, victim in owned.items():
                    if key in self.delta.tombstones:
                        self.delta.add_tombstone(victim, new_comp.owner)
        return handed, touched

    def reset(self) -> None:
        """Forget every component (a full compaction folded them into the
        base); visible ledgers are retired so no charge is lost."""
        self.scheduler.clear()
        for comp in self.components():
            if comp.stats is not None:
                self.retired.absorb(comp.stats)
        self.frozen = []
        self.levels = {}
        self._on_layout_change()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_points(self) -> List[Point]:
        """Points resident in visible components, minus tombstoned ones."""
        return [
            p
            for comp in self.components()
            for p in comp.points
            if not self.delta.is_deleted(p)
        ]

    def resident(self) -> int:
        return sum(len(comp) for comp in self.components())

    def describe_levels(self) -> List[dict]:
        """Per-level fill: {level, records, tombstones, capacity,
        merge_debt}, the block :meth:`SkylineService.describe` surfaces.

        Level 0 is the memtable (records = pending inserts; its
        tombstone count is the whole table, which conceptually lives at
        level 0 until merges consume it).  ``merge_debt`` sits on the
        level the active merge is building towards.
        """
        active = self.scheduler.active
        rows = [
            {
                "level": 0,
                "records": len(self.delta.inserts),
                "tombstones": len(self.delta.tombstones),
                "capacity": self.capacity(0),
                "merge_debt": 0,
                "frozen": [len(c) for c in self.frozen],
            }
        ]
        for j in sorted(set(self.levels) | ({active.out_level} if active else set())):
            comp = self.levels.get(j)
            rows.append(
                {
                    "level": j,
                    "records": 0 if comp is None else len(comp),
                    "tombstones": 0
                    if comp is None
                    else len(self.delta.owned_tombstones(comp.owner)),
                    "capacity": self.capacity(j),
                    "merge_debt": active.debt
                    if active is not None and active.out_level == j
                    else 0,
                }
            )
        return rows
