"""Resumable top-k: pagination that survives interleaved updates.

The engine's ``limit``/``cursor`` pagination re-executes the rectangle
for every page, so updates landing between pages are visible -- a point
inserted behind the cursor is silently skipped, one deleted ahead of it
can repeat or vanish mid-iteration.  :class:`ResumableTopK` removes that
anomaly by *pinning a component snapshot*: because every I/O-CPQA value
is an immutable descriptor tree (persistent data structure), capturing
the root once freezes the entire answer -- later appends, expiries and
deletes build *new* descriptors and can never disturb the pinned one.
Consecutive pages therefore tile the snapshot's answer exactly: no point
skipped, none repeated, regardless of how many updates interleave.

Two snapshot sources:

* :meth:`ResumableTopK.over_window` pins the persistent fold a
  :class:`~repro.stream.WindowedSkyline` already maintains -- zero block
  transfers to open (``CatenateAndAttrite`` is free, Theorem 3), and
  page pops read each surviving record block at most once, charged to
  the window's ``query_io`` meter so its ledger partition stays exact.

* :meth:`ResumableTopK.over_engine` runs the rectangle once through an
  :class:`~repro.engine.SkylineEngine` (the one charged query) and seals
  the answer into a memory-resident queue; every page after that is
  free.

Each page's ``next_cursor`` is the last point's x, which doubles as an
engine :class:`~repro.engine.QueryRequest` ``cursor``: a client that
outlives its snapshot resumes against live data with a fresh paginated
query -- the two surfaces share one token format.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, cast

from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.engine.engine import SkylineEngine
from repro.engine.report import KIND_STREAM, ExecutionReport, StreamPage
from repro.engine.requests import QueryRequest, StreamRequest
from repro.pqa.iocpqa import IOCPQA
from repro.stream.window import WindowedSkyline, _Entry

#: ``structure`` label reported by window-pinned streams.
STRUCTURE_WINDOW_SNAPSHOT = "iocpqa-window-snapshot"
#: ``structure`` label reported by engine-pinned streams.
STRUCTURE_ENGINE_SNAPSHOT = "iocpqa-engine-snapshot"


class ResumableTopK:
    """An incremental iterator over a pinned skyline snapshot.

    Construct via :meth:`over_window` or :meth:`over_engine`; then call
    :meth:`next_page` (or iterate :meth:`pages`) for successive
    :class:`~repro.engine.report.StreamPage` values.  The iterator is
    single-consumer and not thread-safe -- pin one per client.
    """

    def __init__(
        self,
        queue: IOCPQA,
        request: StreamRequest,
        *,
        backend: str,
        structure: str,
        entry_payload: bool,
        storage: StorageManager,
        window: Optional[WindowedSkyline] = None,
    ) -> None:
        self.request = request
        self._queue = queue
        self._backend = backend
        self._structure = structure
        self._entry_payload = entry_payload
        self._storage = storage
        self._window = window
        self._cursor: Optional[float] = None
        self._yielded = 0

    # ------------------------------------------------------------------
    # Snapshot sources
    # ------------------------------------------------------------------
    @classmethod
    def over_window(
        cls, window: WindowedSkyline, request: StreamRequest
    ) -> "ResumableTopK":
        """Pin the window's current skyline fold (zero transfers).

        Pages report the points of the *window skyline* that fall inside
        ``request.rect`` -- the windowed analogue of a top-open report.
        The pinned value is immutable: appends and expiries that land
        after this call do not change what the pages return.
        """
        return cls(
            window.skyline_queue(),
            request,
            backend="windowed-iocpqa",
            structure=STRUCTURE_WINDOW_SNAPSHOT,
            entry_payload=True,
            storage=window.storage,
            window=window,
        )

    @classmethod
    def over_engine(
        cls, engine: SkylineEngine, request: StreamRequest
    ) -> "ResumableTopK":
        """Run the rectangle once, seal the answer into a snapshot.

        The single pinning query is charged on the engine's ledger like
        any read (its report remains visible via ``engine.reports`` /
        accounting); the sealed queue is memory-resident, so every page
        afterwards costs zero transfers.
        """
        result = engine.query(
            QueryRequest(rect=request.rect, consistency=request.consistency)
        )
        scratch = StorageManager(EMConfig())
        queue = IOCPQA.build_in_memory(
            scratch, [(p.x, p) for p in result.points]
        )
        return cls(
            queue,
            request,
            backend=engine.backend.name,
            structure=STRUCTURE_ENGINE_SNAPSHOT,
            entry_payload=False,
            storage=scratch,
        )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    @property
    def cursor(self) -> Optional[float]:
        """Engine-compatible resume token: the last emitted point's x."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether the snapshot has been fully consumed."""
        return self._queue.is_empty()

    def _pop_point(self) -> Point:
        item, self._queue = self._queue.delete_min()
        payload = item[1]
        if self._entry_payload:
            return cast(_Entry, payload)[1]
        return cast(Point, payload)

    def next_page(self) -> StreamPage:
        """The next ``page_size`` snapshot points inside the rectangle.

        The page's report carries the block transfers these pops charged
        (zero once a record block is resident); on a window snapshot
        they are also credited to the window's ``query_io`` meter, so
        ``WindowedSkyline.ledger_ok()`` keeps holding mid-stream.
        """
        before = self._storage.snapshot()
        rect = self.request.rect
        points: List[Point] = []
        while len(points) < self.request.page_size and not self._queue.is_empty():
            point = self._pop_point()
            if rect.contains(point):
                points.append(point)
        delta = self._storage.snapshot() - before
        if self._window is not None:
            self._window.charge_query_io(delta.total)
        if points:
            self._cursor = points[-1].x
        self._yielded += len(points)
        report = ExecutionReport(
            backend=self._backend,
            kind=KIND_STREAM,
            variant=self.request.variant,
            structure=self._structure,
            reads=delta.reads,
            writes=delta.writes,
            result_size=len(points),
        )
        return StreamPage(
            points=points,
            next_cursor=self._cursor,
            exhausted=self._queue.is_empty(),
            report=report,
        )

    def pages(self) -> Iterator[StreamPage]:
        """Iterate pages until the snapshot is exhausted."""
        while not self.exhausted:
            yield self.next_page()

    def __iter__(self) -> Iterator[Point]:
        """Iterate the snapshot's points across page boundaries."""
        for page in self.pages():
            for point in page:
                yield point

    def describe(self) -> Tuple[str, int, Optional[float], bool]:
        """(structure, points yielded so far, cursor, exhausted)."""
        return (self._structure, self._yielded, self._cursor, self.exhausted)
