"""Block-level shard snapshots: serialisation and recovery loading.

At a compaction checkpoint the freshly rebuilt shards hold the whole live
point set (the delta is empty), so persisting them is a pure sequential
write: each shard's x-sorted points go out in blocks of at most ``B``
records -- ``ceil(n_shard / B)`` charged writes per shard, ``ceil(n / B)``
in total, the same ``O(n/B)`` linear-space discipline the paper's static
constructions obey.  A :class:`SnapshotManifest` (one more block) names the
point blocks, the shard boundaries and epochs, and the WAL LSN up to which
the log is folded into the snapshot.

Recovery (:func:`load_snapshot_state`) is the mirror image: one read for
the manifest block plus one read per point block, after which only the WAL
suffix past ``folded_lsn`` needs replaying.  Recovery therefore costs
``O(n/B + w/B)`` block transfers where ``w`` is the number of WAL records
since the last installed snapshot -- the quantity
``snapshot_every_compactions`` trades against snapshot write volume.

Level-aware snapshots
---------------------
On the leveled update path a snapshot may also be anchored at a *drain*
checkpoint, where levels 1..k, the memtable and the tombstone table are
not empty.  Towers are per-shard, so the manifest carries one block list
per ``(shard, level)`` pair plus one *overlay* block list per shard --
the union of the shard's inherited components clipped to its range, dead
points included -- and recovery restores the *exact per-shard tower
layout* (each overlay rebuilt as a single indexed component) before
replaying the WAL suffix.  Tombstone records name their owner as a
``(sid, level)`` pair, with level ``-1`` meaning the shard's overlay;
base-resident victims carry neither and are re-routed by x at load time,
since recovery re-cuts the shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.em.disk import BlockId
from repro.service.durability.store import DurableStore


@dataclass(frozen=True)
class TombstoneRecord:
    """One serialised tombstone: the exact victim plus its owner.

    ``(sid, level)`` names the tower component owning the victim; level
    ``-1`` is shard ``sid``'s overlay of inherited components.  Both
    ``None`` (also the legacy single-tower encoding) marks a base-shard
    resident, whose owning shard recovery re-derives by routing ``x``
    through the re-cut router.
    """

    x: float
    y: float
    ident: Optional[int]
    level: Optional[int] = None
    sid: Optional[int] = None

    def point(self) -> Point:
        return Point(self.x, self.y, self.ident)

    def record_size(self) -> int:
        return 1


@dataclass(frozen=True)
class SnapshotManifest:
    """The durable root of one snapshot: where the points are, what is folded.

    ``folded_lsn`` is the LSN of the compaction record this snapshot is
    anchored to (0 for the baseline snapshot written at service birth):
    every WAL record with a smaller-or-equal LSN is already reflected in the
    point blocks.  ``installed_lsn`` is the LSN whose durability makes this
    manifest visible to recovery -- the crash simulator drops manifests whose
    anchor record did not survive.  ``block_id`` is the manifest's own block,
    set when the store installs it.  ``point_count`` is verified against the
    loaded points by :func:`load_snapshot`; ``cuts`` records the shard
    layout the snapshot was taken under and is *authoritative at
    recovery*: online splits and merges move the topology between
    compactions, so :meth:`repro.service.SkylineService.open` restores
    exactly the recorded cuts (re-cutting by size would silently undo
    them) and then replays the WAL suffix's ``OP_SPLIT``/``OP_MERGE``
    records on top.
    """

    generation: int
    folded_lsn: int
    installed_lsn: int
    cuts: Tuple[float, ...]
    shard_blocks: Tuple[Tuple[BlockId, ...], ...]
    point_count: int
    block_id: Optional[BlockId] = None
    # Leveled state (empty at compaction checkpoints, where everything is
    # folded into the base; populated at drain checkpoints).  Level block
    # lists are keyed by ``(sid, level)``; overlay block lists by ``sid``
    # (each shard's inherited components, clipped and unioned).
    level_blocks: Tuple[Tuple[Tuple[int, int], Tuple[BlockId, ...]], ...] = ()
    level_counts: Tuple[Tuple[Tuple[int, int], int], ...] = ()
    overlay_blocks: Tuple[Tuple[int, Tuple[BlockId, ...]], ...] = ()
    overlay_counts: Tuple[Tuple[int, int], ...] = ()
    memtable_blocks: Tuple[BlockId, ...] = ()
    memtable_count: int = 0
    tombstone_blocks: Tuple[BlockId, ...] = ()
    tombstone_count: int = 0

    @property
    def block_count(self) -> int:
        """Blocks this snapshot occupies: point blocks plus the manifest."""
        return (
            sum(len(blocks) for blocks in self.shard_blocks)
            + sum(len(blocks) for _, blocks in self.level_blocks)
            + sum(len(blocks) for _, blocks in self.overlay_blocks)
            + len(self.memtable_blocks)
            + len(self.tombstone_blocks)
            + 1
        )

    def extra_blocks(self) -> List[BlockId]:
        """Every non-base block (level, overlay, memtable, tombstone) this
        snapshot owns -- the crash simulator and reclamation free these
        alongside the shard blocks."""
        extras: List[BlockId] = []
        for _, blocks in self.level_blocks:
            extras.extend(blocks)
        for _, blocks in self.overlay_blocks:
            extras.extend(blocks)
        extras.extend(self.memtable_blocks)
        extras.extend(self.tombstone_blocks)
        return extras

    def record_size(self) -> int:
        """The manifest is directory metadata; it fits one block slot."""
        return 1


@dataclass
class SnapshotState:
    """Everything a level-aware snapshot restores: the base shard points,
    the per-``(sid, level)`` point lists, the per-shard overlays (clipped
    inherited-component unions), the memtable, and the tombstone table."""

    base_points: List[Point] = field(default_factory=list)
    levels: List[Tuple[Tuple[int, int], List[Point]]] = field(
        default_factory=list
    )
    overlays: List[Tuple[int, List[Point]]] = field(default_factory=list)
    memtable: List[Point] = field(default_factory=list)
    tombstones: List[TombstoneRecord] = field(default_factory=list)


def write_record_blocks(
    store: DurableStore, records: Sequence[object]
) -> Tuple[BlockId, ...]:
    """Serialise arbitrary one-slot records in blocks of ``<= B``, one
    charged write each (the primitive base, level, memtable and tombstone
    areas all share)."""
    B = store.block_size
    ids: List[BlockId] = []
    for start in range(0, len(records), B):
        ids.append(store.storage.create(list(records[start : start + B])))
    return tuple(ids)


def read_record_blocks(
    store: DurableStore, block_ids: Sequence[BlockId]
) -> List[object]:
    """Read back blocks written by :func:`write_record_blocks`, one
    charged read each."""
    records: List[object] = []
    for block_id in block_ids:
        records.extend(store.storage.read(block_id))
    return records


def write_snapshot_blocks(
    store: DurableStore, shard_points: Sequence[Sequence[Point]]
) -> Tuple[Tuple[Tuple[BlockId, ...], ...], int]:
    """Serialise every shard's points to the store in blocks of ``<= B``.

    Returns ``(per-shard block-id tuples, total point count)``; each block
    costs one charged write on the store's ledger.  The caller anchors the
    result by installing a :class:`SnapshotManifest` *after* the WAL commit
    record is durable, so a crash between the two leaves only unreachable
    (harmless) blocks behind.
    """
    all_blocks: List[Tuple[BlockId, ...]] = []
    total = 0
    for points in shard_points:
        ordered = list(points)
        all_blocks.append(write_record_blocks(store, ordered))
        total += len(ordered)
    return tuple(all_blocks), total


def load_snapshot(store: DurableStore, manifest: SnapshotManifest) -> List[Point]:
    """Read a snapshot's points back: one read for the manifest block plus
    one per point block, all charged to the store's ledger."""
    if manifest.block_id is not None:
        stored = store.storage.read(manifest.block_id)
        if stored.folded_lsn != manifest.folded_lsn:  # pragma: no cover
            raise RuntimeError("manifest block does not match the chain entry")
    points: List[Point] = []
    for shard_ids in manifest.shard_blocks:
        for block_id in shard_ids:
            points.extend(store.storage.read(block_id))
    if len(points) != manifest.point_count:
        raise RuntimeError(
            f"snapshot corrupt: manifest promises {manifest.point_count} "
            f"points, blocks held {len(points)}"
        )
    return points


def load_snapshot_state(
    store: DurableStore, manifest: SnapshotManifest
) -> SnapshotState:
    """Read the full level-aware state a snapshot holds: base points plus
    per-level points, the memtable, and the tombstone table (all charged
    one read per block, like :func:`load_snapshot`)."""
    state = SnapshotState(base_points=load_snapshot(store, manifest))
    for (slot, block_ids), (slot_again, count) in zip(
        manifest.level_blocks, manifest.level_counts
    ):
        assert slot == slot_again
        points = [p for p in read_record_blocks(store, block_ids)]
        if len(points) != count:
            raise RuntimeError(
                f"snapshot corrupt: level {slot} promises {count} points, "
                f"blocks held {len(points)}"
            )
        state.levels.append((slot, points))
    for (sid, block_ids), (sid_again, count) in zip(
        manifest.overlay_blocks, manifest.overlay_counts
    ):
        assert sid == sid_again
        points = [p for p in read_record_blocks(store, block_ids)]
        if len(points) != count:
            raise RuntimeError(
                f"snapshot corrupt: shard {sid} overlay promises {count} "
                f"points, blocks held {len(points)}"
            )
        state.overlays.append((sid, points))
    state.memtable = list(read_record_blocks(store, manifest.memtable_blocks))
    if len(state.memtable) != manifest.memtable_count:
        raise RuntimeError("snapshot corrupt: memtable block count mismatch")
    state.tombstones = list(
        read_record_blocks(store, manifest.tombstone_blocks)
    )
    if len(state.tombstones) != manifest.tombstone_count:
        raise RuntimeError("snapshot corrupt: tombstone block count mismatch")
    return state
