"""Server-level metrics: throughput, latency percentiles, queue health.

One :class:`ServerMetrics` instance aggregates everything the serving
tier observes -- counters (served / shed / timed out / coalesced),
bounded reservoirs of recent latencies, and gauges (queue depth,
inflight).  All mutators take an internal lock: the dispatcher and the
writer lane update concurrently, and ``describe()`` may be called from
any caller thread.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.analysis.locks import tracked_lock


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0 <= q <= 1) by rank; 0.0 on empty input.

    The same nearest-rank convention as the benchmark sweeps: index
    ``min(len - 1, floor(q * len))`` into the sorted values -- robust for
    the small-to-moderate sample counts serving benchmarks produce.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return float(ordered[index])


class ServerMetrics:
    """Thread-safe counters and latency reservoirs of one server."""

    def __init__(self, latency_samples: int = 8192) -> None:
        self._lock = tracked_lock("serve.metrics")
        self.started_at = time.perf_counter()
        self.submitted_reads = 0
        self.submitted_writes = 0
        self.served_reads = 0
        self.served_writes = 0
        self.shed = 0
        self.timed_out = 0
        # Submissions answered from another caller's execution (fan-in
        # beyond 1), and the read batches / unique executions behind them.
        self.coalesced_followers = 0
        self.read_batches = 0
        self.executed_reads = 0
        self.max_read_queue_depth = 0
        self.max_write_queue_depth = 0
        self.max_inflight = 0
        self._latencies: Deque[float] = deque(maxlen=latency_samples)
        self._queue_waits: Deque[float] = deque(maxlen=latency_samples)

    # ------------------------------------------------------------------
    # Recording (dispatcher / writer / submit paths)
    # ------------------------------------------------------------------
    def note_submit(self, lane_write: bool, queue_depth: int) -> None:
        with self._lock:
            if lane_write:
                self.submitted_writes += 1
                self.max_write_queue_depth = max(
                    self.max_write_queue_depth, queue_depth
                )
            else:
                self.submitted_reads += 1
                self.max_read_queue_depth = max(
                    self.max_read_queue_depth, queue_depth
                )

    def note_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def note_timeout(self, queue_wait_s: float) -> None:
        with self._lock:
            self.timed_out += 1
            self._queue_waits.append(queue_wait_s)

    def note_read_batch(
        self, gathered: int, executed: int, inflight: int
    ) -> None:
        with self._lock:
            self.read_batches += 1
            self.executed_reads += executed
            self.coalesced_followers += gathered - executed
            self.max_inflight = max(self.max_inflight, inflight)

    def note_served(
        self, lane_write: bool, queue_wait_s: float, latency_s: float
    ) -> None:
        with self._lock:
            if lane_write:
                self.served_writes += 1
            else:
                self.served_reads += 1
            self._queue_waits.append(queue_wait_s)
            self._latencies.append(latency_s)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        with self._lock:
            return list(self._latencies)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            elapsed = max(1e-9, time.perf_counter() - self.started_at)
            served = self.served_reads + self.served_writes
            submitted = self.submitted_reads + self.submitted_writes
            latencies = list(self._latencies)
            waits = list(self._queue_waits)
        return {
            "elapsed_s": round(elapsed, 6),
            "submitted": submitted,
            "served": served,
            "served_reads": self.served_reads,
            "served_writes": self.served_writes,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "shed_rate": round(self.shed / submitted, 4) if submitted else 0.0,
            "throughput_rps": round(served / elapsed, 3),
            "read_batches": self.read_batches,
            "executed_reads": self.executed_reads,
            "coalesced_followers": self.coalesced_followers,
            "mean_coalesce_fanin": round(
                (self.executed_reads + self.coalesced_followers)
                / max(1, self.executed_reads),
                3,
            ),
            "latency_p50_s": round(percentile(latencies, 0.50), 6),
            "latency_p95_s": round(percentile(latencies, 0.95), 6),
            "latency_p99_s": round(percentile(latencies, 0.99), 6),
            "queue_wait_p99_s": round(percentile(waits, 0.99), 6),
            "max_read_queue_depth": self.max_read_queue_depth,
            "max_write_queue_depth": self.max_write_queue_depth,
            "max_inflight": self.max_inflight,
        }
