"""Online shard topology management: hot-shard splits, cold-shard merges.

The static shard layout a :class:`~repro.service.SkylineService` is born
with only ever moved at a full :meth:`~repro.service.SkylineService
.compact` -- a stop-the-world ``O(n/B)`` global rebuild.  Under a skewed
(e.g. Zipf-x) insert stream that leaves one x-region's load growing
without bound: the hot shard's per-query ``O(log_B n + k/B)`` bound
degrades and batch parallelism collapses onto one machine.  The
:class:`TopologyManager` watches per-shard *range load* -- base residents
plus the memtable and level records resident in each shard's x-range --
and keeps the layout balanced with three bounded local operations:

* **split** a hot shard at the size-balanced midpoint of its range's live
  records -- with per-shard towers an O(1) *metadata move*: the parent's
  base index and whole components are handed to the children, no block
  is read or rebuilt (:meth:`~repro.service.SkylineService.split_shard`);
* **merge** two adjacent cold shards into one
  (:meth:`~repro.service.SkylineService.merge_shards`);
* **fold** a shard whose private level tower has piled up back into its
  own base structure, cuts untouched
  (:meth:`~repro.service.SkylineService.fold_shard`) -- the pressure
  valve that keeps a skewed stream from burying its hot region under an
  ever-deeper level fan-out, compacting one tower without touching its
  neighbours.

All three are charged to the maintenance ledger (the same escrow
discipline as the incremental level merges), WAL-logged as
``OP_SPLIT``/``OP_MERGE``/``OP_FOLD`` records on a durable service, and
bounded by the affected range's own ``O(n_shard/B)`` rebuild cost --
never a global rebuild.  The policy is deliberately hysteretic: a shard
splits at ``split_load_factor`` times the target load (live points over
the configured shard count), a pair merges at ``merge_load_factor`` of
it (``merge < 1 < split``, so the two cannot thrash), and a fold fires
at ``fold_pressure_factor`` of it.  ``benchmarks/bench_resharding.py``
measures the payoff: under a Zipf-x mixed workload the adaptive topology
keeps query I/O near the balanced-uniform baseline while a static
topology degrades beyond 2x.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.service.service import SkylineService


class TopologyManager:
    """Per-shard load statistics and the split/merge policy over them."""

    def __init__(self, service: "SkylineService") -> None:
        self.service = service
        self.splits = 0
        self.merges = 0
        self.folds = 0
        # One entry per topology change, oldest first:
        # {"op", "sid", "cut", "touched", "charged", "version"}.
        # Bounded: a long-lived adaptive service performs topology
        # changes indefinitely, so only the newest HISTORY_LIMIT entries
        # are retained (the lifetime counts live in splits/merges/folds).
        self.history: List[Dict[str, object]] = []
        self._updates_since_check = 0

    HISTORY_LIMIT = 1024

    # ------------------------------------------------------------------
    # Load statistics
    # ------------------------------------------------------------------
    def _range_stats(self) -> Tuple[List[int], List[int]]:
        """One pass over the service state: per-shard ``(loads, slices)``.

        ``loads[sid]`` counts the records resident in shard ``sid``'s
        x-range wherever they live -- the shard's own residents minus its
        tombstones (dead weight a merge or fold would reclaim, which must
        not keep a cold shard looking warm), the pending memtable inserts
        routed there, and the frozen/level records inside the range.
        This is the load a split would actually rebalance: the split
        children are built from exactly these records.  ``slices[sid]``
        is the tower share of that load -- everything resident in shard
        ``sid``'s private tower, inherited components counted through its
        clip -- the *pressure* the fold trigger watches.  Towers are
        per-shard, so the sweep is one routing pass over the memtable
        plus one :meth:`~repro.service.lsm.LevelManager.resident` call
        per shard (a handful of bisects each); the cross-shard component
        walk of the shared-tower era is gone.
        """
        service = self.service
        count = len(service.shards)
        loads = [
            len(shard) - len(service.delta.owned_tombstones(shard.owner))
            for shard in service.shards
        ]
        for p in service.delta.inserts.values():
            loads[service.router.route_point(p.x)] += 1
        slices = [0] * count
        for sid, shard in enumerate(service.shards):
            if shard.tower is not None:
                slices[sid] = shard.tower.resident()
        for sid in range(count):
            loads[sid] += slices[sid]
        return loads, slices

    def range_load(self, sid: int) -> int:
        """Records resident in shard ``sid``'s x-range, wherever they live."""
        return self._range_stats()[0][sid]

    def range_loads(self) -> List[int]:
        return self._range_stats()[0]

    def level_slice(self, sid: int) -> int:
        """Records of shard ``sid``'s x-range resident in the LSM tower."""
        return self._range_stats()[1][sid]

    def target_load(self) -> int:
        """The per-shard load a balanced layout would carry: live points
        over the *configured* shard count (the parallelism the deployment
        sized for -- the actual count floats around it as shards split
        and merge)."""
        return max(1, len(self.service) // self.service.config.shard_count)

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def on_update(self) -> None:
        """Called by the service once per applied update (adaptive mode):
        every ``topology_check_every``-th call runs one policy check."""
        self._updates_since_check += 1
        if self._updates_since_check < self.service.config.topology_check_every:
            return
        self._updates_since_check = 0
        self.maybe_rebalance()

    def maybe_rebalance(self) -> Optional[str]:
        """One policy step: split the hottest shard over the split
        threshold, else merge the coldest adjacent pair under the merge
        threshold, else *fold* the shard under the worst level-tower
        pressure (a split immediately merged back: same cuts, range
        compacted locally).  At most one action per call, so the work any
        single update can trigger stays bounded.  Returns ``"split"``,
        ``"merge"``, ``"fold"`` or ``None``.
        """
        service = self.service
        config = service.config
        loads, slices = self._range_stats()
        target = self.target_load()
        hot = max(range(len(loads)), key=lambda sid: loads[sid])
        if loads[hot] >= config.split_load_factor * target and loads[hot] >= 2:
            if service.split_shard(hot) is not None:
                return "split"
        if len(loads) > 1:
            cold = min(
                range(len(loads) - 1), key=lambda sid: loads[sid] + loads[sid + 1]
            )
            if loads[cold] + loads[cold + 1] <= config.merge_load_factor * target:
                service.merge_shards(cold)
                return "merge"
        if config.fold_pressure_factor > 0:
            pressured = max(range(len(slices)), key=lambda sid: slices[sid])
            if slices[pressured] >= config.fold_pressure_factor * target:
                service.fold_shard(pressured)
                return "fold"
        return None

    # ------------------------------------------------------------------
    # Bookkeeping (the service records every applied change here)
    # ------------------------------------------------------------------
    def record(
        self, op: str, sid: int, cut: Optional[float], touched: int, charged: int
    ) -> None:
        if op == "split":
            self.splits += 1
        elif op == "merge":
            self.merges += 1
        else:
            self.folds += 1
        self.history.append(
            {
                "op": op,
                "sid": sid,
                "cut": cut,
                "touched": touched,
                "charged": charged,
                "version": self.service.router.version,
            }
        )
        if len(self.history) > self.HISTORY_LIMIT:
            del self.history[: len(self.history) - self.HISTORY_LIMIT]

    def describe(self) -> Dict[str, object]:
        """The live topology, as ``describe()``/dashboards report it."""
        service = self.service
        return {
            "shard_count": len(service.shards),
            "configured_shard_count": service.config.shard_count,
            "cuts": list(service.router.cuts),
            "version": service.router.version,
            "adaptive": service.config.adaptive_topology,
            "splits": self.splits,
            "merges": self.merges,
            "folds": self.folds,
            "shard_loads": self.range_loads(),
            "target_load": self.target_load(),
            "history": [dict(entry) for entry in self.history[-16:]],
        }
