"""The simulated block-addressed disk.

A :class:`DiskModel` stores arbitrary Python payloads, one per block address,
and charges one read or write to its :class:`~repro.em.counters.IOStats` per
block transferred.  Payload *size* is expressed in records: a payload
declaring more than ``B`` records does not fit in one block and is rejected,
which is how the reproduction enforces the paper's space discipline (e.g.
buffers of the I/O-CPQA holding at most ``4b <= 4B`` elements, PPB-tree nodes
holding at most ``B`` entries).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.em.config import EMConfig
from repro.em.counters import IOStats

BlockId = int


class DiskFullError(RuntimeError):
    """Raised when a bounded disk runs out of blocks."""


class BlockOverflowError(ValueError):
    """Raised when a payload declares more records than fit in one block."""


class DiskModel:
    """A block-addressed object store with exact I/O accounting.

    Parameters
    ----------
    config:
        The machine parameters (block size ``B``; the memory bound is
        enforced by :class:`~repro.em.cache.BufferPool`, not here).
    stats:
        Counter object to charge transfers to.  Several disks may share one
        ``IOStats`` when an experiment wants a single global I/O figure.
    capacity_blocks:
        Optional bound on the number of live blocks (``None`` = unbounded
        disk, as in the model).
    size_of:
        Optional callable mapping a payload to its size in records.  The
        default understands ``None`` (size 0), objects exposing
        ``record_size()`` and sized containers; anything else counts as one
        record.
    """

    def __init__(
        self,
        config: Optional[EMConfig] = None,
        stats: Optional[IOStats] = None,
        capacity_blocks: Optional[int] = None,
        size_of: Optional[Callable[[Any], int]] = None,
    ) -> None:
        self.config = config or EMConfig()
        self.stats = stats if stats is not None else IOStats()
        self.capacity_blocks = capacity_blocks
        self._size_of = size_of or _default_record_size
        self._blocks: Dict[BlockId, Any] = {}
        self._next_id: BlockId = 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self) -> BlockId:
        """Reserve a fresh block address (no transfer is charged)."""
        if (
            self.capacity_blocks is not None
            and self.block_count() >= self.capacity_blocks
        ):
            raise DiskFullError(
                f"disk capacity of {self.capacity_blocks} blocks exhausted"
            )
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = None
        self.stats.record_allocation()
        return block_id

    def free(self, block_id: BlockId) -> None:
        """Release a block address (no transfer is charged)."""
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} is not allocated")
        del self._blocks[block_id]
        self.stats.record_free()

    def block_count(self) -> int:
        """Number of currently allocated blocks (the structure's space)."""
        return len(self._blocks)

    def is_allocated(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` refers to a live block."""
        return block_id in self._blocks

    # ------------------------------------------------------------------
    # Transfers (the only operations that cost I/Os)
    # ------------------------------------------------------------------
    def read_block(self, block_id: BlockId) -> Any:
        """Transfer one block from disk to memory; charges one read."""
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} is not allocated")
        self.stats.record_read()
        return self._blocks[block_id]

    def write_block(self, block_id: BlockId, payload: Any) -> None:
        """Transfer one block from memory to disk; charges one write."""
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} is not allocated")
        size = self._size_of(payload)
        if size > self.config.block_size:
            raise BlockOverflowError(
                f"payload of {size} records exceeds block size "
                f"{self.config.block_size}"
            )
        self.stats.record_write()
        self._blocks[block_id] = payload

    def write_new(self, payload: Any) -> BlockId:
        """Allocate a block and write ``payload`` into it (one write)."""
        block_id = self.allocate()
        self.write_block(block_id, payload)
        return block_id

    # ------------------------------------------------------------------
    # Inspection helpers (free: used by tests and invariant checkers only)
    # ------------------------------------------------------------------
    def peek(self, block_id: BlockId) -> Any:
        """Read a block without charging an I/O.

        Only tests and invariant checkers may use this; production code paths
        must go through :meth:`read_block` so that every access is costed.
        """
        return self._blocks[block_id]

    def poke(self, block_id: BlockId, payload: Any) -> None:
        """Overwrite a block without charging an I/O (simulator surgery).

        The crash simulator uses this to model a block that was only
        partially durable at the kill point; like :meth:`peek` it is
        off-limits to production code paths, which must pay for every
        transfer via :meth:`write_block`.
        """
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} is not allocated")
        self._blocks[block_id] = payload


def _default_record_size(payload: Any) -> int:
    """Best-effort size, in records, of a block payload."""
    if payload is None:
        return 0
    record_size = getattr(payload, "record_size", None)
    if callable(record_size):
        return int(record_size())
    try:
        return len(payload)
    except TypeError:
        return 1
