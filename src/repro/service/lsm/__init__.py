"""repro.service.lsm -- the leveled log-structured update subsystem.

This package replaces the flat single-threshold delta + stop-the-world
``compact()`` write path with a Bentley--Saxe-style leveled design:

* **Level 0** is the in-memory memtable (the service's
  :class:`~repro.service.delta.DeltaBuffer`): pending inserts plus
  component-bucketed tombstones, folded into every query for free.
* **Levels 1..k** hold immutable static components
  (:class:`~repro.service.lsm.component.Component`) of geometrically
  increasing capacity, each a static top-open/four-sided structure on its
  own simulated machine.
* The :class:`~repro.service.lsm.scheduler.CompactionScheduler` merges a
  level into the next in bounded incremental steps -- at most
  ``ServiceConfig.merge_step_blocks`` block transfers piggybacked per
  update, with :meth:`~repro.service.SkylineService.drain` as the
  explicit full-drain entry point -- so the worst-case single-update I/O
  drops from the legacy path's ``O(n/B)`` rebuild to ``O(1)`` transfers,
  while the amortised cost stays the logarithmic-method
  ``O((g/B) * log_g(n/c))`` per update.

Queries fan across the memtable, the frozen memtables, every level and
the base shards, and fold the per-component answers with the generalised
right-to-left running-max-y merge
(:func:`repro.service.merge.merge_component_skylines`); tombstones mask
exactly the component that owns their victim.
"""

from repro.service.lsm.component import Component
from repro.service.lsm.levels import LevelManager
from repro.service.lsm.scheduler import CompactionScheduler, MergeJob

__all__ = ["Component", "LevelManager", "CompactionScheduler", "MergeJob"]
