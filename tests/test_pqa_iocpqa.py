"""Tests for the I/O-efficient catenable priority queue with attrition."""

import random

import pytest

from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.pqa import IOCPQA, SundarPQA, check_queue_invariants
from repro.pqa.checker import InvariantViolation


def make_storage():
    return StorageManager(EMConfig(block_size=16, memory_blocks=16))


def test_empty_queue_behaviour():
    queue = IOCPQA.empty(make_storage(), record_capacity=4)
    assert queue.is_empty()
    assert queue.find_min() is None and queue.min_key() is None
    item, same = queue.delete_min()
    assert item is None and same.is_empty()
    assert queue.keys() == []
    check_queue_invariants(queue)


def test_build_applies_attrition_in_insertion_order():
    storage = make_storage()
    queue = IOCPQA.build(storage, [(5, "a"), (3, "b"), (8, "c"), (2, "d"), (7, "e")], 4)
    assert queue.keys() == [2, 7]
    assert [payload for _, payload in queue.items()] == ["d", "e"]
    check_queue_invariants(queue)


def test_insert_and_attrite_matches_oracle():
    storage = make_storage()
    queue = IOCPQA.empty(storage, record_capacity=4)
    oracle = SundarPQA()
    rng = random.Random(1)
    for i in range(400):
        key = rng.random()
        queue = queue.insert_and_attrite(key, i)
        oracle.insert_and_attrite(key, i)
        if i % 50 == 0:
            check_queue_invariants(queue)
    assert queue.keys() == oracle.keys()


def test_delete_min_returns_items_in_order():
    storage = make_storage()
    items = [(i, f"p{i}") for i in range(40)]
    queue = IOCPQA.build(storage, items, record_capacity=4)
    drained = []
    while True:
        item, queue = queue.delete_min()
        if item is None:
            break
        drained.append(item)
    assert drained == items


def test_persistence_of_operations():
    """Operations return new values; the original queue is unchanged."""
    storage = make_storage()
    original = IOCPQA.build(storage, [(i, None) for i in range(10)], 4)
    inserted = original.insert_and_attrite(3.5)
    _, popped = original.delete_min()
    combined = original.catenate_and_attrite(
        IOCPQA.build(storage, [(4.5, None)], 4)
    )
    assert original.keys() == list(range(10))
    assert inserted.keys() == [0, 1, 2, 3, 3.5]
    assert popped.keys() == list(range(1, 10))
    assert combined.keys() == [0, 1, 2, 3, 4, 4.5]


def test_catenate_and_attrite_against_oracle():
    storage = make_storage()
    rng = random.Random(2)
    for _ in range(60):
        first_items = [(rng.random(), None) for _ in range(rng.randint(0, 30))]
        second_items = [(rng.random(), None) for _ in range(rng.randint(0, 30))]
        first = IOCPQA.build(storage, first_items, 4)
        second = IOCPQA.build(storage, second_items, 4)
        oracle_first = SundarPQA(first_items)
        oracle_second = SundarPQA(second_items)
        combined = first.catenate_and_attrite(second)
        oracle_first.catenate_and_attrite(oracle_second)
        assert combined.keys() == oracle_first.keys()
        check_queue_invariants(combined)


def test_pop_while_reports_prefix():
    storage = make_storage()
    queue = IOCPQA.build(storage, [(i, i) for i in range(50)], 8)
    popped, rest = queue.pop_while(lambda key: key < 20)
    assert [key for key, _ in popped] == list(range(20))
    assert rest.min_key() == 20
    limited, _ = queue.pop_while(lambda key: True, limit=5)
    assert len(limited) == 5


def test_catenate_costs_no_block_transfers():
    storage = make_storage()
    first = IOCPQA.build(storage, [(i, None) for i in range(100)], 8)
    second = IOCPQA.build(storage, [(i + 50.5, None) for i in range(100)], 8)
    storage.drop_cache()
    before = storage.snapshot()
    first.catenate_and_attrite(second)
    assert (storage.snapshot() - before).total == 0


def test_delete_min_reads_each_record_block_once():
    storage = make_storage()
    queue = IOCPQA.build(storage, [(i, None) for i in range(128)], 16)
    storage.drop_cache()
    before = storage.snapshot()
    remaining = queue
    for _ in range(128):
        _, remaining = remaining.delete_min()
    reads = (storage.snapshot() - before).reads
    assert reads <= 128 // 16 + 2


def test_space_accounting_and_memory_build():
    storage = make_storage()
    queue = IOCPQA.build(storage, [(i, None) for i in range(64)], 8)
    assert len(queue.reachable_record_blocks()) == 8
    temp = IOCPQA.build_in_memory(storage, [(3, None), (1, None), (2, None)], 8)
    assert temp.keys() == [1, 2]
    assert temp.reachable_record_blocks() == set()


def test_record_capacity_validation_and_checker():
    with pytest.raises(ValueError):
        IOCPQA(make_storage(), record_capacity=0)
    storage = make_storage()
    queue = IOCPQA.build(storage, [(1, None), (2, None)], 4)
    # Corrupt the cached minimum to confirm the checker notices.
    from repro.pqa.iocpqa import _RecordLeaf

    bad = IOCPQA(
        storage,
        4,
        _root=_RecordLeaf(
            block_id=next(iter(queue.reachable_record_blocks())),
            offset=0,
            cap=float("inf"),
            min_item=(99, None),
        ),
    )
    with pytest.raises(InvariantViolation):
        check_queue_invariants(bad)


def test_mixed_operation_fuzz_against_oracle():
    storage = make_storage()
    rng = random.Random(9)
    queues = [IOCPQA.empty(storage, record_capacity=4)]
    oracles = [SundarPQA()]
    for step in range(600):
        index = rng.randrange(len(queues))
        operation = rng.choice(["insert", "delete", "catenate", "find"])
        if operation == "insert":
            key = rng.random()
            queues[index] = queues[index].insert_and_attrite(key)
            oracles[index].insert_and_attrite(key, None)
        elif operation == "delete":
            item, queues[index] = queues[index].delete_min()
            expected = oracles[index].delete_min()
            assert (item is None) == (expected is None)
            if item is not None:
                assert item[0] == expected[0]
        elif operation == "catenate" and len(queues) > 1:
            other = rng.randrange(len(queues))
            if other != index:
                queues[index] = queues[index].catenate_and_attrite(queues[other])
                oracles[index].catenate_and_attrite(oracles[other])
                queues.pop(other)
                oracles.pop(other)
                if other < index:
                    index -= 1
        else:
            mine = queues[index].find_min()
            theirs = oracles[index].find_min()
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert mine[0] == theirs[0]
        if rng.random() < 0.08:
            items = [(rng.random(), None) for _ in range(rng.randint(0, 12))]
            queues.append(IOCPQA.build(storage, items, 4))
            oracles.append(SundarPQA(items))
        assert queues[index].keys() == oracles[index].keys()
