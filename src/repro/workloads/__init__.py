"""Synthetic datasets and query workloads for the benchmarks and examples."""

from repro.workloads.points import (
    anticorrelated_points,
    clustered_points,
    correlated_points,
    grid_permutation_points,
    uniform_points,
    zipf_x_points,
)
from repro.workloads.queries import (
    anti_dominance_queries,
    four_sided_queries,
    top_open_queries,
)

__all__ = [
    "uniform_points",
    "correlated_points",
    "anticorrelated_points",
    "clustered_points",
    "grid_permutation_points",
    "zipf_x_points",
    "top_open_queries",
    "four_sided_queries",
    "anti_dominance_queries",
]
