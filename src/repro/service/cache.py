"""An LRU cache of query results keyed by per-shard epochs and versions.

A cached answer is only ever returned for the exact generation of data it
was computed against: the key embeds, for every shard the query's
rectangle overlaps, the shard's rebuild epoch *and* the per-shard write
version the service bumps whenever an update lands in that shard's
x-range.  Invalidation is therefore scoped: an insert routed to shard 3
makes only keys visiting shard 3 unreachable, while a cached answer whose
rectangle lies entirely in shard 5's range stays valid -- correct because
a range-skyline answer depends only on the live points inside the
rectangle, all of which lie in the visited shards' x-ranges (a point
outside the rectangle can neither appear in nor dominate anything in the
answer).  This replaces the old global delta version, which evicted every
cached answer on any write anywhere.  Stale entries become unreachable
immediately and age out of the LRU; :meth:`ResultCache.invalidate_all`
additionally drops them eagerly (the service calls it on compaction, when
whole generations die at once).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery

CacheKey = Tuple[Hashable, ...]


def make_key(
    query: RangeQuery,
    shard_scopes: Sequence[Tuple[int, int, int]],
) -> CacheKey:
    """Cache key: the query rectangle plus the data generation it reads.

    ``shard_scopes`` carries ``(sid, epoch, write_version)`` for every
    shard the query overlaps: ``epoch`` advances on rebuilds,
    ``write_version`` on every update routed into the shard's x-range.
    """
    return (
        query.x_lo,
        query.x_hi,
        query.y_lo,
        query.y_hi,
        tuple(shard_scopes),
    )


class ResultCache:
    """A bounded LRU mapping cache keys to result lists."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, List[Point]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[List[Point]]:
        """The cached result, refreshed to most-recently-used; None on miss."""
        if self.capacity <= 0:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return list(entry)

    def put(self, key: CacheKey, result: Sequence[Point]) -> None:
        """Store a result, evicting the least-recently-used beyond capacity."""
        if self.capacity <= 0:
            return
        self._entries[key] = list(result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        """Eagerly drop every entry (epoch keys already make them stale)."""
        self._entries.clear()

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none happened)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> dict:
        """Hit/miss counters and occupancy, for dashboards and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate(), 3),
        }
