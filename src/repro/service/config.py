"""Tunables of the sharded skyline service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.em.config import EMConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of a :class:`repro.service.SkylineService`.

    Attributes
    ----------
    shard_count:
        Number of x-range shards the point set is partitioned into.
    block_size:
        ``B`` of every shard's simulated machine (records per block).
    memory_blocks:
        Buffer-pool frames of *each shard's* machine.  The service models a
        scale-out deployment -- every shard runs on its own node with its
        own buffer pool -- so the aggregate cache grows with the shard
        count, exactly as adding servers grows a cluster's RAM.  Cold-cache
        benchmarks are unaffected (they drop every pool before measuring);
        warm comparisons against a monolithic index should state this
        asymmetry, as ``repro.bench.bench_service`` does.
    epsilon:
        The query/update trade-off knob forwarded to every shard's
        :class:`repro.RangeSkylineIndex`.
    delta_threshold:
        Once the in-memory delta (pending inserts plus tombstones) reaches
        this many entries, the next write triggers :meth:`SkylineService
        .compact` (when ``auto_compact`` is on).
    cache_capacity:
        Maximum number of query results kept in the LRU result cache
        (0 disables caching).
    parallelism:
        Worker threads for batch execution; 1 executes shard worklists
        sequentially.  I/O accounting is exact at every level: each shard
        machine charges a private ledger, so fan-out never races a counter
        and parallel batches report bit-identical totals to serial runs.
    auto_compact:
        Whether writes trigger compaction as soon as the delta exceeds
        ``delta_threshold``.  Turn off to drive :meth:`compact` from an
        external scheduler, as a real service would.
    durability:
        Whether the service writes every update to a write-ahead log and
        periodic block-level shard snapshots on a
        :class:`~repro.service.durability.DurableStore`, so that
        :meth:`repro.service.SkylineService.open` can rebuild the exact
        live state after a crash.  Off by default: a purely in-memory
        service charges zero durability I/O.
    wal_group_commit:
        Group-commit batch size of the write-ahead log: appended records
        accumulate in memory and are forced to disk (one block write per
        ``block_size`` records, minimum one) every this-many records.  1
        makes every update durable immediately at one block write each;
        larger values amortise the write at the cost of losing up to
        ``wal_group_commit - 1`` acknowledged updates in a crash.
    snapshot_every_compactions:
        Cadence of block-level shard snapshots: every Nth compaction also
        serialises the freshly rebuilt shards to the durable store, which
        bounds WAL replay at recovery to the records logged since.  1
        snapshots at every compaction.
    """

    shard_count: int = 4
    block_size: int = 64
    memory_blocks: int = 32
    epsilon: float = 0.5
    delta_threshold: int = 128
    cache_capacity: int = 256
    parallelism: int = 1
    auto_compact: bool = True
    durability: bool = False
    wal_group_commit: int = 8
    snapshot_every_compactions: int = 1

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if self.delta_threshold < 1:
            raise ValueError(
                f"delta_threshold must be >= 1, got {self.delta_threshold}"
            )
        if self.cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.wal_group_commit < 1:
            raise ValueError(
                f"wal_group_commit must be >= 1, got {self.wal_group_commit}"
            )
        if self.snapshot_every_compactions < 1:
            raise ValueError(
                "snapshot_every_compactions must be >= 1, got "
                f"{self.snapshot_every_compactions}"
            )

    def shard_em_config(self) -> EMConfig:
        """The machine each shard runs on (one node of the scale-out fleet)."""
        return EMConfig(block_size=self.block_size, memory_blocks=self.memory_blocks)
