"""Tests for EMFile, RecordWriter and the external merge sort."""

import random

import pytest

from repro.em.config import EMConfig
from repro.em.file import EMFile, RecordWriter
from repro.em.sorting import external_sort, merge_sorted_files
from repro.em.storage import StorageManager


def make_storage(block_size=8, memory_blocks=4):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=memory_blocks))


def test_emfile_roundtrip_and_block_count():
    storage = make_storage()
    data = list(range(50))
    emfile = EMFile.from_records(storage, data, name="t")
    assert list(emfile.scan()) == data
    assert len(emfile) == 50
    assert emfile.block_count == 50 // 8 + (1 if 50 % 8 else 0)


def test_emfile_scan_includes_unflushed_tail():
    storage = make_storage()
    emfile = EMFile(storage)
    emfile.extend(range(10))  # 8 flushed + 2 in tail
    assert list(emfile.scan()) == list(range(10))
    emfile.close()
    assert emfile.block_count == 2


def test_emfile_read_block_bounds():
    storage = make_storage()
    emfile = EMFile.from_records(storage, range(20))
    assert list(emfile.read_block(0)) == list(range(8))
    with pytest.raises(IndexError):
        emfile.read_block(10)


def test_record_writer_context_manager():
    storage = make_storage()
    with RecordWriter(storage, name="w") as writer:
        for value in range(12):
            writer.emit(value)
    assert list(writer.result().scan()) == list(range(12))


def test_external_sort_sorts_and_counts_io():
    storage = make_storage(block_size=8, memory_blocks=4)
    rng = random.Random(0)
    data = [rng.random() for _ in range(300)]
    source = EMFile.from_records(storage, data)
    before = storage.snapshot()
    result = external_sort(storage, source)
    delta = storage.snapshot() - before
    assert list(result.scan()) == sorted(data)
    # Sorting must cost at least one pass over the data.
    assert delta.total >= source.block_count


def test_external_sort_with_key_and_empty_input():
    storage = make_storage()
    empty = EMFile.from_records(storage, [])
    assert list(external_sort(storage, empty).scan()) == []
    data = [(i, -i) for i in range(40)]
    source = EMFile.from_records(storage, data)
    result = external_sort(storage, source, key=lambda pair: pair[1])
    assert list(result.scan()) == sorted(data, key=lambda pair: pair[1])


def test_merge_sorted_files():
    storage = make_storage()
    left = EMFile.from_records(storage, [1, 3, 5, 7])
    right = EMFile.from_records(storage, [2, 4, 6])
    merged = merge_sorted_files(storage, left, right)
    assert list(merged.scan()) == [1, 2, 3, 4, 5, 6, 7]


def test_config_validation_and_costs():
    with pytest.raises(ValueError):
        EMConfig(block_size=1)
    with pytest.raises(ValueError):
        EMConfig(block_size=8, memory_blocks=2)
    config = EMConfig(block_size=8, memory_blocks=4)
    assert config.blocks_for(17) == 3
    assert config.blocks_for(0) == 0
    assert config.memory_words == 32
    assert config.scan_cost(16) == 2
    assert config.sort_cost(1000) > config.scan_cost(1000)
    assert config.with_block_size(16).block_size == 16
    assert config.with_memory_blocks(8).memory_blocks == 8
