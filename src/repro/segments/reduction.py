"""Computing ``Sigma(P)`` with the stack sweep of Section 2.2.

The algorithm sweeps a vertical line left to right over the x-sorted points,
maintaining on a stack the points whose ``leftdom`` has not been met yet
(these are exactly the skyline of the points seen so far).  When the next
point ``p`` is higher than the stack top ``q``, then ``p = leftdom(q)`` and
the segment ``sigma(q) = [x_q, x_p[ x y_q`` is emitted.  Segments are output
in non-decreasing order of their right endpoints, the order the SABE
PPB-tree construction consumes them in, and the whole pass costs ``O(n/B)``
I/Os when the input is an x-sorted :class:`~repro.em.EMFile`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.em.file import EMFile
from repro.em.storage import StorageManager
from repro.segments.segment import HorizontalSegment


def compute_sigma(points_sorted_by_x: Sequence[Point]) -> List[HorizontalSegment]:
    """In-memory ``Sigma(P)`` of points already sorted by increasing x.

    Returns segments ordered by non-decreasing right-endpoint x-coordinate
    (ties broken by lower y first), mirroring the emission order of the
    sweep.
    """
    _check_sorted(points_sorted_by_x)
    segments: List[HorizontalSegment] = []
    stack: List[Point] = []
    for point in points_sorted_by_x:
        while stack and stack[-1].y < point.y:
            popped = stack.pop()
            segments.append(
                HorizontalSegment(popped.x, point.x, popped.y, source=popped)
            )
        stack.append(point)
    # Remaining stack entries are maximal points: unbounded segments.
    for point in stack:
        segments.append(
            HorizontalSegment(point.x, math.inf, point.y, source=point)
        )
    return segments


def compute_sigma_emfile(
    storage: StorageManager, points_file: EMFile
) -> Tuple[EMFile, int]:
    """``Sigma(P)`` of an x-sorted point file, with I/O accounting.

    Streams the input once and writes the segments to a fresh
    :class:`~repro.em.EMFile`; the stack lives in memory, as in the paper
    (its size is bounded by the current skyline size, but only its top is
    ever inspected, so keeping it in memory is the standard convention --
    spilling it to a disk stack would preserve the O(n/B) bound).

    Returns the output file and the number of segments written.
    """
    before = storage.snapshot()
    output = EMFile(storage, name=f"{points_file.name}.sigma")
    stack: List[Point] = []
    count = 0
    previous_x = -math.inf
    for point in points_file.scan():
        if point.x < previous_x:
            raise ValueError("input file must be sorted by x-coordinate")
        previous_x = point.x
        while stack and stack[-1].y < point.y:
            popped = stack.pop()
            output.append(
                HorizontalSegment(popped.x, point.x, popped.y, source=popped)
            )
            count += 1
        stack.append(point)
    for point in stack:
        output.append(HorizontalSegment(point.x, math.inf, point.y, source=point))
        count += 1
    output.close()
    del before  # kept for symmetry; callers meter around this function
    return output, count


def leftdom_map(points: Iterable[Point]) -> Dict[Point, Optional[Point]]:
    """``leftdom(p)`` for every point, via the segment reduction.

    The left dominator of a point is the right endpoint of its segment.
    Points whose segment is unbounded have no dominator (``None``).
    """
    pts = sorted(points, key=lambda p: p.x)
    mapping: Dict[Point, Optional[Point]] = {}
    by_x: Dict[float, Point] = {p.x: p for p in pts}
    for segment in compute_sigma(pts):
        source = segment.source
        assert source is not None
        if segment.is_unbounded:
            mapping[source] = None
        else:
            mapping[source] = by_x[segment.x_right]
    return mapping


def _check_sorted(points: Sequence[Point]) -> None:
    for prev, curr in zip(points, points[1:]):
        if curr.x < prev.x:
            raise ValueError("points must be sorted by increasing x-coordinate")
