"""Tests for the external-memory B-tree, bulk loading and range-max variant."""

import random

import pytest

from repro.btree import BTree, RangeMaxBTree, bulk_load_sorted
from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.storage import StorageManager


def make_storage(block_size=8):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=16))


def test_insert_search_and_membership():
    tree = BTree(make_storage())
    keys = random.Random(0).sample(range(10_000), 400)
    for key in keys:
        tree.insert(key, key * 2)
    assert len(tree) == 400
    for key in keys[:50]:
        assert tree.search(key) == key * 2
        assert key in tree
    assert tree.search(-1) is None
    assert tree.height() >= 2


def test_insert_overwrites_existing_key():
    tree = BTree(make_storage())
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert len(tree) == 1
    assert tree.search(1) == "b"


def test_range_scan_and_items():
    tree = BTree(make_storage())
    for key in range(200):
        tree.insert(key, -key)
    scanned = list(tree.range_scan(50, 75))
    assert [k for k, _ in scanned] == list(range(50, 76))
    assert [k for k, _ in tree.items()] == list(range(200))


def test_min_max_predecessor_successor():
    tree = BTree(make_storage())
    for key in range(0, 100, 2):
        tree.insert(key, key)
    assert tree.min_entry() == (0, 0)
    assert tree.max_entry() == (98, 98)
    assert tree.predecessor(51) == (50, 50)
    assert tree.successor(51) == (52, 52)
    assert tree.predecessor(-1) is None
    assert tree.successor(99) is None


def test_delete_and_rebalance():
    tree = BTree(make_storage())
    keys = list(range(300))
    random.Random(1).shuffle(keys)
    for key in keys:
        tree.insert(key, key)
    removed = keys[:200]
    for key in removed:
        assert tree.delete(key)
    assert not tree.delete(removed[0])
    assert len(tree) == 100
    for key in removed[:20]:
        assert tree.search(key) is None
    for key in keys[200:220]:
        assert tree.search(key) == key


def test_empty_tree_behaviour():
    tree = BTree(make_storage())
    assert tree.is_empty()
    assert tree.search(1) is None
    assert tree.min_entry() is None and tree.max_entry() is None
    assert not tree.delete(1)
    assert list(tree.items()) == []


def test_validation_of_parameters():
    with pytest.raises(ValueError):
        BTree(make_storage(), leaf_capacity=1)
    with pytest.raises(ValueError):
        BTree(make_storage(), fanout=2)


def test_bulk_load_matches_incremental():
    storage = make_storage()
    entries = [(i, i * i) for i in range(500)]
    tree = bulk_load_sorted(storage, entries)
    assert len(tree) == 500
    assert tree.search(123) == 123 * 123
    assert [k for k, _ in tree.range_scan(100, 110)] == list(range(100, 111))
    with pytest.raises(ValueError):
        bulk_load_sorted(storage, [(2, 0), (1, 0)])
    empty = bulk_load_sorted(storage, [])
    assert empty.is_empty()


def test_bulk_load_is_cheaper_than_incremental():
    entries = [(i, i) for i in range(2000)]
    bulk_storage = make_storage()
    before = bulk_storage.snapshot()
    bulk_load_sorted(bulk_storage, entries)
    bulk_io = (bulk_storage.snapshot() - before).total

    inc_storage = make_storage()
    before = inc_storage.snapshot()
    tree = BTree(inc_storage)
    for key, value in entries:
        inc_storage.drop_cache()
        tree.insert(key, value)
    incremental_io = (inc_storage.snapshot() - before).total
    assert bulk_io < incremental_io


def test_range_aggregate_requires_hook():
    tree = BTree(make_storage())
    tree.insert(1, 1)
    with pytest.raises(ValueError):
        tree.range_aggregate(0, 2)


def test_range_max_btree_matches_brute_force():
    rng = random.Random(2)
    points = [Point(x, rng.randrange(10_000), i) for i, x in enumerate(rng.sample(range(10_000), 300))]
    storage = make_storage(block_size=16)
    tree = RangeMaxBTree.build_sorted(storage, sorted(points, key=lambda p: p.x))
    for _ in range(100):
        lo, hi = sorted(rng.sample(range(10_000), 2))
        inside = [p.y for p in points if lo <= p.x <= hi]
        expected = max(inside) if inside else None
        assert tree.max_y_in(lo, hi) == expected
    assert len(tree) == 300


def test_range_max_btree_updates():
    storage = make_storage(block_size=16)
    tree = RangeMaxBTree(storage)
    points = [Point(i, 100 - i, i) for i in range(50)]
    for point in points:
        tree.insert(point)
    assert tree.max_y_in(10, 20) == 90
    assert tree.highest_point_in(10, 20) == Point(10, 90, 10)
    assert tree.delete(Point(10, 90, 10))
    assert tree.max_y_in(10, 20) == 89
