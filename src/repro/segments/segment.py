"""Horizontal segments produced by the point-to-segment reduction."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.point import Point


@dataclass(frozen=True, order=True)
class HorizontalSegment:
    """A horizontal segment ``[x_left, x_right[ x y``.

    ``x_right = +inf`` encodes the segment of a maximal point (a point with
    no dominator).  ``source`` carries the originating data point so query
    answers can be mapped back to points without an extra lookup.
    """

    x_left: float
    x_right: float
    y: float
    source: Optional[Point] = None

    def __post_init__(self) -> None:
        if self.x_right <= self.x_left:
            raise ValueError(
                f"segment must have positive length: [{self.x_left}, {self.x_right}["
            )

    @property
    def length(self) -> float:
        """Length of the x-interval (``inf`` for unbounded segments)."""
        return self.x_right - self.x_left

    @property
    def is_unbounded(self) -> bool:
        """Whether the segment extends to ``x = +inf``."""
        return math.isinf(self.x_right)

    def covers_x(self, x: float) -> bool:
        """Whether the half-open x-interval ``[x_left, x_right[`` contains ``x``."""
        return self.x_left <= x < self.x_right

    def intersects_vertical(self, x: float, y_lo: float, y_hi: float) -> bool:
        """Whether this segment intersects the vertical segment ``x x [y_lo, y_hi]``."""
        return self.covers_x(x) and y_lo <= self.y <= y_hi

    def left_endpoint(self) -> Point:
        """The left endpoint as a point (carries the source identity)."""
        ident = self.source.ident if self.source is not None else None
        return Point(self.x_left, self.y, ident)

    def x_interval_contains(self, other: "HorizontalSegment") -> bool:
        """Whether this segment's x-interval contains the other's."""
        return self.x_left <= other.x_left and other.x_right <= self.x_right

    def x_interval_disjoint(self, other: "HorizontalSegment") -> bool:
        """Whether the two x-intervals are disjoint."""
        return self.x_right <= other.x_left or other.x_right <= self.x_left

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.x_left}, {self.x_right}[ x {self.y}"
