"""Geometric core: points, dominance, query variants and skyline algorithms.

This package has no dependency on the external-memory simulator; it provides
the vocabulary (points, rectangles, staircases) and the in-memory reference
algorithms that the I/O structures are validated against.
"""

from repro.core.point import Point, dominates, strictly_dominates
from repro.core.queries import (
    AntiDominanceQuery,
    BottomOpenQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    RangeQuery,
    RightOpenQuery,
    TopOpenQuery,
)
from repro.core.skyline import (
    range_skyline,
    skyline,
    skyline_divide_and_conquer,
    skyline_of_sorted,
)
from repro.core.staircase import Staircase
from repro.core.rankspace import RankSpaceMap, to_rank_space

__all__ = [
    "Point",
    "dominates",
    "strictly_dominates",
    "RangeQuery",
    "TopOpenQuery",
    "RightOpenQuery",
    "BottomOpenQuery",
    "LeftOpenQuery",
    "DominanceQuery",
    "AntiDominanceQuery",
    "ContourQuery",
    "FourSidedQuery",
    "skyline",
    "skyline_of_sorted",
    "skyline_divide_and_conquer",
    "range_skyline",
    "Staircase",
    "RankSpaceMap",
    "to_rank_space",
]
