"""The sharded skyline query service facade.

:class:`SkylineService` glues the service tier together: the
:class:`~repro.service.router.ShardRouter` prunes shards per query, each
:class:`~repro.service.shard.Shard` answers locally on its own simulated
machine, :mod:`~repro.service.merge` folds local answers into the global
skyline, the :class:`~repro.service.delta.DeltaBuffer` absorbs writes until
:meth:`SkylineService.compact` rebuilds the static shards, and the
:class:`~repro.service.cache.ResultCache` short-circuits repeated queries
between writes.  The public surface mirrors
:class:`repro.RangeSkylineIndex` (``query``, ``query_many``, ``insert``,
``delete``, ``skyline``, ``io_total``), so the two are interchangeable in
benchmarks and applications.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.core.skyline import range_skyline
from repro.em.counters import IOMeter, IOSnapshot, IOStats
from repro.service.batch import build_worklists, execute_worklists
from repro.service.cache import ResultCache, make_key
from repro.service.config import ServiceConfig
from repro.service.delta import DeltaBuffer
from repro.service.merge import merge_shard_skylines, merge_with_delta
from repro.service.router import ShardRouter, size_balanced_cuts
from repro.service.shard import Shard


class SkylineService:
    """A sharded, batched, updatable range-skyline query service.

    Parameters
    ----------
    points:
        The initial point set.
    config:
        Service tunables; defaults to :class:`ServiceConfig()`.
    overrides:
        Convenience keyword overrides applied on top of ``config``
        (``SkylineService(points, shard_count=8)``).
    """

    def __init__(
        self,
        points: Iterable[Point],
        config: Optional[ServiceConfig] = None,
        **overrides: object,
    ) -> None:
        base = config or ServiceConfig()
        self.config = dataclasses.replace(base, **overrides) if overrides else base
        self.stats = IOStats()
        self.delta = DeltaBuffer()
        self.cache = ResultCache(self.config.cache_capacity)
        self.compactions = 0
        # Duplicate queries coalesced within batches (computed once each).
        self.coalesced = 0
        # Build generation: seeds every shard's epoch so cache keys can
        # never collide across compactions.
        self._generation = 0
        self.router: ShardRouter
        self.shards: List[Shard]
        self._build_shards(list(points))

    # ------------------------------------------------------------------
    # Construction / compaction
    # ------------------------------------------------------------------
    def _build_shards(self, points: List[Point]) -> None:
        """(Re)partition ``points`` into size-balanced x-range shards."""
        self._live_xs = {p.x for p in points}
        self._live_ys = {p.y for p in points}
        if len(self._live_xs) < len(points) or len(self._live_ys) < len(points):
            raise ValueError(
                "points must be in general position (distinct x and distinct y); "
                "pre-process with repro.core.point.ensure_general_position"
            )
        cuts = size_balanced_cuts(points, self.config.shard_count)
        self.router = ShardRouter(cuts)
        buckets: List[List[Point]] = [[] for _ in range(self.router.shard_count)]
        for point in points:
            buckets[self.router.route_point(point.x)].append(point)
        em_config = self.config.shard_em_config()
        self._generation += 1
        self.shards = []
        for sid, bucket in enumerate(buckets):
            x_lo, x_hi = self.router.shard_range(sid)
            self.shards.append(
                Shard(
                    sid,
                    x_lo,
                    x_hi,
                    bucket,
                    em_config,
                    self.stats,
                    epsilon=self.config.epsilon,
                    epoch=self._generation,
                )
            )

    def compact(self) -> None:
        """Fold the delta into the static shards and rebalance boundaries.

        Rebuilds every shard from the live point set (static points minus
        tombstones, plus pending inserts), re-cutting shard boundaries so
        the shards come out size-balanced again; then empties the delta and
        drops the result cache.  Rebuild I/Os are charged to the shared
        counters -- that is the amortised cost the logarithmic method pays
        for keeping queries on static-structure speeds.
        """
        self._build_shards(self.live_points())
        self.delta.clear()
        self.cache.invalidate_all()
        self.compactions += 1

    def delta_exceeds_threshold(self) -> bool:
        """Whether a background scheduler should trigger :meth:`compact`."""
        return len(self.delta) >= self.config.delta_threshold

    def _maybe_compact(self) -> None:
        if self.config.auto_compact and self.delta_exceeds_threshold():
            self.compact()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of the live points inside ``query``, sorted by x."""
        return self.query_many([query])[0]

    def query_many(
        self, queries: Sequence[RangeQuery], use_cache: bool = True
    ) -> List[List[Point]]:
        """Answer a batch; ``result[i]`` answers ``queries[i]``.

        Cache hits are served immediately and duplicate queries within the
        batch are coalesced (computed once, copied to every occurrence);
        the remaining misses are regrouped into per-shard worklists
        (sorted by variant and x for buffer-pool locality), executed --
        across a thread pool when the service is configured with
        ``parallelism > 1`` -- and merged per query with the pending
        delta.
        """
        results: List[Optional[List[Point]]] = [None] * len(queries)
        plan: Dict[int, Tuple[Tuple, List[int]]] = {}
        leaders: Dict[Tuple, int] = {}
        followers: List[Tuple[int, int]] = []
        misses: List[Tuple[int, RangeQuery]] = []
        for position, query in enumerate(queries):
            shard_ids = self.router.shards_for(query)
            key = make_key(
                query,
                [(sid, self.shards[sid].epoch) for sid in shard_ids],
                self.delta.version,
            )
            cached = self.cache.get(key) if use_cache else None
            if cached is not None:
                results[position] = cached
                continue
            if key in leaders:
                followers.append((position, leaders[key]))
                continue
            leaders[key] = position
            plan[position] = (key, shard_ids)
            misses.append((position, query))
        if misses:
            worklists = build_worklists(
                misses, {position: plan[position][1] for position, _ in misses}
            )
            local = execute_worklists(
                worklists, self._shard_query, self.config.parallelism
            )
            for position, query in misses:
                key, shard_ids = plan[position]
                merged = merge_shard_skylines(
                    [local[(position, sid)] for sid in shard_ids]
                )
                merged = merge_with_delta(merged, self.delta.candidates_in(query))
                if use_cache:
                    self.cache.put(key, merged)
                results[position] = merged
        self.coalesced += len(followers)
        for position, leader_position in followers:
            results[position] = list(results[leader_position])  # type: ignore[arg-type]
        return results  # type: ignore[return-value]

    def _shard_query(self, sid: int, query: RangeQuery) -> List[Point]:
        """One shard's local skyline inside ``query``, tombstone-aware.

        A tombstone inside the rectangle invalidates the shard's static
        answer (the deleted point may have dominated points that must now
        resurface), so the local skyline is recomputed from the shard's
        resident live points; otherwise the static structure answers at
        full I/O efficiency.
        """
        shard = self.shards[sid]
        if self.delta.tombstone_hits(query, shard.x_lo, shard.x_hi):
            live = [p for p in shard.points if not self.delta.is_deleted(p)]
            return range_skyline(live, query)
        return shard.query(query)

    def skyline(self) -> List[Point]:
        """The skyline of the whole live point set."""
        return self.query(RangeQuery())

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Buffer an insert in the delta (visible to queries immediately).

        The general-position assumption every structure of the paper makes
        is enforced here, at the write boundary: a coordinate colliding
        with a live point raises immediately instead of corrupting a later
        compaction rebuild.
        """
        if point.x in self._live_xs or point.y in self._live_ys:
            raise ValueError(
                f"coordinate collision with a live point: {point}; the service "
                "requires general position (distinct x and distinct y)"
            )
        self._live_xs.add(point.x)
        self._live_ys.add(point.y)
        self.delta.insert(point)
        self._maybe_compact()

    def delete(self, point: Point) -> bool:
        """Delete one live point matching ``point``; returns success.

        Among coordinate twins, a point with the same ``ident`` is
        preferred.  A pending insert is simply dropped from the delta; a
        static point gets a tombstone until the next compaction.
        """
        if self.delta.remove_insert(point):
            self._live_xs.discard(point.x)
            self._live_ys.discard(point.y)
            return True
        shard = self.shards[self.router.route_point(point.x)]
        candidates = [
            p
            for p in shard.points
            if p.x == point.x and p.y == point.y and not self.delta.is_deleted(p)
        ]
        if not candidates:
            return False
        victim = next(
            (p for p in candidates if p.ident == point.ident), candidates[0]
        )
        self.delta.add_tombstone(victim)
        self._live_xs.discard(victim.x)
        self._live_ys.discard(victim.y)
        self._maybe_compact()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_points(self) -> List[Point]:
        """The current point set: static minus tombstones, plus the delta."""
        live = [
            p
            for shard in self.shards
            for p in shard.points
            if not self.delta.is_deleted(p)
        ]
        live.extend(self.delta.inserts.values())
        return live

    def __len__(self) -> int:
        pending = len(self.delta.inserts) - len(self.delta.tombstones)
        return sum(len(shard) for shard in self.shards) + pending

    def io_total(self) -> int:
        """Block transfers charged across every shard machine so far."""
        return self.stats.total

    def snapshot(self) -> IOSnapshot:
        return self.stats.snapshot()

    def meter(self) -> IOMeter:
        """``with service.meter() as m: ...`` measures I/Os of the block."""
        return IOMeter(self.stats)

    def drop_caches(self) -> None:
        """Empty every shard's buffer pool (cold-cache measurements)."""
        for shard in self.shards:
            if shard.storage is not None:
                shard.storage.drop_cache()

    def blocks_in_use(self) -> int:
        """Allocated blocks across all shard machines (space usage)."""
        return sum(
            shard.storage.blocks_in_use()
            for shard in self.shards
            if shard.storage is not None
        )

    def describe(self) -> Dict[str, object]:
        """A status snapshot a service dashboard would render."""
        return {
            "shard_count": len(self.shards),
            "shard_sizes": [len(shard) for shard in self.shards],
            "shard_epochs": [shard.epoch for shard in self.shards],
            "cuts": list(self.router.cuts),
            "live_points": len(self),
            "delta_inserts": len(self.delta.inserts),
            "delta_tombstones": len(self.delta.tombstones),
            "compactions": self.compactions,
            "cache_entries": len(self.cache),
            "cache_hit_rate": round(self.cache.hit_rate(), 3),
            "coalesced": self.coalesced,
            "io_total": self.io_total(),
            "blocks_in_use": self.blocks_in_use(),
        }
