"""Convenience facade bundling disk, buffer pool and counters.

Every data structure in the library takes a :class:`StorageManager` so that
experiments can (a) share one I/O counter across several structures and
(b) control the block size ``B`` and buffer-pool size ``M/B`` in one place.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.em.cache import BufferPool
from repro.em.config import EMConfig
from repro.em.counters import IOMeter, IOSnapshot, IOStats
from repro.em.disk import BlockId, DiskModel


class StorageManager:
    """A simulated machine: one disk, one buffer pool, one set of counters."""

    def __init__(
        self,
        config: Optional[EMConfig] = None,
        stats: Optional[IOStats] = None,
        use_cache: bool = True,
    ) -> None:
        self.config = config or EMConfig()
        self.stats = stats if stats is not None else IOStats()
        self.disk = DiskModel(config=self.config, stats=self.stats)
        self.pool: Optional[BufferPool] = (
            BufferPool(self.disk, self.config.memory_blocks) if use_cache else None
        )

    # ------------------------------------------------------------------
    # Block-level access (cache-aware)
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """``B`` -- records per block."""
        return self.config.block_size

    def read(self, block_id: BlockId) -> Any:
        """Read a block (through the buffer pool when one is configured)."""
        if self.pool is not None:
            return self.pool.get(block_id)
        return self.disk.read_block(block_id)

    def write(self, block_id: BlockId, payload: Any) -> None:
        """Write a block (write-back through the buffer pool if configured)."""
        if self.pool is not None:
            self.pool.put(block_id, payload)
        else:
            self.disk.write_block(block_id, payload)

    def create(self, payload: Any) -> BlockId:
        """Allocate a fresh block holding ``payload``."""
        if self.pool is not None:
            return self.pool.create(payload)
        return self.disk.write_new(payload)

    def free(self, block_id: BlockId) -> None:
        """Release a block."""
        if self.pool is not None:
            self.pool.invalidate(block_id)
        self.disk.free(block_id)

    def pin(self, block_id: BlockId) -> Any:
        """Pin a block in memory (no-op passthrough read without a pool)."""
        if self.pool is not None:
            return self.pool.pin(block_id)
        return self.disk.read_block(block_id)

    def unpin(self, block_id: BlockId) -> None:
        """Release a pin acquired with :meth:`pin`."""
        if self.pool is not None:
            self.pool.unpin(block_id)

    def flush(self) -> None:
        """Force all dirty cached blocks to disk."""
        if self.pool is not None:
            self.pool.flush()

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    def snapshot(self) -> IOSnapshot:
        """Snapshot of the I/O counters (flushing nothing)."""
        return self.stats.snapshot()

    def meter(self) -> IOMeter:
        """``with storage.meter() as m: ...`` measures I/Os of the block."""
        return IOMeter(self.stats)

    def io_total(self) -> int:
        """Total charged block transfers so far."""
        return self.stats.total

    def blocks_in_use(self) -> int:
        """Current number of allocated blocks (space usage)."""
        return self.disk.block_count()

    def reset_stats(self) -> None:
        """Zero the I/O counters (space accounting is unaffected)."""
        self.stats.reset()

    def drop_cache(self) -> None:
        """Flush and empty the buffer pool (cold-cache measurements)."""
        if self.pool is not None:
            self.pool.evict_all()
