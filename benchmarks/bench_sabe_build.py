"""Theorem 1 (construction): SABE vs classic PPB-tree construction.

Claim: given x-sorted input, the PPB-tree over Sigma(P) is built in O(n/B)
I/Os, whereas the classic construction pays O(n log_B n).  The sweep builds
both from the same segment sets and reports I/Os per input point; the SABE
column should stay near 1/B per point while the cold-cache (classic) column
grows with log_B n.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import BenchmarkTable
from repro.bench.harness import make_storage
from repro.ppbtree.build import build_segment_ppbtree
from repro.segments import compute_sigma
from repro.workloads import uniform_points

BLOCK_SIZE = 64
SWEEP_N = [512, 1024, 2048, 4096]


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Theorem 1 -- SABE vs classic PPB-tree construction")
    for n in SWEEP_N:
        points = sorted(uniform_points(n, seed=n), key=lambda p: p.x)
        segments = compute_sigma(points)

        sabe_storage = make_storage(block_size=BLOCK_SIZE)
        before = sabe_storage.snapshot()
        build_segment_ppbtree(sabe_storage, segments)
        sabe_io = (sabe_storage.snapshot() - before).total

        classic_storage = make_storage(block_size=BLOCK_SIZE)
        before = classic_storage.snapshot()
        build_segment_ppbtree(classic_storage, segments, cold_cache=True)
        classic_io = (classic_storage.snapshot() - before).total

        table.add(
            measured_io=sabe_io,
            predicted=max(1.0, n / BLOCK_SIZE),
            n=n,
            B=BLOCK_SIZE,
            sabe_io_per_point=round(sabe_io / n, 3),
            classic_io=classic_io,
            classic_io_per_point=round(classic_io / n, 3),
            log_B_n=round(math.log(n, BLOCK_SIZE), 2),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_sabe_build_is_linear(benchmark, sweep_table, capsys):
    """SABE construction I/O per point stays bounded while classic grows."""
    with capsys.disabled():
        sweep_table.show()
    per_point = [row.params["sabe_io_per_point"] for row in sweep_table.rows]
    assert max(per_point) < 2.0  # a small constant of blocks per point
    # The classic construction should cost strictly more on the largest input.
    last = sweep_table.rows[-1]
    assert last.params["classic_io"] > last.measured_io

    points = sorted(uniform_points(512, seed=3), key=lambda p: p.x)
    segments = compute_sigma(points)
    benchmark(lambda: build_segment_ppbtree(make_storage(BLOCK_SIZE), segments))
