"""The sharded skyline query service facade.

:class:`SkylineService` glues the service tier together: the
:class:`~repro.service.router.ShardRouter` prunes shards per query, each
:class:`~repro.service.shard.Shard` answers locally on its own simulated
machine, :mod:`~repro.service.merge` folds local answers into the global
skyline, and the :class:`~repro.service.cache.ResultCache`
short-circuits repeated queries between writes.  The public surface
mirrors :class:`repro.RangeSkylineIndex` (``query``, ``query_many``,
``insert``, ``delete``, ``skyline``, ``io_total``), so the two are
interchangeable in benchmarks and applications.

Update path
-----------
Writes never touch the static shard structures directly.  On the default
``"leveled"`` path (:mod:`repro.service.lsm`), inserts land in the
shared level-0 memtable (the :class:`~repro.service.delta.DeltaBuffer`,
range-cut by shard) and deletes of resident points become
component-bucketed tombstones.  *Every shard owns a private level
tower*: when a shard's cut of the memtable fills it is sealed into that
shard's :class:`~repro.service.lsm.LevelManager`, whose
:class:`~repro.service.lsm.CompactionScheduler` merges it -- and, as
they overflow, the immutable levels of geometrically increasing capacity
it feeds -- downwards in *bounded incremental steps* of at most
``ServiceConfig.merge_step_blocks`` transfers piggybacked per update.
No single update ever pays an ``O(n/B)`` rebuild; the worst case drops
to ``O(1)`` transfers while the amortised cost stays the
logarithmic-method ``O((g/B) log_g n)``.  Queries fan across the
memtable, the *visited shards'* towers and the base shards, folded by
the generalised right-to-left running-max-y merge
(:func:`~repro.service.merge.merge_component_skylines`).
:meth:`SkylineService.drain` pays all outstanding merge debt at once
(per shard, or across every tower -- in parallel when a maintenance-
capable batch executor is installed), and :meth:`SkylineService.compact`
remains the explicit *major* compaction that folds everything back into
rebuilt, size-rebalanced base shards.  The legacy
``"threshold-compact"`` path (flat delta, stop-the-world compaction at a
size threshold) is kept for benchmarking the difference.

Topology
--------
Shard cuts are no longer frozen between compactions: the
:class:`~repro.service.topology.TopologyManager` (driven automatically
with ``ServiceConfig.adaptive_topology``, or by hand through
:meth:`SkylineService.split_shard` / :meth:`SkylineService.merge_shards`)
splits a hot shard, merges adjacent cold shards, and *folds* a
tower-pressured shard back into its base structure in place.  Because
towers are per shard, a split or merge is a pure **metadata move**: the
retiring shard's base index is adopted as a zero-I/O component
(:meth:`repro.service.lsm.Component.adopt`), its tower's components are
handed to the children *whole* (refcounted, clipped to each child's
x-range by every reader), and the shared memtable needs no work at all
-- its range cut moves with the router.  No component block is read or
rewritten; only a fold pays ``O(range mass / B)`` to compact one shard's
private tower, charged to the maintenance ledger.  Shard *identity*
(:attr:`~repro.service.shard.Shard.uid`) is decoupled from shard
*position*, so a topology change invalidates only the cached answers and
tombstone buckets of the shards it actually rewrites.  On a durable
service splits and merges are WAL-logged (``OP_SPLIT``/``OP_MERGE``) and
snapshot manifests record the live cuts, so crash recovery restores the
exact post-change topology at every WAL prefix.

I/O accounting
--------------
Every shard machine and every level component charges a *private*
:class:`~repro.em.counters.IOStats` ledger, and the service-wide total is
an :class:`~repro.em.counters.IOStatsGroup` summing them (plus a
retired-ledger accumulator that keeps totals monotone across rebuilds and
merges, the *maintenance ledgers* -- one service-level plus one per
tower, aggregated by :attr:`SkylineService.maintenance` -- that
incremental merge work is charged to, and the durability store's ledger
when durability is on; components shared between sibling towers are
summed exactly once).  Nothing is
ever shared between batch workers, so ``parallelism > 1`` charges
bit-identical totals to a serial run -- for maintenance steps run per
shard in parallel exactly as for queries.  When a tombstone forces a shard or
level to recompute its local skyline from resident points, that scan is
charged as ``ceil(resident / B)`` block reads on the component's ledger
-- the fallback is never free, so comparisons stay honest under deletes.
Incremental merge work is escrowed: a merge's output is staged on a
private ledger and its exact cost is mirrored onto the maintenance ledger
in bounded steps, so ``attributed + maintenance == total - build`` holds
on every path (asserted by the engine tests and benches).

Durability
----------
With ``ServiceConfig(durability=True)`` the service runs on a
:class:`~repro.service.durability.DurableStore`: every acknowledged
insert/delete is appended to a group-committed write-ahead log, memtable
seals and drains are logged as level-aware records (``flush`` /
``drain``), compactions and drains log checkpoint records and (every
``snapshot_every_compactions``-th checkpoint) serialise the state as
block-level snapshots -- per-level manifests included, so recovery
restores the exact level layout -- and :meth:`SkylineService.open`
rebuilds the exact durable state after a crash by loading the newest
surviving snapshot and replaying the WAL suffix, all charged to the
store's block-transfer ledger.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.locks import tracked_lock
from repro.core.columns import filter_rect
from repro.core.point import Point, resolve_victim_index
from repro.core.queries import RangeQuery
from repro.core.skyline import range_skyline
from repro.em.counters import IOMeter, IOSnapshot, IOStats, IOStatsGroup
from repro.service.batch import BatchExecutor, build_worklists, execute_worklists
from repro.service.cache import ResultCache, make_key
from repro.service.config import ServiceConfig
from repro.service.delta import DeltaBuffer, point_key
from repro.service.durability import (
    OP_COMPACT,
    OP_DELETE,
    OP_DRAIN,
    OP_FLUSH,
    OP_FOLD,
    OP_INSERT,
    OP_MERGE,
    OP_SPLIT,
    DurableStore,
    SnapshotManifest,
    SnapshotState,
    TombstoneRecord,
    WriteAheadLog,
    load_snapshot_state,
    write_record_blocks,
    write_snapshot_blocks,
)
from repro.service.lsm import Component, LevelManager
from repro.service.merge import (
    merge_component_skylines,
    merge_shard_skylines,
    merge_with_delta,
)
from repro.service.router import (
    ShardRouter,
    size_balanced_cuts,
    size_balanced_midpoint,
)
from repro.service.shard import Shard
from repro.service.topology import TopologyManager


@dataclasses.dataclass(frozen=True)
class QueryExecutionTrace:
    """How one query of a batch was served (``SkylineService.last_traces``).

    ``shard_ids`` are the shards the router selected (the rest were
    pruned); ``cache_hit`` means the result came straight from the result
    cache; ``coalesced`` marks a duplicate served from its in-batch
    leader's answer; ``tombstone_fallback`` says at least one selected
    shard or level component rescanned its resident points because a
    tombstone invalidated its static answer.  Consumers such as
    :class:`repro.engine.ShardedServiceBackend` read these instead of
    re-deriving routing and tombstone facts from service internals.
    """

    shard_ids: Tuple[int, ...]
    cache_hit: bool = False
    coalesced: bool = False
    tombstone_fallback: bool = False


class SkylineService:
    """A sharded, batched, updatable, optionally durable skyline service.

    Parameters
    ----------
    points:
        The initial point set.
    config:
        Service tunables; defaults to :class:`ServiceConfig()`.
    store:
        An existing :class:`~repro.service.durability.DurableStore` to run
        on (implies ``durability=True``); by default a durable service
        creates a fresh store.  :meth:`open` is the recovery entry point
        that rebuilds a service *from* a store.
    overrides:
        Convenience keyword overrides applied on top of ``config``
        (``SkylineService(points, shard_count=8)``).
    """

    def __init__(
        self,
        points: Iterable[Point],
        config: Optional[ServiceConfig] = None,
        store: Optional[DurableStore] = None,
        _recovering: bool = False,
        _initial_cuts: Optional[Sequence[float]] = None,
        **overrides: object,
    ) -> None:
        base = config or ServiceConfig()
        self.config = dataclasses.replace(base, **overrides) if overrides else base
        if store is not None and not self.config.durability:
            self.config = dataclasses.replace(self.config, durability=True)
        # Retired ledger: absorbs each dead shard generation's (and merged
        # level component's) counters, so io_total() stays monotone.
        self._retired = IOStats()
        # Service-level maintenance ledger: topology-change escrow charges
        # land here.  Incremental merge work is charged to the *towers'*
        # private maintenance ledgers (one per shard, so parallel
        # maintenance never races a counter); ``self.maintenance``
        # aggregates them all and absorbs a disposed tower's ledger here,
        # keeping the maintenance total monotone.
        self._maintenance = IOStats()
        self.maintenance = IOStatsGroup([self._maintenance])
        self.stats = IOStatsGroup([self._retired, self._maintenance])
        # True while a parallel drain runs maintenance steps on worker
        # threads: layout changes then skip the member refresh (it walks
        # every tower's level tables, which the workers are mutating) and
        # one main-thread refresh settles the aggregate afterwards.
        self._suspend_refresh = False
        self.delta = DeltaBuffer()
        self.cache = ResultCache(self.config.cache_capacity)
        self.compactions = 0
        self.drains = 0
        # Auto-reclaim cadence (reclaim_every_topology_ops): topology
        # operations since the last store reclaim, and reclaims triggered.
        self._topology_ops_since_reclaim = 0
        self.auto_reclaims = 0
        # Duplicate queries coalesced within batches (computed once each).
        self.coalesced = 0
        # Build generation: seeds every shard's epoch so cache keys can
        # never collide across compactions.
        self._generation = 0
        # True while `open` replays the WAL suffix: replayed operations are
        # applied but never re-logged, re-snapshotted, auto-compacted or
        # auto-sealed (seals replay from their explicit WAL records).
        self._replaying = False
        # Set by `open` with the block-transfer cost of the last recovery.
        self.recovery: Optional[Dict[str, int]] = None
        # Per-query traces of the most recent query_many call.
        self.last_traces: List[QueryExecutionTrace] = []
        # Overlay lock: the one mutable-state lock of the read path.
        # Snapshot-concurrent read batches (the serving tier's read gate)
        # run query_many_traced on several threads at once; everything
        # those calls *mutate* -- the result cache's LRU order, the
        # coalesced counter, level-component ledger charges -- happens
        # under this lock, whose acquisitions are also the sync points
        # the ledger-ownership sanitizer requires between cross-thread
        # charges.  Shard-level charges need no lock: the persistent
        # worker pool pins each shard uid to one worker thread.
        self._overlay = tracked_lock("service.overlay")
        # Pluggable batch executor with the execute_worklists signature
        # ``(worklists, shard_query, parallelism) -> {(position, sid): answer}``.
        # None = the default transient thread pool.  The serving tier
        # installs a persistent uid-keyed worker pool here.
        self.batch_executor: Optional[BatchExecutor] = None
        self.router: ShardRouter
        self.shards: List[Shard] = []
        # Monotone shard-uid allocator: every shard instance (built at
        # construction, compaction, split or merge) gets a fresh uid, the
        # stable identity cache keys and tombstone buckets hang off.
        self._next_uid = 0
        self.store: Optional[DurableStore] = None
        self.wal: Optional[WriteAheadLog] = None
        # Global component-id allocator: component ids key tombstone owner
        # buckets in the shared delta buffer, so they must stay unique
        # across every shard's tower.
        self._comp_ids = 0
        # Lifetime merge counters of disposed towers, so merges_completed
        # stays monotone across compactions and topology changes.
        self._merges_retired = 0
        self._records_merged_retired = 0
        self._build_shards(list(points), cuts=_initial_cuts)
        self.topology = TopologyManager(self)
        if self.config.durability:
            durable_store = store if store is not None else DurableStore(
                self.config.shard_em_config()
            )
            virgin = (
                durable_store.latest_manifest() is None
                and durable_store.wal_durable == 0
            )
            if not virgin and not _recovering:
                # A used store holds some service's durable state; silently
                # running fresh points on top would make recovery resurrect
                # the old state and lose these points entirely.  Reject
                # before touching the store, so its recorded config and
                # ledgers stay exactly as the owning service left them.
                raise ValueError(
                    "store already holds a service's durable state; recover "
                    "it with SkylineService.open(store), or start on a "
                    "fresh DurableStore"
                )
            self.store = durable_store
            self.store.service_config = self.config
            self.wal = WriteAheadLog(self.store, self.config.wal_group_commit)
            self._refresh_members()
            if virgin:
                # Baseline snapshot at service birth: recovery always has a
                # snapshot to stand on, so a crash before the first
                # compaction replays only the WAL suffix past LSN 0.
                self._write_snapshot(folded_lsn=0, installed_lsn=0)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        store: DurableStore,
        config: Optional[ServiceConfig] = None,
        **overrides: object,
    ) -> "SkylineService":
        """Rebuild the service a crash (or clean shutdown) left on ``store``.

        Loads the newest surviving snapshot (``O(n/B)`` block reads) --
        including its level layout, memtable and tombstone table when the
        snapshot was anchored at a drain checkpoint -- replays the durable
        WAL suffix past its ``folded_lsn`` (``O(w/B)`` reads for ``w``
        unfolded records), and returns a service whose ``live_points()``
        and query answers equal the pre-crash durable state.  The
        block-transfer cost is recorded in :attr:`recovery` (and surfaced
        by :meth:`describe`), split into the terms the snapshot cadence
        trades against each other: ``snapshot_load_io`` (store reads for
        the point blocks), ``replay_io`` (store reads for the WAL suffix)
        and ``rebuild_io`` (shard- and level-machine transfers rebuilding
        the indexes, including rebuilds replayed compaction records
        trigger), with ``recovery_io`` their sum.
        """
        base = config or store.service_config or ServiceConfig()
        cfg = dataclasses.replace(base, **overrides) if overrides else base
        if not cfg.durability:
            cfg = dataclasses.replace(cfg, durability=True)
        start = store.stats.snapshot()
        manifest = store.latest_manifest()
        if manifest is None:  # virgin store: nothing to load or replay
            state = SnapshotState()
            folded = 0
        else:
            state = load_snapshot_state(store, manifest)
            folded = manifest.folded_lsn
        loaded = store.stats.snapshot()
        recorded_config = store.service_config
        try:
            service = cls(
                state.base_points,
                cfg,
                store=store,
                _recovering=True,
                # Topology-aware recovery: the manifest's recorded cuts are
                # authoritative, so a crash after any number of online
                # splits/merges restores the exact post-change topology
                # (re-cutting by size would silently undo them).
                _initial_cuts=None if manifest is None else manifest.cuts,
            )
            service._restore_snapshot_state(state)
            # Measure replay from after the constructor: on a virgin store
            # the constructor writes the baseline snapshot, which is birth
            # cost, not replay.
            constructed = store.stats.snapshot()
            replayed = 0
            service._replaying = True
            try:
                for record in store.read_wal_suffix(folded):
                    replayed += 1
                    if record.op == OP_INSERT:
                        service.insert(record.point())
                    elif record.op == OP_DELETE:
                        service.delete(record.point())
                    elif record.op == OP_COMPACT:
                        service.compact()
                    elif record.op == OP_SPLIT:
                        assert record.x is not None and record.ident is not None
                        service.split_shard(record.ident, record.x)
                    elif record.op == OP_MERGE:
                        assert record.ident is not None
                        service.merge_shards(record.ident)
                    elif record.op == OP_FOLD:
                        assert record.ident is not None
                        service.fold_shard(record.ident)
                    elif record.op in (OP_FLUSH, OP_DRAIN):
                        if not service.leveled:
                            raise ValueError(
                                "the WAL holds leveled-path records "
                                f"({record.op!r}); open the store with "
                                "update_path='leveled'"
                            )
                        if record.op == OP_FLUSH:
                            service._seal_memtable(record.ident)
                        else:
                            service.drain(record.ident)
                    else:  # pragma: no cover - corrupt record
                        raise ValueError(f"unknown WAL op {record.op!r}")
            finally:
                service._replaying = False
        except Exception:
            # A failed open must not poison the store: the constructor
            # records the opening config on it, and a later open without
            # an explicit config falls back to that record.
            store.service_config = recorded_config
            raise
        snapshot_load = loaded - start
        replay_io = store.stats.snapshot() - constructed
        # Every shard-side transfer so far happened inside this open():
        # the initial rebuild from the snapshot points plus any full
        # rebuilds replayed compaction records triggered.
        rebuild_io = service.query_io_total()
        snapshot_points = (
            len(state.base_points)
            + sum(len(points) for _, points in state.levels)
            + len(state.memtable)
        )
        service.recovery = {
            "snapshot_points": snapshot_points,
            "snapshot_levels": len(state.levels),
            "snapshot_generation": 0 if manifest is None else manifest.generation,
            "folded_lsn": folded,
            "snapshot_load_reads": snapshot_load.reads,
            "snapshot_load_io": snapshot_load.total,
            "replayed_records": replayed,
            "replay_reads": replay_io.reads,
            "replay_writes": replay_io.writes,
            "replay_io": replay_io.total,
            "rebuild_io": rebuild_io,
            "recovery_io": snapshot_load.total + replay_io.total + rebuild_io,
        }
        return service

    def _restore_snapshot_state(self, state: SnapshotState) -> None:
        """Rebuild the per-shard tower layouts a level-aware snapshot
        recorded.

        Private levels are re-installed in their owning shard's tower
        keyed by the manifest's ``(sid, level)`` entries.  A shard's
        inherited components are collapsed into *one* indexed overlay
        component (the manifest stores each shard's inherited union
        clipped to its range, dead points included): the inheritance
        *sharing* structure is an in-memory refcount optimisation, so
        recovery materialising it per shard is answer-identical, and the
        overlay build cost stays on the component's ledger where it is
        reported as ``rebuild_io``.
        """
        if (
            not state.levels
            and not state.overlays
            and not state.memtable
            and not state.tombstones
        ):
            return
        if not self.leveled:
            raise ValueError(
                "the snapshot holds a leveled layout; open it with "
                "update_path='leveled'"
            )
        comp_owner: Dict[Tuple[int, int], Tuple[str, int]] = {}
        for (sid, level), points in state.levels:
            tower = self.shards[sid].tower
            assert tower is not None
            comp = Component(
                self._next_comp_id(),
                points,
                em_config=self.config.shard_em_config(),
                epsilon=self.config.epsilon,
            )
            tower.install_level(level, comp)
            comp_owner[(sid, level)] = comp.owner
            for p in points:
                self._live_xs.add(p.x)
                self._live_ys.add(p.y)
        for sid, points in state.overlays:
            tower = self.shards[sid].tower
            assert tower is not None
            comp = Component(
                self._next_comp_id(),
                points,
                em_config=self.config.shard_em_config(),
                epsilon=self.config.epsilon,
            )
            tower.adopt_inherited(comp)
            comp_owner[(sid, -1)] = comp.owner
            for p in points:
                self._live_xs.add(p.x)
                self._live_ys.add(p.y)
        for p in state.memtable:
            self.delta.inserts[point_key(p)] = p
            self._live_xs.add(p.x)
            self._live_ys.add(p.y)
        for record in state.tombstones:
            victim = record.point()
            if record.level is None:
                owner: Tuple[str, int] = self.shards[
                    self.router.route_point(victim.x)
                ].owner
            else:
                assert record.sid is not None
                owner = comp_owner[(record.sid, record.level)]
            self.delta.add_tombstone(victim, owner)
            self._live_xs.discard(victim.x)
            self._live_ys.discard(victim.y)

    # ------------------------------------------------------------------
    # Construction / compaction
    # ------------------------------------------------------------------
    @property
    def leveled(self) -> bool:
        """Whether the leveled (per-shard tower) update path is active."""
        return self.config.update_path == "leveled"

    def towers(self) -> List[LevelManager]:
        """The live shards' towers, in shard order (empty on legacy)."""
        return [
            shard.tower for shard in self.shards if shard.tower is not None
        ]

    def _next_comp_id(self) -> int:
        """Allocate a service-unique component id (tombstone owner keys
        ``("c", comp_id)`` live in the shared delta buffer, so ids must
        never collide across towers)."""
        self._comp_ids += 1
        return self._comp_ids

    def _refresh_members(self) -> None:
        """Recompute the aggregate's member ledgers: the accumulator and
        maintenance ledgers, every shard machine, every tower's
        maintenance/retired pair and visible components (shared inherited
        components deduplicated by identity, so they are summed exactly
        once), and the durability store."""
        if self._suspend_refresh:
            return
        members = [self._retired, self._maintenance]
        maint_members = [self._maintenance]
        seen: set = set()
        for shard in self.shards:
            members.append(shard.stats)
            tower = shard.tower
            if tower is None:
                continue
            members.append(tower.maintenance)
            maint_members.append(tower.maintenance)
            members.append(tower.retired)
            for stats in tower.stats_members():
                if id(stats) not in seen:
                    seen.add(id(stats))
                    members.append(stats)
        if self.store is not None:
            members.append(self.store.stats)
        self.stats.set_members(members)
        self.maintenance.set_members(maint_members)

    def _build_shards(
        self, points: List[Point], cuts: Optional[Sequence[float]] = None
    ) -> None:
        """(Re)partition ``points`` into x-range shards.

        Without ``cuts`` the partition is re-cut size-balanced over
        ``ServiceConfig.shard_count`` (construction, major compaction);
        with explicit ``cuts`` the given topology is restored exactly --
        the recovery path, which must reproduce the post-split/merge
        layout a snapshot manifest recorded, not re-derive one.
        """
        self._live_xs = {p.x for p in points}
        self._live_ys = {p.y for p in points}
        if len(self._live_xs) < len(points) or len(self._live_ys) < len(points):
            raise ValueError(
                "points must be in general position (distinct x and distinct y); "
                "pre-process with repro.core.point.ensure_general_position"
            )
        # Retire the outgoing generation's ledgers (towers first: a full
        # rebuild folds every component into the base) before the new
        # shards start charging, so the aggregate never loses what was
        # paid.
        for shard in self.shards:
            self._dispose_tower(shard)
            self._retired.absorb(shard.stats)
        if cuts is None:
            cuts = size_balanced_cuts(points, self.config.shard_count)
        # Topology versions stay monotone across full rebuilds too.
        version = self.router.version + 1 if self.shards else 0
        self.router = ShardRouter(cuts)
        self.router.version = version
        buckets: List[List[Point]] = [[] for _ in range(self.router.shard_count)]
        for point in points:
            buckets[self.router.route_point(point.x)].append(point)
        self._generation += 1
        self.shards = []
        for sid, bucket in enumerate(buckets):
            x_lo, x_hi = self.router.shard_range(sid)
            self.shards.append(self._new_shard(sid, x_lo, x_hi, bucket))
        self._refresh_members()

    def _new_shard(
        self,
        sid: int,
        x_lo: float,
        x_hi: float,
        points: Sequence[Point],
        charge_maintenance: bool = False,
    ) -> Shard:
        """Build one shard with a fresh uid.

        With ``charge_maintenance`` the build cost is mirrored onto the
        maintenance ledger and the shard's private ledger reset before it
        joins the aggregate -- the topology-change escrow, matching how
        the level scheduler charges staged merge outputs.  Without it the
        build stays on the shard's own ledger (construction/compaction
        generations, the logarithmic-method accounting).

        On the leveled path the shard also gets its private level tower,
        scoped to its x-range, with its own maintenance/retired ledger
        pair (so per-shard maintenance can run on parallel workers
        without racing a counter).
        """
        self._next_uid += 1
        shard = Shard(
            sid,
            x_lo,
            x_hi,
            points,
            self.config.shard_em_config(),
            epsilon=self.config.epsilon,
            epoch=self._generation,
            uid=self._next_uid,
        )
        if charge_maintenance:
            self._maintenance.record_read(shard.stats.reads)
            self._maintenance.record_write(shard.stats.writes)
            shard.stats.reset()
        if self.leveled:
            shard.tower = LevelManager(
                em_config=self.config.shard_em_config(),
                epsilon=self.config.epsilon,
                block_size=self.config.block_size,
                memtable_capacity=self.config.delta_threshold,
                level_growth=self.config.level_growth,
                merge_step_blocks=self.config.merge_step_blocks,
                delta=self.delta,
                maintenance=IOStats(),
                retired=IOStats(),
                on_layout_change=self._refresh_members,
                next_comp_id=self._next_comp_id,
                x_lo=x_lo,
                x_hi=x_hi,
            )
        return shard

    def _dispose_tower(self, shard: Shard) -> None:
        """Fully retire a shard's tower: every private component and the
        last references to its inherited ones are folded into the
        retired accumulator, its maintenance ledger into the service
        maintenance ledger, and its lifetime merge counters into the
        service accumulators -- so every aggregate stays monotone."""
        tower = shard.tower
        if tower is None:
            return
        self._merges_retired += tower.scheduler.merges_completed
        self._records_merged_retired += tower.scheduler.records_merged
        tower.reset()
        self._maintenance.absorb(tower.maintenance)
        self._retired.absorb(tower.retired)
        shard.tower = None

    def _release_tower_components(
        self, shard: Shard
    ) -> List[Tuple[Component, float, float]]:
        """Hand a retiring shard's tower components over for a topology
        change as ``(component, x_lo, x_hi)`` hand-over entries: private
        components (answering for the whole shard range) and inherited
        references (answering for their adoption intervals -- **not**
        re-widened to the shard range, which could cover points a fold
        already moved into a base) are released *without* being read or
        retired (the caller re-adopts them into the child towers), the
        scheduler's queue and staged output are discarded (debt already
        mirrored stays counted; the staged ledger never joined the
        aggregate), and the tower's ledgers and counters are folded into
        the service accumulators."""
        tower = shard.tower
        if tower is None:
            return []
        self._merges_retired += tower.scheduler.merges_completed
        self._records_merged_retired += tower.scheduler.records_merged
        tower.scheduler.clear()
        entries = [
            (comp, tower.x_lo, tower.x_hi)
            for comp in tower.private_components()
        ]
        for ref in list(tower.inherited):
            tower.inherited.remove(ref)
            ref.comp.refs -= 1
            entries.append((ref.comp, ref.x_lo, ref.x_hi))
        tower.frozen = []
        tower.levels = {}
        self._maintenance.absorb(tower.maintenance)
        self._retired.absorb(tower.retired)
        shard.tower = None
        return entries

    def _adopt_base_component(self, shard: Shard) -> Optional[Component]:
        """Wrap a retiring shard's base index as a zero-I/O component.

        The shard's ledger object moves into the component (nothing is
        copied, nothing is double counted) and the shard's tombstone
        bucket is re-owned to the component -- the victims stay resident
        in the adopted points.  Returns ``None`` (retiring the ledger)
        for an empty base.
        """
        if not shard.points:
            self._retired.absorb(shard.stats)
            return None
        comp = Component.adopt(
            self._next_comp_id(),
            shard.points,
            shard.stats,
            shard.storage,
            shard.index,
        )
        for key, victim in self.delta.owned_tombstones(shard.owner).items():
            if key in self.delta.tombstones:
                self.delta.add_tombstone(victim, comp.owner)
        return comp

    def _bump_region(self, x: float) -> None:
        """Invalidate cached answers overlapping the shard region of ``x``."""
        self.shards[self.router.route_point(x)].write_version += 1

    def compact(self) -> None:
        """Major compaction: fold *everything* -- memtable, frozen
        memtables, every level, minus tombstones -- into rebuilt,
        size-rebalanced base shards.

        On the leveled path this is the explicit operator-driven fold (and
        the one place tombstones against base-resident points are
        reclaimed); the incremental scheduler handles routine maintenance,
        so no *update* ever triggers this ``O(n/B)`` rebuild.  On the
        legacy path it is the threshold-triggered stop-the-world
        compaction of old.  Rebuild I/Os are charged to the new
        generation's ledgers -- the amortised cost the logarithmic method
        pays for keeping queries on static-structure speeds.

        On a durable service the compaction first logs a checkpoint record
        (forcing the whole WAL tail durable) and, every
        ``snapshot_every_compactions``-th checkpoint, serialises the
        rebuilt shards as a block-level snapshot.
        """
        checkpoint = None
        if self.wal is not None and not self._replaying:
            checkpoint = self.wal.log_compact()
        # _build_shards disposes every old shard's tower (retiring its
        # components and ledgers) before the rebuilt generation charges.
        self._build_shards(self.live_points())
        self.delta.clear()
        self.cache.invalidate_all()
        self.compactions += 1
        if (
            checkpoint is not None
            and self._checkpoints % self.config.snapshot_every_compactions == 0
        ):
            self._write_snapshot(
                folded_lsn=checkpoint.lsn, installed_lsn=checkpoint.lsn
            )

    def drain(self, sid: Optional[int] = None) -> Dict[str, int]:
        """Pay every outstanding transfer of incremental merge debt now.

        The explicit full-drain entry point of the leveled path:
        completes every tower's active merge and every queued one
        (flushing nothing new -- the memtable keeps absorbing writes),
        charging the remaining debt to the towers' maintenance ledgers in
        one call.  With ``sid`` only that shard's private tower is
        drained -- its neighbours' debt is untouched, the per-shard
        maintenance the refactor buys.  A full drain is a durability
        checkpoint: it logs a ``drain`` WAL record and, on the snapshot
        cadence, serialises a *level-aware* snapshot (per-shard level
        blocks plus overlays, memtable and tombstone table) the next
        :meth:`open` restores exactly; a per-shard drain is WAL-logged
        too (replay must reproduce the exact tower states) but is not a
        snapshot anchor.  A no-op on the legacy path.

        When the installed batch executor can run per-shard maintenance
        (the serving tier's :class:`~repro.serve.workers.ShardWorkerPool`),
        a full drain pays each tower's debt on that shard's dedicated
        worker in parallel -- every charge lands on tower-private
        ledgers, so the totals are bit-identical to a serial drain.
        """
        if not self.leveled:
            return {"merge_io": 0, "merges_completed": 0}
        if sid is not None and not 0 <= sid < len(self.shards):
            raise ValueError(f"no shard {sid}: {len(self.shards)} shards")
        checkpoint = None
        if self.wal is not None and not self._replaying:
            checkpoint = self.wal.log_drain(sid)
        if sid is None:
            towers = self.towers()
            runner = getattr(self.batch_executor, "run_maintenance", None)
            if runner is not None and len(towers) > 1:
                # Worker-side merge completions would race the member
                # refresh (it walks every tower's layout); suspend it and
                # settle the aggregate once, on this thread, afterwards.
                self._suspend_refresh = True
                try:
                    # repro: calls(ShardWorkerPool.run_maintenance)
                    charges = runner(
                        {
                            shard.uid: shard.tower.drain
                            for shard in self.shards
                            if shard.tower is not None
                        }
                    )
                finally:
                    self._suspend_refresh = False
                charged = sum(charges.values())
                self._refresh_members()
            else:
                charged = sum(tower.drain() for tower in towers)
            self.drains += 1
            if (
                checkpoint is not None
                and self._checkpoints % self.config.snapshot_every_compactions
                == 0
            ):
                self._write_snapshot(
                    folded_lsn=checkpoint.lsn, installed_lsn=checkpoint.lsn
                )
        else:
            tower = self.shards[sid].tower
            charged = 0 if tower is None else tower.drain()
        return {
            "merge_io": charged,
            "merges_completed": self.merges_completed,
        }

    # ------------------------------------------------------------------
    # Online topology changes
    # ------------------------------------------------------------------
    def _split_cut(self, sid: int) -> Optional[float]:
        """The size-balanced midpoint of shard ``sid``'s range's live
        records (base residents, memtable, the shard's own tower);
        ``None`` when fewer than two records live there."""
        x_lo, x_hi = self.router.shard_range(sid)
        shard = self.shards[sid]
        candidates = [
            p for p in shard.points if not self.delta.is_deleted(p)
        ]
        candidates += [
            p for p in self.delta.inserts.values() if x_lo <= p.x < x_hi
        ]
        if shard.tower is not None:
            for comp in shard.tower.private_components():
                candidates += [
                    p for p in comp.points if not self.delta.is_deleted(p)
                ]
            for ref in shard.tower.inherited:
                candidates += [
                    p for p in ref.points() if not self.delta.is_deleted(p)
                ]
        return size_balanced_midpoint(candidates)

    def _assign_components(
        self,
        entries: List[Tuple[Component, float, float]],
        children: List[Shard],
    ) -> None:
        """Hand released ``(component, x_lo, x_hi)`` entries to the child
        towers: each child whose x-range holds at least one point of an
        entry's interval adopts the component *for that intersection* (a
        refcount bump; readers see only the interval).  Pure metadata --
        no block is read.  A component both merge parents referenced
        arrives as two entries with disjoint intervals and the child
        adopts both: the intervals, not the child's range, decide what
        is readable, so a region some earlier fold moved into a base can
        never be resurrected.  Every entry finds at least one home: its
        interval is non-empty and the children's ranges cover the
        released towers' ranges."""
        for comp, x_lo, x_hi in entries:
            adopted = False
            for child in children:
                tower = child.tower
                assert tower is not None
                if tower.adopt_inherited(comp, x_lo, x_hi) is not None:
                    adopted = True
            assert adopted, f"component {comp!r} lost in topology change"

    def split_shard(
        self, sid: int, cut: Optional[float] = None
    ) -> Optional[float]:
        """Split the hot shard ``sid`` in two at ``cut`` -- on the
        per-shard-tower path an O(1) *metadata move*, never a rebuild.

        The default cut is the size-balanced midpoint of every live
        record in the shard's x-range.  The retiring shard's base index
        is adopted as a zero-I/O component (its ledger object moves with
        it), its tower's components are handed to the two children
        *whole* -- refcounted, clipped to each child's range by every
        reader -- and the shared memtable needs no cut at all: its
        range partition moves with the router.  Nothing is read or
        rewritten; the only charges are the children's empty base builds,
        escrowed on the maintenance ledger.  Any staged (unpaid) merge
        output of the retiring tower is discarded -- its inputs stay
        visible, so correctness is untouched and already-mirrored debt
        stays counted.  On a durable service an ``OP_SPLIT`` record pins
        the cut so replay reproduces the post-split topology
        bit-for-bit.

        Returns the cut, or ``None`` when no valid cut exists (fewer
        than two live records in the range).  Shards to the right shift
        one position; their uids -- and therefore their cached answers
        and tombstone buckets -- are untouched.

        On the legacy path (no towers) the children are rebuilt from the
        shard's live residents plus the memtable slice, as before.
        """
        if not 0 <= sid < len(self.shards):
            raise ValueError(f"no shard {sid}: {len(self.shards)} shards")
        shard = self.shards[sid]
        x_lo, x_hi = self.router.shard_range(sid)
        if cut is None:
            cut = self._split_cut(sid)
            if cut is None:
                return None
        if not x_lo < cut < x_hi:
            raise ValueError(
                f"cut {cut} outside shard {sid}'s range [{x_lo}, {x_hi})"
            )
        if self.wal is not None and not self._replaying:
            self.wal.log_split(sid, cut)
        charged_before = self.maintenance.total
        if self.leveled:
            tower = shard.tower
            assert tower is not None
            # Records whose *ownership* moves (for reporting); no block
            # of any of them is transferred.
            touched = len(shard.points) + tower.resident()
            entries: List[Tuple[Component, float, float]] = []
            base = self._adopt_base_component(shard)
            if base is not None:
                entries.append((base, x_lo, x_hi))
            entries.extend(self._release_tower_components(shard))
            self.router.split_cut(sid, cut)
            children = [
                self._new_shard(sid, x_lo, cut, [], charge_maintenance=True),
                self._new_shard(
                    sid + 1, cut, x_hi, [], charge_maintenance=True
                ),
            ]
            self.shards[sid : sid + 1] = children
            self._assign_components(entries, children)
        else:
            touched = len(shard.points)
            memtable_slice = self.delta.take_inserts_in_range(x_lo, x_hi)
            touched += len(memtable_slice)
            # The old shard's residents, minus its own tombstones
            # (consumed: the children are built from live points, a
            # local reclamation).
            owned = self.delta.owned_tombstones(shard.owner)
            union = [
                p
                for p in shard.points
                if point_key(p) not in owned and not self.delta.is_deleted(p)
            ]
            union.extend(memtable_slice)
            for key in owned:
                if key in self.delta.tombstones:
                    self.delta.drop_tombstone(key)
            if shard.points:
                self._maintenance.record_read(
                    math.ceil(len(shard.points) / self.config.block_size)
                )
            self._retired.absorb(shard.stats)
            self.router.split_cut(sid, cut)
            left = [p for p in union if p.x < cut]
            right = [p for p in union if p.x >= cut]
            self.shards[sid : sid + 1] = [
                self._new_shard(sid, x_lo, cut, left, charge_maintenance=True),
                self._new_shard(
                    sid + 1, cut, x_hi, right, charge_maintenance=True
                ),
            ]
        for position in range(sid + 2, len(self.shards)):
            self.shards[position].sid = position
        self._refresh_members()
        self.topology.record(
            "split", sid, cut, touched, self.maintenance.total - charged_before
        )
        self._maybe_auto_reclaim()
        return cut

    def merge_shards(self, sid: int) -> float:
        """Merge the adjacent cold shards ``sid`` and ``sid + 1`` into one.

        On the per-shard-tower path this is the same O(1) metadata move
        as a split, run in reverse: both retiring bases are adopted as
        zero-I/O components, both towers' component sets are handed to
        the single child (a component both parents shared -- both halves
        of an earlier split -- is handed over once), and the memtable
        needs no work.  On the legacy path the merged shard is rebuilt
        from both inputs' live residents, charged to the maintenance
        ledger.  On a durable service an ``OP_MERGE`` record replays the
        change at the same boundary.  Returns the removed cut.  Shards
        to the right shift one position left with uids untouched.
        """
        if not 0 <= sid < len(self.shards) - 1:
            raise ValueError(
                f"no adjacent pair at {sid}: {len(self.shards)} shards"
            )
        if self.wal is not None and not self._replaying:
            self.wal.log_merge(sid)
        charged_before = self.maintenance.total
        pair = self.shards[sid : sid + 2]
        x_lo, _ = self.router.shard_range(sid)
        _, x_hi = self.router.shard_range(sid + 1)
        if self.leveled:
            touched = sum(
                len(s.points)
                + (0 if s.tower is None else s.tower.resident())
                for s in pair
            )
            entries: List[Tuple[Component, float, float]] = []
            for shard in pair:
                base = self._adopt_base_component(shard)
                if base is not None:
                    entries.append((base, shard.x_lo, shard.x_hi))
                entries.extend(self._release_tower_components(shard))
            cut = self.router.merge_cut(sid)
            children = [
                self._new_shard(sid, x_lo, x_hi, [], charge_maintenance=True)
            ]
            self.shards[sid : sid + 2] = children
            self._assign_components(entries, children)
        else:
            touched = sum(len(s.points) for s in pair)
            union: List[Point] = []
            for shard in pair:
                owned = self.delta.owned_tombstones(shard.owner)
                union.extend(
                    p
                    for p in shard.points
                    if point_key(p) not in owned
                    and not self.delta.is_deleted(p)
                )
                for key in owned:
                    if key in self.delta.tombstones:
                        self.delta.drop_tombstone(key)
                if shard.points:
                    self._maintenance.record_read(
                        math.ceil(len(shard.points) / self.config.block_size)
                    )
                self._retired.absorb(shard.stats)
            cut = self.router.merge_cut(sid)
            self.shards[sid : sid + 2] = [
                self._new_shard(sid, x_lo, x_hi, union, charge_maintenance=True)
            ]
        for position in range(sid + 1, len(self.shards)):
            self.shards[position].sid = position
        self._refresh_members()
        self.topology.record(
            "merge", sid, cut, touched, self.maintenance.total - charged_before
        )
        self._maybe_auto_reclaim()
        return cut

    def fold_shard(self, sid: int) -> int:
        """Rebuild shard ``sid`` in place from its range's live records --
        no cut moves, no neighbours touched.

        The topology manager's pressure-relief action, and the one
        topology operation that *does* move data: the shard's private
        tower (frozen memtables, levels, its clip of every inherited
        component) and its memtable cut are compacted into a rebuilt
        base, and every tombstone whose victim lies in the range is
        consumed -- masked copies left in surviving shared components
        are unreachable, since no tower clips that range any more.
        Reading the shard's base and the indexed components' clipped
        slices plus building the child is charged to the maintenance
        ledger, bounded by the range's resident and tower mass.  A
        shared component's last reference retires it here.  Logged as an
        ``OP_FOLD`` record on a durable service.  Returns the number of
        records the fold touched.
        """
        if not 0 <= sid < len(self.shards):
            raise ValueError(f"no shard {sid}: {len(self.shards)} shards")
        if self.wal is not None and not self._replaying:
            self.wal.log_fold(sid)
        charged_before = self.maintenance.total
        shard = self.shards[sid]
        x_lo, x_hi = self.router.shard_range(sid)
        touched = len(shard.points)
        handed: List[Point] = []
        tower = shard.tower
        if tower is not None:
            # Pull the tower's live mass (private components whole,
            # inherited ones through their refs' intervals) into the
            # fold, charging the reads a real handover performs.
            slices = [
                (comp, comp.points) for comp in tower.private_components()
            ] + [(ref.comp, ref.points()) for ref in tower.inherited]
            for comp, rows in slices:
                if not rows:
                    continue
                touched += len(rows)
                if comp.index is not None:
                    self._maintenance.record_read(
                        math.ceil(len(rows) / self.config.block_size)
                    )
                handed.extend(
                    p for p in rows if not self.delta.is_deleted(p)
                )
        memtable_slice = self.delta.take_inserts_in_range(x_lo, x_hi)
        handed.extend(memtable_slice)
        touched += len(memtable_slice)
        union = [
            p for p in shard.points if not self.delta.is_deleted(p)
        ]
        union.extend(handed)
        # Consume every tombstone whose victim lies in the folded range,
        # whoever owns it: the new base is built from live points only,
        # and any masked copy left in a surviving shared component is
        # outside every referencing tower's clip.
        for key, victim in list(self.delta.tombstones.items()):
            if x_lo <= victim.x < x_hi:
                self.delta.drop_tombstone(key)
        if shard.points:
            self._maintenance.record_read(
                math.ceil(len(shard.points) / self.config.block_size)
            )
        self._dispose_tower(shard)
        self._retired.absorb(shard.stats)
        self.router.version += 1
        self.shards[sid] = self._new_shard(
            sid, x_lo, x_hi, union, charge_maintenance=True
        )
        self._refresh_members()
        self.topology.record(
            "fold", sid, None, touched, self.maintenance.total - charged_before
        )
        self._maybe_auto_reclaim()
        return touched

    def _maybe_auto_reclaim(self) -> None:
        """Auto-reclaim hook, called after every topology operation.

        With ``reclaim_every_topology_ops=N`` on a durable service, every
        Nth online split/merge/fold triggers :meth:`reclaim`, so the store
        sheds superseded snapshots and folded WAL blocks at the same
        cadence the topology churns them out.  Never fires during WAL
        replay: recovery must see the store exactly as it was persisted.
        """
        every = self.config.reclaim_every_topology_ops
        if every < 1 or self.store is None or self._replaying:
            return
        self._topology_ops_since_reclaim += 1
        if self._topology_ops_since_reclaim >= every:
            self._topology_ops_since_reclaim = 0
            self.auto_reclaims += 1
            self.reclaim()

    def _maybe_rebalance(self) -> None:
        """Adaptive-topology hook, called once per applied update."""
        if self._replaying or not self.config.adaptive_topology:
            return
        self.topology.on_update()

    @property
    def _checkpoints(self) -> int:
        """Checkpoints taken so far (compactions plus drains): the counter
        the snapshot cadence runs on."""
        return self.compactions + self.drains

    def _write_snapshot(self, folded_lsn: int, installed_lsn: int) -> None:
        """Serialise the shards -- and, at a drain checkpoint, every
        shard's tower layout, the memtable and the tombstone table -- and
        chain a manifest.

        Private levels are keyed ``(sid, level)``.  A shard's inherited
        components are serialised as one *overlay* per shard: the union
        of their points clipped to the shard's range, dead points
        included -- exactly what :meth:`_restore_snapshot_state` rebuilds
        as a single overlay component.  Tombstones name their owner as
        ``(sid, level)`` for a private level, ``(sid, -1)`` for the
        overlay of the shard whose range holds the victim, or base
        (re-routed by x at load).
        """
        assert self.store is not None
        blocks, total = write_snapshot_blocks(
            self.store, [shard.points for shard in self.shards]
        )
        level_blocks: Tuple[Tuple[Tuple[int, int], Tuple], ...] = ()
        level_counts: Tuple[Tuple[Tuple[int, int], int], ...] = ()
        overlay_blocks: Tuple[Tuple[int, Tuple], ...] = ()
        overlay_counts: Tuple[Tuple[int, int], ...] = ()
        memtable_points: List[Point] = []
        tombstone_records: List[TombstoneRecord] = []
        if self.leveled:
            # Owner key of a private level component -> its (sid, level).
            owner_slot: Dict[object, Tuple[int, int]] = {}
            for shard in self.shards:
                tower = shard.tower
                assert tower is not None
                # Snapshots are only taken at quiescent checkpoints: no
                # frozen memtable awaits a flush and no merge is in
                # flight in any tower, so each layout is exactly the
                # visible levels plus the inherited overlay.
                assert not tower.frozen and tower.scheduler.active is None
                for j in sorted(tower.levels):
                    comp = tower.levels[j]
                    level_blocks += (
                        (
                            (shard.sid, j),
                            write_record_blocks(self.store, comp.points),
                        ),
                    )
                    level_counts += (((shard.sid, j), len(comp.points)),)
                    owner_slot[comp.owner] = (shard.sid, j)
                overlay_points: List[Point] = []
                for ref in tower.inherited:
                    overlay_points.extend(ref.points())
                overlay_points.sort(key=lambda p: (p.x, p.y))
                if overlay_points:
                    overlay_blocks += (
                        (
                            shard.sid,
                            write_record_blocks(self.store, overlay_points),
                        ),
                    )
                    overlay_counts += ((shard.sid, len(overlay_points)),)
            memtable_points = sorted(
                self.delta.inserts.values(), key=lambda p: (p.x, p.y)
            )
            for key, victim in self.delta.tombstones.items():
                owner = self.delta.tombstone_owner(key)
                if owner in owner_slot:
                    slot_sid, slot_level = owner_slot[owner]
                    record = TombstoneRecord(
                        victim.x,
                        victim.y,
                        victim.ident,
                        level=slot_level,
                        sid=slot_sid,
                    )
                elif isinstance(owner, tuple) and owner[0] == "c":
                    # An inherited component owns the victim: it lands in
                    # the overlay of the shard whose range holds it.
                    record = TombstoneRecord(
                        victim.x,
                        victim.y,
                        victim.ident,
                        level=-1,
                        sid=self.router.route_point(victim.x),
                    )
                else:
                    record = TombstoneRecord(victim.x, victim.y, victim.ident)
                tombstone_records.append(record)
        memtable_blocks = write_record_blocks(self.store, memtable_points)
        tombstone_blocks = write_record_blocks(self.store, tombstone_records)
        self.store.install_manifest(
            SnapshotManifest(
                generation=self._generation,
                folded_lsn=folded_lsn,
                installed_lsn=installed_lsn,
                cuts=tuple(self.router.cuts),
                shard_blocks=blocks,
                point_count=total,
                level_blocks=level_blocks,
                level_counts=level_counts,
                overlay_blocks=overlay_blocks,
                overlay_counts=overlay_counts,
                memtable_blocks=memtable_blocks,
                memtable_count=len(memtable_points),
                tombstone_blocks=tombstone_blocks,
                tombstone_count=len(tombstone_records),
            )
        )

    def delta_exceeds_threshold(self) -> bool:
        """Whether a background scheduler should trigger :meth:`compact`
        (legacy path) or a memtable seal is due (leveled path -- the
        memtable is one shared in-memory budget, so the bar is the total
        pending insert count, exactly as on the legacy path)."""
        if self.leveled:
            return len(self.delta.inserts) >= self.config.delta_threshold
        return len(self.delta) >= self.config.delta_threshold

    def _maybe_compact(self) -> None:
        # During replay, compactions happen exactly where the WAL recorded
        # them, never where the threshold would re-trigger one.
        if self._replaying:
            return
        if self.config.auto_compact and self.delta_exceeds_threshold():
            self.compact()

    def _tick(self, x: float) -> None:
        """Pay one update's bounded merge step on the tower owning ``x``.

        Per-shard towers localise the piggyback: an update pays down the
        merge debt of the shard it landed in, never a neighbour's."""
        shard = self.shards[self.router.route_point(x)]
        assert shard.tower is not None
        shard.tower.tick()

    def _maybe_seal(self) -> None:
        """Seal the memtable when its shared budget fills (leveled path).

        The threshold is the *total* pending insert count -- the memtable
        is one in-memory budget cut by shard range, not a per-shard one
        -- and a seal freezes every shard's non-empty cut into its own
        tower.  Logged as one all-shards flush record; replay seals the
        same cuts at the same boundary (shard-scoped flush records,
        ``ident=sid``, replay a single shard's cut)."""
        if self._replaying or not self.leveled:
            return
        if not self.config.auto_compact:
            return
        if len(self.delta.inserts) >= self.config.delta_threshold:
            if self.wal is not None:
                self.wal.log_flush()
            self._seal_memtable()

    def _maybe_reclaim_tombstones(self) -> None:
        """Safety valve for delete-heavy workloads (leveled path).

        Merges only consume tombstones owned by the components they
        rewrite, and base-resident tombstones die only at a major
        compaction -- so a pure-delete flood would otherwise grow the
        table without bound and pay the ``ceil(resident/B)`` fallback
        rescan on every overlapping query forever.  Once the tombstones
        alone reach ``delta_threshold * level_growth`` (a deliberately
        higher bar than the memtable seal), an auto-compacting service
        pays one major compaction to reclaim them: amortised over that
        many deletes the cost is the same logarithmic-method budget, and
        the routine insert path still never triggers a rebuild.
        """
        if self._replaying or not self.leveled or not self.config.auto_compact:
            return
        if (
            len(self.delta.tombstones)
            >= self.config.delta_threshold * self.config.level_growth
        ):
            self.compact()

    def _seal_memtable(self, sid: Optional[int] = None) -> None:
        """Freeze shard ``sid``'s cut of the pending inserts into an
        immutable frozen component on its tower and schedule the
        incremental flush into level 1.  ``None`` seals every shard's cut
        (full drains, and replay of pre-per-shard WAL flush records that
        carry no shard id)."""
        assert self.leveled
        targets = list(self.shards) if sid is None else [self.shards[sid]]
        for shard in targets:
            tower = shard.tower
            assert tower is not None
            sealed = self.delta.take_inserts_in_range(shard.x_lo, shard.x_hi)
            if sealed:
                tower.seal(sealed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of the live points inside ``query``, sorted by x."""
        return self.query_many([query])[0]

    def query_many(
        self, queries: Sequence[RangeQuery], use_cache: bool = True
    ) -> List[List[Point]]:
        """Answer a batch; ``result[i]`` answers ``queries[i]``.

        Cache hits are served immediately and duplicate queries within the
        batch are coalesced (computed once, copied to every occurrence);
        the remaining misses are regrouped into per-shard worklists
        (sorted by variant and x for buffer-pool locality), executed --
        across a thread pool when the service is configured with
        ``parallelism > 1`` -- and merged per query with the level
        components and the pending memtable.

        After the call, :attr:`last_traces` holds one
        :class:`QueryExecutionTrace` per query (routing, cache hit,
        coalescing, tombstone fallback), aligned with the results.
        ``last_traces`` makes this entry point single-caller; concurrent
        callers (the engine's snapshot-concurrent batch path) use
        :meth:`query_many_traced`, which returns the traces instead.
        """
        results, traces = self.query_many_traced(queries, use_cache)
        self.last_traces = traces
        return results

    def query_many_traced(
        self, queries: Sequence[RangeQuery], use_cache: bool = True
    ) -> Tuple[List[List[Point]], List[QueryExecutionTrace]]:
        """:meth:`query_many`, returning ``(results, traces)`` directly.

        Safe for concurrent read-only callers (no writer may run beside
        them -- the serving tier's read/write gate guarantees that):
        nothing of the batch state lands on the service instance, and the
        shared structures a call *does* mutate -- the result cache's LRU
        order, the ``coalesced`` counter, level-component ledgers on
        tombstone fallbacks -- are serialized under the overlay lock.
        """
        results: List[Optional[List[Point]]] = [None] * len(queries)
        traces: List[Optional[QueryExecutionTrace]] = [None] * len(queries)
        plan: Dict[int, Tuple[Tuple, List[int]]] = {}
        leaders: Dict[Tuple, int] = {}
        followers: List[Tuple[int, int]] = []
        misses: List[Tuple[int, RangeQuery]] = []
        for position, query in enumerate(queries):
            shard_ids = self.router.shards_for(query)
            key = make_key(
                query,
                [
                    (self.shards[sid].uid, self.shards[sid].write_version)
                    for sid in shard_ids
                ],
            )
            if use_cache:
                with self._overlay:
                    cached = self.cache.get(key)
            else:
                cached = None
            if cached is not None:
                results[position] = cached
                traces[position] = QueryExecutionTrace(
                    shard_ids=tuple(shard_ids), cache_hit=True
                )
                continue
            if key in leaders:
                followers.append((position, leaders[key]))
                continue
            leaders[key] = position
            plan[position] = (key, shard_ids)
            misses.append((position, query))
        if misses:
            worklists = build_worklists(
                misses, {position: plan[position][1] for position, _ in misses}
            )
            executor = self.batch_executor or execute_worklists
            # repro: calls(ShardWorkerPool.__call__)
            # repro: calls(execute_worklists)
            local = executor(
                worklists, self._shard_query, self.config.parallelism
            )
            for position, query in misses:
                key, shard_ids = plan[position]
                merged = merge_shard_skylines(
                    [local[(position, sid)][0] for sid in shard_ids]
                )
                fallback = any(local[(position, sid)][1] for sid in shard_ids)
                if self.leveled:
                    sources: List[Sequence[Point]] = [merged]
                    # Component queries charge the components' private
                    # ledgers; concurrent batches reach here from several
                    # threads, so the charges serialize on the overlay
                    # lock (each acquisition is a declared sync point).
                    # The fan covers exactly the visited shards' towers:
                    # private components whole, inherited ones through
                    # their refs' adoption intervals (disjoint across
                    # live refs, so a component shared by two visited
                    # towers contributes each point at most once, and a
                    # region an earlier fold moved into a base is never
                    # re-read from the shared component).
                    with self._overlay:
                        for sid in shard_ids:
                            shard = self.shards[sid]
                            tower = shard.tower
                            assert tower is not None
                            for comp in tower.private_components():
                                comp_result, comp_fallback = (
                                    self._component_query(comp, query)
                                )
                                sources.append(comp_result)
                                fallback = fallback or comp_fallback
                            for ref in tower.inherited:
                                comp_result, comp_fallback = (
                                    self._component_query(
                                        ref.comp,
                                        query,
                                        clip_lo=ref.x_lo,
                                        clip_hi=ref.x_hi,
                                    )
                                )
                                sources.append(comp_result)
                                fallback = fallback or comp_fallback
                        # Unsorted is fine: merge_component_skylines
                        # orders the whole union itself.
                        sources.append(self.delta.candidates_in(query))
                    merged = merge_component_skylines(sources)
                else:
                    merged = merge_with_delta(
                        merged, self.delta.candidates_in(query)
                    )
                if use_cache:
                    with self._overlay:
                        self.cache.put(key, merged)
                results[position] = merged
                # The fallback flag comes from the executors themselves
                # (each computed it once) -- never re-derived here.
                traces[position] = QueryExecutionTrace(
                    shard_ids=tuple(shard_ids),
                    tombstone_fallback=fallback,
                )
        if followers:
            with self._overlay:
                self.coalesced += len(followers)
        for position, leader_position in followers:
            results[position] = list(results[leader_position])  # type: ignore[arg-type]
            leader_trace = traces[leader_position]
            assert leader_trace is not None
            traces[position] = dataclasses.replace(leader_trace, coalesced=True)
        return results, traces  # type: ignore[return-value]

    def _shard_query(self, sid: int, query: RangeQuery) -> Tuple[List[Point], bool]:
        """One shard's local skyline inside ``query``, tombstone-aware.

        A tombstone inside the rectangle invalidates the shard's static
        answer (the deleted point may have dominated points that must now
        resurface), so the local skyline is recomputed from the shard's
        resident points -- a scan charged as ``ceil(resident / B)`` block
        reads on the shard's own ledger (the fallback is not free, and
        charging the shard keeps parallel totals exact); otherwise the
        static structure answers at full I/O efficiency.  Returns the
        answer plus whether the fallback fired (surfaced in the batch's
        :class:`QueryExecutionTrace`).
        """
        shard = self.shards[sid]
        if self.delta.tombstone_hits(query, shard.x_lo, shard.x_hi, shard.owner):
            scanned = len(shard.points)
            shard.stats.record_read(
                max(1, math.ceil(scanned / self.config.block_size))
            )
            live = [p for p in shard.points if not self.delta.is_deleted(p)]
            return range_skyline(live, query), True
        return shard.query(query), False

    def _component_query(
        self,
        comp: Component,
        query: RangeQuery,
        clip_lo: float = float("-inf"),
        clip_hi: float = float("inf"),
    ) -> Tuple[List[Point], bool]:
        """One component's local skyline inside ``query``, restricted to
        the half-open x-range ``[clip_lo, clip_hi)`` (the visiting
        tower's, when the component is inherited).

        The clip narrows the query's x-window -- ``x_hi`` is inclusive,
        so the open upper bound becomes the previous float -- and every
        downstream step (the prune bisect, the rectangle filter, the
        tombstone check, the fallback rescan) runs against the clipped
        window, so a shared component charges and returns only the
        visiting shard's slice.  Skyline-exactness survives the cut
        because sibling towers' clips are disjoint and
        ``merge_component_skylines`` re-runs dominance over the union.

        Frozen memtables are in memory: the scan is free, like the flat
        delta of old.  Indexed components answer through their static
        structure unless a tombstone they own lies inside the clipped
        rectangle, in which case the local skyline is recomputed from the
        clip's resident live points -- charged as ``ceil(resident / B)``
        block reads on the component's own ledger, the same fallback
        discipline as the base shards.  A component with *no point* in
        the clipped x-window is pruned for free: its points are x-sorted,
        so one bisect of directory metadata decides it, and a point
        outside the window can neither lie in nor dominate anything in
        the answer -- the same argument as router shard pruning.
        """
        x_lo = max(query.x_lo, clip_lo)
        x_hi = query.x_hi
        if clip_hi != float("inf"):
            x_hi = min(x_hi, math.nextafter(clip_hi, float("-inf")))
        if x_lo > x_hi:
            return [], False
        if x_lo != query.x_lo or x_hi != query.x_hi:
            query = RangeQuery(
                x_lo=x_lo, x_hi=x_hi, y_lo=query.y_lo, y_hi=query.y_hi
            )
        lo = comp.columns.bisect_x_left(x_lo)
        if lo >= len(comp.points) or comp.points[lo].x > x_hi:
            return [], False
        if comp.index is None:
            # Frozen memtable: the vectorized in-rectangle filter over the
            # component's columns (bisected x-window + y mask) replaces
            # the per-object contains() scan; pending tombstones are
            # checked only when any exist.
            candidates = filter_rect(
                comp.columns, query.x_lo, query.x_hi, query.y_lo, query.y_hi
            )
            if self.delta.tombstones:
                candidates = [
                    p for p in candidates if not self.delta.is_deleted(p)
                ]
            return candidates, False
        if self.delta.tombstone_hits(query, clip_lo, clip_hi, comp.owner):
            c_lo = (
                0
                if clip_lo == float("-inf")
                else comp.columns.bisect_x_left(clip_lo)
            )
            c_hi = (
                len(comp.points)
                if clip_hi == float("inf")
                else comp.columns.bisect_x_left(clip_hi)
            )
            assert comp.stats is not None
            comp.stats.record_read(
                max(1, math.ceil((c_hi - c_lo) / self.config.block_size))
            )
            live = [
                p
                for p in comp.points[c_lo:c_hi]
                if not self.delta.is_deleted(p)
            ]
            return range_skyline(live, query), True
        return comp.index.query(query), False

    def skyline(self) -> List[Point]:
        """The skyline of the whole live point set."""
        return self.query(RangeQuery())

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Buffer an insert in the memtable (visible to queries
        immediately).

        The general-position assumption every structure of the paper makes
        is enforced here, at the write boundary: a coordinate colliding
        with a live point raises immediately instead of corrupting a later
        merge or rebuild.  On a durable service the accepted insert is
        appended to the WAL before it is applied.  On the leveled path the
        insert also pays at most ``merge_step_blocks`` transfers of
        piggybacked merge debt and, when the memtable fills, seals it --
        bounded work, never an ``O(n/B)`` rebuild.
        """
        if point.x in self._live_xs or point.y in self._live_ys:
            raise ValueError(
                f"coordinate collision with a live point: {point}; the service "
                "requires general position (distinct x and distinct y)"
            )
        if self.wal is not None and not self._replaying:
            self.wal.log_insert(point)
        self._live_xs.add(point.x)
        self._live_ys.add(point.y)
        self.delta.insert(point)
        self._bump_region(point.x)
        if self.leveled:
            self._tick(point.x)
            self._maybe_seal()
        else:
            self._maybe_compact()
        self._maybe_rebalance()

    def delete(self, point: Point) -> bool:
        """Delete one live point matching ``point``; returns success.

        Among coordinate twins, a point with the same ``ident`` is
        preferred.  A pending memtable insert is simply dropped; a point
        resident in a frozen memtable, a level component or a base shard
        gets a tombstone bucketed under its owning component, masking
        exactly that component until a merge or compaction reclaims it.
        On a durable service the *exact* victim -- coordinates plus
        ``ident`` -- is logged, so replay removes precisely the point the
        live service removed.
        """
        removed = self.delta.remove_insert(point)
        if removed is not None:
            if self.wal is not None and not self._replaying:
                self.wal.log_delete(removed)
            self._live_xs.discard(removed.x)
            self._live_ys.discard(removed.y)
            self._bump_region(removed.x)
            if self.leveled:
                self._tick(removed.x)
            self._maybe_rebalance()
            return True
        victim = None
        owner: object = None
        if self.leveled:
            # Only the tower owning the coordinate can hold the victim:
            # private components are range-scoped by construction and an
            # inherited component's points outside the ref's interval
            # belong to some sibling's ref -- or to no ref at all (a
            # fold already moved them into a base), in which case the
            # masked copy must never be chosen as a victim.
            tower = self.shards[self.router.route_point(point.x)].tower
            assert tower is not None
            windows = [
                (comp, 0, len(comp.points))
                for comp in tower.private_components()
            ] + [(ref.comp, ref.lo, ref.hi) for ref in tower.inherited]
            for comp, w_lo, w_hi in windows:
                # comp.points is x-sorted: bisect to the coordinate-match
                # run instead of scanning the whole component per delete.
                lo = bisect.bisect_left(comp.points, point.x, key=lambda p: p.x)
                hi = bisect.bisect_right(comp.points, point.x, key=lambda p: p.x)
                lo, hi = max(lo, w_lo), min(hi, w_hi)
                candidates = [
                    p
                    for p in comp.points[lo:hi]
                    if p.y == point.y and not self.delta.is_deleted(p)
                ]
                victim_index = resolve_victim_index(candidates, point)
                if victim_index is not None:
                    victim = candidates[victim_index]
                    owner = comp.owner
                    break
        if victim is None:
            sid = self.router.route_point(point.x)
            shard = self.shards[sid]
            candidates = [
                p
                for p in shard.points
                if p.x == point.x
                and p.y == point.y
                and not self.delta.is_deleted(p)
            ]
            victim_index = resolve_victim_index(candidates, point)
            if victim_index is None:
                return False
            victim = candidates[victim_index]
            owner = shard.owner
        if self.wal is not None and not self._replaying:
            self.wal.log_delete(victim)
        self.delta.add_tombstone(victim, owner)
        self._live_xs.discard(victim.x)
        self._live_ys.discard(victim.y)
        self._bump_region(victim.x)
        if self.leveled:
            self._tick(victim.x)
            self._maybe_reclaim_tombstones()
        else:
            self._maybe_compact()
        self._maybe_rebalance()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_points(self) -> List[Point]:
        """The current point set: base and level residents minus
        tombstones, plus the pending memtable."""
        live = [
            p
            for shard in self.shards
            for p in shard.points
            if not self.delta.is_deleted(p)
        ]
        for tower in self.towers():
            live.extend(tower.live_points())
        live.extend(self.delta.inserts.values())
        return live

    def __len__(self) -> int:
        # Each tower counts inherited components through its refs'
        # adoption intervals; live intervals are pairwise disjoint and
        # cover exactly the still-reachable slice of each shared
        # component (a folded region's points were re-homed into a base
        # and its ref dropped), so summing towers counts every reachable
        # physical record exactly once.
        resident = sum(len(shard) for shard in self.shards)
        resident += sum(tower.resident() for tower in self.towers())
        return resident + len(self.delta.inserts) - len(self.delta.tombstones)

    def io_total(self) -> int:
        """Block transfers charged across every shard and level machine so
        far (plus the durability store, when durability is on)."""
        return self.stats.total

    def maintenance_io(self) -> int:
        """Transfers charged to maintenance: incremental merge work paid
        in bounded steps alongside updates and drains, summed over the
        service accumulator and every live tower's escrow ledger."""
        return self.maintenance.total

    @property
    def merges_completed(self) -> int:
        """Lifetime completed merges across every tower, including towers
        already disposed by topology changes and compactions."""
        return self._merges_retired + sum(
            tower.scheduler.merges_completed for tower in self.towers()
        )

    @property
    def records_merged(self) -> int:
        """Lifetime records written by completed merges (same scope as
        :attr:`merges_completed`)."""
        return self._records_merged_retired + sum(
            tower.scheduler.records_merged for tower in self.towers()
        )

    def snapshot(self) -> IOSnapshot:
        return self.stats.snapshot()

    def meter(self) -> IOMeter:
        """``with service.meter() as m: ...`` measures I/Os of the block."""
        return IOMeter(self.stats)

    def engine(self) -> "object":
        """Migration shim: this service wrapped as a :class:`repro.engine
        .SkylineEngine` (the recommended request/response front door)."""
        from repro.engine import ShardedServiceBackend, SkylineEngine

        return SkylineEngine(ShardedServiceBackend(self))

    def close(self) -> int:
        """Clean shutdown: force the WAL tail durable; returns records flushed.

        Without it, up to ``wal_group_commit - 1`` acknowledged updates
        sitting in the in-memory tail are lost on a crash -- that is the
        group-commit trade-off, not a bug.  A no-op (returning 0) on a
        non-durable service.
        """
        return 0 if self.wal is None else self.wal.flush()

    def reclaim(self) -> Dict[str, int]:
        """Free superseded snapshots and the folded WAL prefix on the store.

        A long-running durable service otherwise grows its store without
        bound (every snapshot and WAL block is retained forever).  Note
        that reclaimed history can no longer be crash-simulated -- see
        :meth:`repro.service.DurableStore.reclaim`.  A no-op on a
        non-durable service.
        """
        if self.store is None:
            return {"snapshot_blocks_freed": 0, "wal_blocks_freed": 0}
        return self.store.reclaim()

    def durability_io(self) -> int:
        """Block transfers charged to the durability store (0 when off)."""
        return 0 if self.store is None else self.store.stats.total

    def query_io_total(self) -> int:
        """Block transfers excluding durability (query/build path only)."""
        return self.io_total() - self.durability_io()

    def drop_caches(self) -> None:
        """Empty every shard's and level's buffer pool (cold-cache
        measurements)."""
        for shard in self.shards:
            if shard.storage is not None:
                shard.storage.drop_cache()
        for comp in self._all_components().values():
            if comp.storage is not None:
                comp.storage.drop_cache()

    def _all_components(self) -> Dict[int, Component]:
        """Every component of every live tower, deduplicated by object
        identity (an inherited component shared by sibling towers appears
        once), keyed by ``id()``."""
        seen: Dict[int, Component] = {}
        for tower in self.towers():
            for comp in tower.components():
                seen[id(comp)] = comp
        return seen

    def blocks_in_use(self) -> int:
        """Allocated blocks across all shard and component machines."""
        total = sum(
            shard.storage.blocks_in_use()
            for shard in self.shards
            if shard.storage is not None
        )
        total += sum(
            comp.storage.blocks_in_use()
            for comp in self._all_components().values()
            if comp.storage is not None
        )
        return total

    def describe(self) -> Dict[str, object]:
        """A status snapshot a service dashboard would render.

        ``result_cache`` carries the full cache counter set, and
        ``levels`` the per-level fill -- one row per level with
        ``{records, tombstones, capacity, merge_debt}`` (level 0 is the
        memtable) -- replacing the flat ``delta`` block of old, so
        callers such as :class:`repro.engine.ShardedServiceBackend` can
        populate per-request execution reports without reaching into
        private state.
        """
        if self.leveled:
            towers: List[Dict[str, object]] = []
            agg: Dict[int, Dict[str, object]] = {}
            for shard in self.shards:
                tower = shard.tower
                assert tower is not None
                rows = tower.describe_levels()
                towers.append(
                    {"sid": shard.sid, "uid": shard.uid, "levels": rows}
                )
                for row in rows:
                    j = int(row["level"])  # type: ignore[arg-type]
                    acc = agg.setdefault(
                        j,
                        {
                            "level": j,
                            "records": 0,
                            "tombstones": 0,
                            "capacity": row["capacity"],
                            "merge_debt": 0,
                        },
                    )
                    acc["records"] = int(acc["records"]) + int(row["records"])  # type: ignore[arg-type]
                    acc["tombstones"] = int(acc["tombstones"]) + int(row["tombstones"])  # type: ignore[arg-type]
                    acc["merge_debt"] = int(acc["merge_debt"]) + int(row["merge_debt"])  # type: ignore[arg-type]
                    if j == 0:
                        for key in ("frozen", "inherited"):
                            merged_list = list(acc.get(key, []))  # type: ignore[call-overload]
                            merged_list.extend(row[key])  # type: ignore[arg-type]
                            acc[key] = merged_list
            levels = [agg[j] for j in sorted(agg)]
            active = [
                desc
                for desc in (
                    t.scheduler.describe()["active"] for t in self.towers()
                )
                if desc is not None
            ]
            scheduler = {
                "active": active or None,
                "queued_jobs": sum(
                    len(t.scheduler.queue) for t in self.towers()
                ),
                "merges_completed": self.merges_completed,
                "records_merged": self.records_merged,
            }
        else:
            levels = [
                {
                    "level": 0,
                    "records": len(self.delta.inserts),
                    "tombstones": len(self.delta.tombstones),
                    "capacity": self.config.delta_threshold,
                    "merge_debt": 0,
                }
            ]
            scheduler = None
            towers = []
        status: Dict[str, object] = {
            # The *router's* shard count -- authoritative everywhere: it
            # can differ from ServiceConfig.shard_count both downward
            # (size_balanced_cuts legitimately returns fewer cuts on tiny
            # or boundary-degenerate inputs) and in either direction once
            # online splits/merges move the topology.
            "shard_count": len(self.shards),
            "shard_sizes": [len(shard) for shard in self.shards],
            "shard_epochs": [shard.epoch for shard in self.shards],
            "shard_uids": [shard.uid for shard in self.shards],
            "cuts": list(self.router.cuts),
            "topology": self.topology.describe(),
            "live_points": len(self),
            "update_path": self.config.update_path,
            "delta_inserts": len(self.delta.inserts),
            "delta_tombstones": len(self.delta.tombstones),
            "levels": levels,
            "compactions": self.compactions,
            "drains": self.drains,
            "maintenance_io": self.maintenance_io(),
            "cache_entries": len(self.cache),
            "cache_hit_rate": round(self.cache.hit_rate(), 3),
            "result_cache": self.cache.describe(),
            "coalesced": self.coalesced,
            "io_total": self.io_total(),
            "blocks_in_use": self.blocks_in_use(),
            "durability": self.config.durability,
        }
        if scheduler is not None:
            status["scheduler"] = scheduler
            status["towers"] = towers
        if self.store is not None and self.wal is not None:
            durability = dict(self.store.describe())
            durability["wal_pending"] = self.wal.pending
            durability["group_commit"] = self.wal.group_commit_size
            durability["auto_reclaims"] = self.auto_reclaims
            if self.recovery is not None:
                durability["recovery"] = dict(self.recovery)
            status["durability_detail"] = durability
        return status
