"""Tests for the async serving runtime (repro.serve).

The acceptance properties:

* **Concurrency equivalence** -- N concurrent clients driving phased
  update/query rounds through a :class:`SkylineServer` get per-query
  answers identical to a serial engine replaying the same operations,
  and the served engine's ledger partition
  ``attributed + maintenance == total - build`` stays exact.
* **Coalescing** -- identical requests submitted by many callers inside
  one gather window execute once (fan-in = submitters) and each caller
  still gets the full answer; coalescing off serves the same answers.
* **Admission control** -- the ``shed`` policy fails exactly the
  overflow with a typed :class:`Overloaded` carrying its
  :class:`ServingReport`; the ``block`` policy's ``submit_timeout``
  sheds too; expired deadlines fail queued work with
  :class:`DeadlineExceeded`; a stopped server raises
  :class:`ServerClosed`.
* **Worker pool** -- the uid-keyed pool tracks topology changes
  (retire/create only the rewritten shards) and executes batches
  block-identically to the default transient executor.
* **Auto-reclaim** -- ``ServiceConfig(reclaim_every_topology_ops=N)``
  interleaves durable-store reclamation with every Nth topology
  operation.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.engine import SkylineEngine, UpdateRequest
from repro.serve import (
    DeadlineExceeded,
    Overloaded,
    ServerClosed,
    ServerConfig,
    ShardWorkerPool,
    SkylineServer,
    install_worker_pool,
)
from repro.serve.metrics import percentile
from repro.service import ServiceConfig, SkylineService
from repro.workloads import uniform_points

CFG = dict(shard_count=4, block_size=16, memory_blocks=8)


def _canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def _queries(count: int, universe: int, seed: int):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        width = universe * rng.uniform(0.1, 0.4)
        x_lo = rng.uniform(0, universe - width)
        out.append(RangeQuery(x_lo=x_lo, x_hi=x_lo + width))
    return out


# ----------------------------------------------------------------------
# Concurrency equivalence
# ----------------------------------------------------------------------
def test_concurrent_clients_match_serial_engine_exactly():
    clients, rounds, n = 4, 6, 512
    universe = 1_000_000
    all_points = uniform_points(n + clients * rounds, universe=universe, seed=11)
    base, payload = all_points[:n], all_points[n:]
    inserts = [
        [payload[cid * rounds + r] for r in range(rounds)]
        for cid in range(clients)
    ]
    probes = [
        _queries(rounds, universe, seed=50 + cid) for cid in range(clients)
    ]

    engine = SkylineEngine.sharded(base, **CFG)
    server = SkylineServer(engine, ServerConfig(gather_window=0.001))
    barrier = threading.Barrier(clients)
    answers = [[] for _ in range(clients)]
    errors = []

    def client(cid: int) -> None:
        try:
            for r in range(rounds):
                served = server.update(UpdateRequest.insert(inserts[cid][r]))
                assert served.applied
                assert served.serving.lane == "write"
                barrier.wait(timeout=30)  # all round-r writes are durable
                result = server.query(probes[cid][r])
                answers[cid].append(_canon(result.points))
                barrier.wait(timeout=30)  # all round-r reads done
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            raise

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    server.stop()
    assert not errors

    # Serial replay: same rounds, updates before queries, one caller.
    serial = SkylineEngine.sharded(base, **CFG)
    for r in range(rounds):
        for cid in range(clients):
            assert serial.insert(inserts[cid][r]).applied
        for cid in range(clients):
            expected = _canon(serial.query(probes[cid][r]).points)
            assert answers[cid][r] == expected, (cid, r)

    # The ledger partition survives arbitrary concurrency.
    assert (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
def test_identical_requests_coalesce_onto_one_execution():
    base = uniform_points(256, universe=100_000, seed=3)
    engine = SkylineEngine.sharded(base, cache_capacity=0, **CFG)
    expected = _canon(engine.query(RangeQuery(x_hi=40_000.0)).points)
    server = SkylineServer(engine, start=False)
    futures = [
        server.submit_query(RangeQuery(x_hi=40_000.0)) for _ in range(12)
    ]
    server.start()
    served = [f.result(timeout=30) for f in futures]
    server.stop()
    assert all(s.serving.coalesce_fanin == 12 for s in served)
    assert all(_canon(s.points) == expected for s in served)
    assert server.metrics.executed_reads == 1
    assert server.metrics.coalesced_followers == 11


def test_contained_rectangle_is_served_from_larger_computation():
    base = uniform_points(256, universe=100_000, seed=3)
    engine = SkylineEngine.sharded(base, cache_capacity=0, **CFG)
    big = RangeQuery(x_lo=10_000.0)  # dominant corner (inf, inf)
    mid = RangeQuery(x_lo=30_000.0)
    small = RangeQuery(x_lo=50_000.0, y_lo=20_000.0)
    expected = {q: _canon(engine.query(q).points) for q in (big, mid, small)}
    server = SkylineServer(engine, start=False)
    futures = {
        q: [server.submit_query(q) for _ in range(2)]
        for q in (small, mid, big)
    }
    server.start()
    served = {q: [f.result(timeout=30) for f in fs] for q, fs in futures.items()}
    server.stop()
    for q, responses in served.items():
        assert all(_canon(s.points) == expected[q] for s in responses), q
    # Only the outermost rectangle executed; the nested ones were served
    # by filtering its answer (exact: shared dominant corner).
    assert server.metrics.executed_reads == 1
    assert server.metrics.coalesced_followers == 5
    for responses in served.values():
        assert all(s.serving.coalesce_fanin == 6 for s in responses)
    for q in (mid, small):
        assert all(s.report.coalesced for s in served[q])
        assert all(s.report.blocks == 0 for s in served[q])


def test_containment_requires_shared_dominant_corner():
    base = uniform_points(256, universe=100_000, seed=7)
    engine = SkylineEngine.sharded(base, cache_capacity=0, **CFG)
    big = RangeQuery(x_lo=10_000.0)
    clipped = RangeQuery(x_lo=30_000.0, x_hi=60_000.0)  # x_hi differs
    expected = {q: _canon(engine.query(q).points) for q in (big, clipped)}
    server = SkylineServer(engine, start=False)
    futures = [server.submit_query(clipped), server.submit_query(big)]
    server.start()
    served = [f.result(timeout=30) for f in futures]
    server.stop()
    # Geometric containment alone is not servable -- a point of the
    # clipped rectangle may be dominated only by points beyond its top
    # or right edge -- so both rectangles execute.
    assert server.metrics.executed_reads == 2
    assert server.metrics.coalesced_followers == 0
    assert _canon(served[0].points) == expected[clipped]
    assert _canon(served[1].points) == expected[big]


def test_uncoalesced_mode_serves_same_answers():
    base = uniform_points(256, universe=100_000, seed=3)
    engine = SkylineEngine.sharded(base, cache_capacity=0, **CFG)
    server = SkylineServer(engine, ServerConfig(coalesce=False), start=False)
    q = RangeQuery(x_hi=40_000.0)
    futures = [server.submit_query(q) for _ in range(5)]
    server.start()
    served = [f.result(timeout=30) for f in futures]
    server.stop()
    assert all(s.serving.coalesce_fanin == 1 for s in served)
    assert len({tuple(_canon(s.points)) for s in served}) == 1
    assert server.metrics.executed_reads == 5


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_shed_policy_fails_exactly_the_overflow():
    base = uniform_points(128, universe=100_000, seed=5)
    engine = SkylineEngine.sharded(base, **CFG)
    server = SkylineServer(
        engine,
        ServerConfig(backpressure="shed", max_read_queue=4),
        start=False,
    )
    futures = [
        server.submit_query(RangeQuery(x_hi=float(1000 * (i + 1))))
        for i in range(10)
    ]
    # Shed futures resolve synchronously at submit; queued ones are
    # still pending until the server starts.
    shed = [
        f
        for f in futures
        if f.done() and isinstance(f.exception(), Overloaded)
    ]
    assert len(shed) == 6  # everything past the queue bound, synchronously
    err = shed[0].exception()
    assert err.serving.shed and err.serving.lane == "read"
    server.start()
    for f in futures:
        if f not in shed:
            assert f.result(timeout=30).serving.shed is False
    server.stop()
    assert server.metrics.shed == 6


def test_block_policy_submit_timeout_sheds():
    base = uniform_points(128, universe=100_000, seed=5)
    engine = SkylineEngine.sharded(base, **CFG)
    server = SkylineServer(
        engine,
        ServerConfig(
            backpressure="block", max_read_queue=2, submit_timeout=0.01
        ),
        start=False,
    )
    futures = [
        server.submit_query(RangeQuery(x_hi=float(1000 * (i + 1))))
        for i in range(3)
    ]
    assert isinstance(futures[2].exception(), Overloaded)
    server.start()
    assert futures[0].result(timeout=30)
    server.stop()


def test_expired_deadline_fails_queued_request():
    base = uniform_points(128, universe=100_000, seed=5)
    engine = SkylineEngine.sharded(base, **CFG)
    with SkylineServer(engine) as server:
        future = server.submit_query(RangeQuery(), deadline=-1.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            future.result(timeout=30)
        assert excinfo.value.serving.timed_out
        assert server.metrics.timed_out == 1
        # A sane deadline still serves.
        assert server.query(RangeQuery(), deadline=30.0).points is not None


def test_stopped_server_raises_server_closed():
    base = uniform_points(64, universe=100_000, seed=5)
    engine = SkylineEngine.sharded(base, **CFG)
    server = SkylineServer(engine)
    assert len(server.query(RangeQuery())) > 0
    server.stop()
    with pytest.raises(ServerClosed):
        server.submit_query(RangeQuery())
    server.stop()  # idempotent


# ----------------------------------------------------------------------
# Async API
# ----------------------------------------------------------------------
def test_async_clients_share_the_server():
    base = uniform_points(256, universe=100_000, seed=9)
    engine = SkylineEngine.sharded(base, **CFG)
    fresh = Point(2_000_000.0, 2_000_000.5, ident=777_777)

    async def drive(server: SkylineServer):
        reads = [server.aquery(RangeQuery(x_hi=30_000.0)) for _ in range(6)]
        write = server.ainsert(fresh)
        results = await asyncio.gather(*reads, write)
        return results

    with SkylineServer(engine) as server:
        *reads, write = asyncio.run(drive(server))
        assert write.applied
        assert len({tuple(_canon(r.points)) for r in reads}) == 1
        assert all(r.serving.lane == "read" for r in reads)


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def test_worker_pool_tracks_topology_by_uid():
    base = uniform_points(512, universe=1_000_000, seed=21)
    service = SkylineService(base, ServiceConfig(**CFG))
    pool = install_worker_pool(service)
    assert isinstance(pool, ShardWorkerPool)
    assert install_worker_pool(service) is None  # already installed
    pool.sync()
    before = {shard.uid for shard in service.shards}
    assert set(pool.workers) == before

    assert service.split_shard(1) is not None
    pool.sync()
    after = {shard.uid for shard in service.shards}
    assert set(pool.workers) == after
    # Only the split shard's worker retired; two children created.
    assert pool.retired == 1
    assert pool.created == len(before) + 2
    # Batches through the pool still answer correctly.
    probe = RangeQuery(x_hi=500_000.0)
    assert service.query_many([probe])[0] == service.query(probe)
    pool.close()
    assert not pool.workers


def test_worker_pool_charges_identical_blocks_to_default_executor():
    base = uniform_points(512, universe=1_000_000, seed=22)
    probes = _queries(12, 1_000_000, seed=23)
    plain = SkylineService(base, ServiceConfig(cache_capacity=0, **CFG))
    pooled = SkylineService(base, ServiceConfig(cache_capacity=0, **CFG))
    install_worker_pool(pooled)
    for batch_start in range(0, len(probes), 4):
        batch = probes[batch_start : batch_start + 4]
        expected = [_canon(r) for r in plain.query_many(batch)]
        got = [_canon(r) for r in pooled.query_many(batch)]
        assert got == expected
    assert pooled.stats.total == plain.stats.total


# ----------------------------------------------------------------------
# Reports and metrics
# ----------------------------------------------------------------------
def test_describe_reports_server_and_engine_state():
    base = uniform_points(256, universe=100_000, seed=13)
    engine = SkylineEngine.sharded(base, **CFG)
    with SkylineServer(engine) as server:
        server.query(RangeQuery(x_hi=50_000.0))
        server.insert(Point(3_000_000.0, 3_000_000.5, ident=888_888))
        status = server.describe()
    tier = status["server"]
    assert tier["served_reads"] == 1 and tier["served_writes"] == 1
    assert tier["latency_p99_s"] >= tier["latency_p50_s"] >= 0.0
    backend = status["backend"]
    assert tier["worker_pool"]["workers"] == len(backend["shard_uids"])
    assert backend["backend"] == "sharded-service"


def test_serving_report_composes_with_execution_report():
    base = uniform_points(256, universe=100_000, seed=13)
    engine = SkylineEngine.sharded(base, cache_capacity=0, **CFG)
    with SkylineServer(engine) as server:
        served = server.query(RangeQuery(x_hi=50_000.0))
    assert served.serving.latency_s == pytest.approx(
        served.serving.queue_wait_s + served.serving.service_s
    )
    assert served.serving.batch_blocks >= 1  # cold engine paid real I/O
    assert served.report.backend == "sharded-service"  # engine-side report


def test_percentile_is_nearest_rank():
    assert percentile([], 0.99) == 0.0
    assert percentile([5.0], 0.99) == 5.0
    values = list(range(100))
    assert percentile(values, 0.50) == 50
    assert percentile(values, 0.99) == 99


# ----------------------------------------------------------------------
# Auto-reclaim (ServiceConfig.reclaim_every_topology_ops)
# ----------------------------------------------------------------------
def test_auto_reclaim_interleaves_with_topology_ops():
    pool = uniform_points(512 + 96, universe=1_000_000, seed=31)
    service = SkylineService(
        pool[:512],
        ServiceConfig(durability=True, reclaim_every_topology_ops=2, **CFG),
    )
    for point in pool[512:]:
        service.insert(point)
    assert service.split_shard(0) is not None
    assert service.auto_reclaims == 0  # first op: cadence not reached
    assert service.split_shard(0) is not None
    assert service.auto_reclaims == 1  # second op reclaimed
    service.merge_shards(0)
    service.merge_shards(0)
    assert service.auto_reclaims == 2
    assert service.describe()["durability_detail"]["auto_reclaims"] == 2
    # Reclaim kept only the newest manifest.
    assert len(service.store.manifests) <= 1


def test_auto_reclaim_disabled_and_non_durable_are_inert():
    base = uniform_points(256, universe=1_000_000, seed=33)
    plain = SkylineService(base, ServiceConfig(**CFG))
    plain.split_shard(0)
    plain.split_shard(0)
    assert plain.auto_reclaims == 0
    durable_off = SkylineService(
        base,
        ServiceConfig(durability=True, reclaim_every_topology_ops=0, **CFG),
    )
    durable_off.split_shard(0)
    durable_off.split_shard(0)
    assert durable_off.auto_reclaims == 0


def test_config_rejects_negative_reclaim_cadence():
    with pytest.raises(ValueError):
        ServiceConfig(reclaim_every_topology_ops=-1)
    with pytest.raises(ValueError):
        ServerConfig(gather_window=-0.1)
    with pytest.raises(ValueError):
        ServerConfig(backpressure="drop")


# ----------------------------------------------------------------------
# Subscription lane (repro.stream wired through the server)
# ----------------------------------------------------------------------
import queue as _queue  # noqa: E402
import time  # noqa: E402

from repro.engine import QueryRequest, SubscribeRequest  # noqa: E402
from repro.serve.server import _Submission  # noqa: E402

_DOMINATOR = Point(2_000_000.0, 2_000_000.5, ident=777_777)


def _sub_server(seed=17, config=None):
    base = uniform_points(256, universe=100_000, seed=seed)
    return SkylineServer(SkylineEngine.sharded(base, **CFG), config)


def test_subscription_delivers_initial_snapshot_then_write_deltas():
    with _sub_server() as server:
        handle = server.subscribe(RangeQuery())
        initial = handle.get(timeout=5.0)
        assert initial.revision == 0
        view = {(p.x, p.y, p.ident) for p in initial.entered}
        assert view  # the current skyline arrived as "entered"

        server.insert(_DOMINATOR)
        delta = handle.get(timeout=5.0)
        assert delta.revision == 1
        assert delta.report.kind == "delta"
        for p in delta.left:
            view.discard((p.x, p.y, p.ident))
        for p in delta.entered:
            view.add((p.x, p.y, p.ident))
        served = server.query(RangeQuery())
        assert view == {(p.x, p.y, p.ident) for p in served.points}

        handle.close()
        assert handle.get(timeout=5.0) is None  # clean end
        assert handle.closed


def test_subscription_without_snapshot_sees_only_changes():
    with _sub_server() as server:
        handle = server.subscribe(
            SubscribeRequest(RangeQuery(), initial_snapshot=False)
        )
        server.insert(_DOMINATOR)
        delta = handle.get(timeout=5.0)
        assert (_DOMINATOR.x, _DOMINATOR.y, _DOMINATOR.ident) in {
            (p.x, p.y, p.ident) for p in delta.entered
        }
        handle.close()


def test_subscription_callback_is_invoked_inline():
    received = []
    with _sub_server() as server:
        handle = server.subscribe(RangeQuery(), callback=received.append)
        assert received and received[0].revision == 0  # initial, inline
        server.insert(_DOMINATOR)
        deadline = time.perf_counter() + 5.0
        while len(received) < 2 and time.perf_counter() < deadline:
            time.sleep(0.005)
        assert len(received) >= 2 and handle.delivered == len(received)


def test_subscription_async_iterator_ends_on_close():
    async def scenario(server):
        handle = server.subscribe(SubscribeRequest(RangeQuery()))
        seen = []

        async def consume():
            async for delta in handle.deltas():
                seen.append(delta)

        task = asyncio.get_running_loop().create_task(consume())
        await server.ainsert(_DOMINATOR)
        deadline = time.perf_counter() + 5.0
        while len(seen) < 2 and time.perf_counter() < deadline:
            await asyncio.sleep(0.005)
        handle.close()
        await task  # the iterator finishes by itself
        return seen

    with _sub_server() as server:
        seen = asyncio.run(scenario(server))
    assert [d.revision for d in seen[:2]] == [0, 1]


def test_undrained_subscription_is_shed_with_overloaded():
    config = ServerConfig(max_subscription_queue=1)
    with _sub_server(config=config) as server:
        handle = server.subscribe(SubscribeRequest(RangeQuery()))
        # The initial snapshot fills the queue; the next delta cannot
        # fit, so the server cancels the consumer like any overflow.
        server.insert(_DOMINATOR)
        deadline = time.perf_counter() + 5.0
        while not handle.closed and time.perf_counter() < deadline:
            time.sleep(0.005)
        assert handle.closed
        with pytest.raises(Overloaded) as excinfo:
            while True:
                assert handle.get(timeout=5.0) is not None
        assert excinfo.value.serving.lane == "notify"
        assert excinfo.value.serving.shed
        assert server.describe()["server"]["subscriptions"]["shed"] == 1


def test_expired_subscription_deadline_cancels_with_deadline_exceeded():
    with _sub_server() as server:
        handle = server.subscribe(RangeQuery(), deadline=0.001)
        assert handle.get(timeout=5.0).revision == 0  # initial still lands
        time.sleep(0.01)
        server.insert(_DOMINATOR)  # first delivery past the deadline
        with pytest.raises(DeadlineExceeded) as excinfo:
            while True:
                assert handle.get(timeout=5.0) is not None
        assert excinfo.value.serving.lane == "notify"
        assert excinfo.value.serving.timed_out
        assert handle.closed


def test_unsubscribe_is_idempotent_and_scoping_is_reported():
    with _sub_server() as server:
        handle = server.subscribe(RangeQuery())
        status = server.describe()["server"]["subscriptions"]
        assert status["active"] == 1 and status["notified"] >= 1
        assert server.unsubscribe(handle.sub_id) is True
        assert server.unsubscribe(handle.sub_id) is False
        handle.close()  # idempotent with unsubscribe
        assert server.describe()["server"]["subscriptions"]["active"] == 0
        # Ended cleanly: the pending initial delta still drains, then
        # the iterator finishes instead of raising.
        assert [d.revision for d in handle] == [0]


def test_subscribing_on_a_stopped_server_raises():
    server = _sub_server()
    server.start()
    server.stop()
    with pytest.raises(ServerClosed):
        server.subscribe(RangeQuery())


# ----------------------------------------------------------------------
# Adaptive gather window (EWMA of inter-arrival gaps)
# ----------------------------------------------------------------------
def _arrivals(start, gaps):
    at = start
    out = []
    for gap in [0.0] + list(gaps):
        at += gap
        out.append(_Submission(request=QueryRequest(), enqueued_at=at))
    return out


def test_adaptive_gather_window_tracks_arrival_rate():
    config = ServerConfig(
        adaptive_gather=True,
        gather_window=0.002,
        gather_window_max=0.05,
        gather_alpha=1.0,  # no smoothing: the window follows the last gap
        max_batch=8,
    )
    with _sub_server(config=config) as server:
        assert server.current_gather_window() == 0.002  # pre-traffic
        server._observe_arrivals(_arrivals(100.0, [0.001] * 4))
        # Window targets (max_batch - 1) arrivals at the observed rate.
        assert server.current_gather_window() == pytest.approx(0.007)
        # A slow trickle is clamped by gather_window_max.
        server._observe_arrivals(_arrivals(200.0, [0.1] * 4))
        assert server.current_gather_window() == pytest.approx(0.05)
        status = server.describe()["server"]
        assert status["adaptive_gather"] is True
        assert status["gather_window_s"] == pytest.approx(0.05)
        assert status["configured_gather_window_s"] == 0.002
        assert status["arrival_ewma_s"] == pytest.approx(0.1)


def test_adaptive_gather_is_inert_when_disabled():
    with _sub_server() as server:  # default config: adaptive off
        server._observe_arrivals(_arrivals(100.0, [0.5] * 3))
        assert server.current_gather_window() == server.config.gather_window
        assert server.describe()["server"]["adaptive_gather"] is False


def test_streaming_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(gather_alpha=0.0)
    with pytest.raises(ValueError):
        ServerConfig(gather_alpha=1.5)
    with pytest.raises(ValueError):
        ServerConfig(gather_window_max=-1.0)
    with pytest.raises(ValueError):
        ServerConfig(max_subscription_queue=0)
