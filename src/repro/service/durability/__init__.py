"""repro.service.durability -- WAL + snapshot persistence for the service.

The subsystem has four parts, all running on a dedicated
:class:`repro.em.StorageManager` so durability overhead shows up in the
same block-transfer ledger the paper's bounds are stated in:

* :class:`~repro.service.durability.store.DurableStore` -- the simulated
  persistent medium that outlives a service process: WAL blocks, snapshot
  blocks and the manifest chain.
* :class:`~repro.service.durability.wal.WriteAheadLog` -- append-only,
  group-committed logging of every insert/delete/compact, one block write
  per committed group.
* :mod:`~repro.service.durability.snapshot` -- block-level serialisation
  of the rebuilt shards at compaction checkpoints, plus the mirror-image
  loader recovery uses.
* :class:`~repro.service.durability.crash.CrashSimulator` -- kill-at-any-
  WAL-prefix copies of a store, the adversary the recovery tests run
  against.

Recovery itself lives on the service facade
(:meth:`repro.service.SkylineService.open`): load the newest surviving
snapshot, replay the WAL suffix past its ``folded_lsn`` into the delta, and
report the whole thing in block transfers -- ``O(n/B)`` snapshot reads,
``O(w/B)`` suffix reads for ``w`` unfolded records, plus the shard-machine
transfers that rebuild the indexes (including rebuilds triggered by
replayed compaction records).
"""

from repro.service.durability.crash import CrashSimulator, crashed_copy
from repro.service.durability.snapshot import (
    SnapshotManifest,
    SnapshotState,
    TombstoneRecord,
    load_snapshot,
    load_snapshot_state,
    read_record_blocks,
    write_record_blocks,
    write_snapshot_blocks,
)
from repro.service.durability.store import DurableStore
from repro.service.durability.wal import (
    OP_COMPACT,
    OP_DELETE,
    OP_DRAIN,
    OP_FLUSH,
    OP_FOLD,
    OP_INSERT,
    OP_MERGE,
    OP_SPLIT,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "DurableStore",
    "WriteAheadLog",
    "WalRecord",
    "SnapshotManifest",
    "SnapshotState",
    "TombstoneRecord",
    "write_snapshot_blocks",
    "write_record_blocks",
    "read_record_blocks",
    "load_snapshot",
    "load_snapshot_state",
    "CrashSimulator",
    "crashed_copy",
    "OP_INSERT",
    "OP_DELETE",
    "OP_COMPACT",
    "OP_FLUSH",
    "OP_DRAIN",
    "OP_SPLIT",
    "OP_MERGE",
    "OP_FOLD",
]
