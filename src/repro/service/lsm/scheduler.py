"""Bounded-step merge scheduling for the leveled update path.

The :class:`CompactionScheduler` turns every level maintenance obligation
into a :class:`MergeJob` on a FIFO queue and works the queue off in
*bounded increments*: each update pays at most
``ServiceConfig.merge_step_blocks`` block transfers of outstanding merge
debt, so no single update is ever charged an ``O(n/B)`` rebuild -- the
logarithmic-method amortisation of the paper's dynamic structures
(Theorems 4 and 6), made operational.

How a merge stays incremental in the simulation
-----------------------------------------------
When a job starts, the merged output component (its sorted run plus its
static index) is materialised eagerly on a *private* ledger that is not
part of the service aggregate, and the job remembers the exact read/write
cost as *debt*.  Each update then mirrors up to ``merge_step_blocks`` of
that debt onto the service's maintenance ledger -- the only charges the
aggregate ever sees -- and the output becomes visible (and its private
ledger joins the aggregate, reset to zero) only once the debt is fully
paid.  Until then queries keep reading the input components, so pausing
the merge at any intermediate step is invisible to correctness: the
visible state is always either "before the merge" or "after the merge",
never a half-merged hybrid.  Totals are conserved exactly: every staged
transfer is mirrored once, and input ledgers are retired into the
accumulator that keeps :meth:`repro.service.SkylineService.io_total`
monotone.

Tombstone lifecycle at a merge
------------------------------
A job captures, at start, the tombstones owned by its input components;
their victims are dropped from the merged output and the captured
tombstones are consumed at swap time (the annihilation that keeps the
table from growing without bound).  Tombstones added against an input
*after* the job started are not captured -- their victims are part of the
output snapshot -- so at swap they are re-owned to the output component
and keep masking it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.core.point import Point
from repro.service.delta import Key, point_key
from repro.service.lsm.component import Component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.lsm.levels import LevelManager


@dataclass(frozen=True)
class MergeJob:
    """One queued maintenance obligation.

    ``kind`` is ``"flush"`` (seal a frozen memtable into level 1) or
    ``"merge"`` (fold level ``level`` into level ``level + 1``).  Inputs
    are resolved when the job *starts*, not when it is queued, so a queue
    of jobs against the same level composes correctly.
    """

    kind: str
    frozen_id: Optional[int] = None
    level: Optional[int] = None


class ActiveMerge:
    """A started job: its inputs, staged output, and outstanding debt."""

    def __init__(
        self,
        job: MergeJob,
        inputs: List[Component],
        output: Component,
        out_level: int,
        consumed: Dict[Key, Point],
    ) -> None:
        self.job = job
        self.inputs = inputs
        self.output = output
        self.out_level = out_level
        self.consumed = consumed
        assert output.stats is not None
        self.debt_reads = output.stats.reads
        self.debt_writes = output.stats.writes

    @property
    def debt(self) -> int:
        return self.debt_reads + self.debt_writes


class CompactionScheduler:
    """FIFO merge queue worked off in bounded per-update increments."""

    def __init__(self, manager: "LevelManager") -> None:
        self.manager = manager
        self.queue: Deque[MergeJob] = deque()
        self.active: Optional[ActiveMerge] = None
        # Lifetime counters for dashboards and benches.
        self.merges_completed = 0
        self.records_merged = 0

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def schedule(self, job: MergeJob) -> None:
        self.queue.append(job)

    def clear(self) -> None:
        """Drop every queued and staged job (a full compaction folds the
        inputs anyway; the staged output's private ledger never joined
        the aggregate, so discarding it loses no charged transfer)."""
        self.queue.clear()
        self.active = None

    @property
    def merge_debt(self) -> int:
        """Outstanding transfers of the active job (0 when idle)."""
        return 0 if self.active is None else self.active.debt

    @property
    def pending_jobs(self) -> int:
        return len(self.queue) + (1 if self.active is not None else 0)

    # ------------------------------------------------------------------
    # Paying the debt
    # ------------------------------------------------------------------
    def pay(self, budget: int) -> int:
        """Perform up to ``budget`` transfers of merge work; returns the
        transfers actually charged (to the maintenance ledger)."""
        charged = 0
        while budget > 0:
            if self.active is None and not self._start_next():
                break
            active = self.active
            assert active is not None
            step = min(budget, active.debt)
            self._mirror(active, step)
            charged += step
            budget -= step
            if active.debt == 0:
                self._complete(active)
        return charged

    def drain(self) -> int:
        """Pay every outstanding transfer; returns the total charged."""
        charged = 0
        while self.active is not None or self.queue:
            paid = self.pay(1 << 30)
            charged += paid
            if paid == 0 and self.active is None:
                break  # queue held only skippable jobs
        return charged

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _start_next(self) -> bool:
        """Start the first startable queued job; False when none is."""
        manager = self.manager
        while self.queue:
            job = self.queue.popleft()
            if job.kind == "flush":
                source = manager.find_frozen(job.frozen_id)
                out_level = 1
            else:
                source = manager.levels.get(job.level or 0)
                out_level = (job.level or 0) + 1
            if source is None:  # superseded (e.g. a compaction cleared it)
                continue
            sibling = manager.levels.get(out_level)
            inputs = [source] + ([sibling] if sibling is not None else [])
            self.active = self._stage(job, inputs, out_level)
            return True
        return False

    def _stage(
        self, job: MergeJob, inputs: List[Component], out_level: int
    ) -> ActiveMerge:
        """Materialise the merged output on a private ledger; record debt."""
        manager = self.manager
        consumed: Dict[Key, Point] = {}
        for comp in inputs:
            consumed.update(manager.delta.owned_tombstones(comp.owner))
        merged = [
            p
            for comp in inputs
            for p in comp.points
            if point_key(p) not in consumed
        ]
        output = Component(
            manager.next_component_id(),
            merged,
            em_config=manager.em_config,
            epsilon=manager.epsilon,
        )
        assert output.stats is not None
        # A real merge also reads its indexed inputs off their machines:
        # charge ceil(m/B) reads per indexed input onto the staged ledger
        # (frozen memtables are in memory, their scan is free).
        for comp in inputs:
            if comp.index is not None and comp.points:
                output.stats.record_read(
                    math.ceil(len(comp.points) / manager.block_size)
                )
        return ActiveMerge(job, inputs, output, out_level, consumed)

    def _mirror(self, active: ActiveMerge, step: int) -> None:
        """Move ``step`` staged transfers onto the maintenance ledger."""
        reads = min(step, active.debt_reads)
        writes = step - reads
        active.debt_reads -= reads
        active.debt_writes -= writes
        if reads:
            self.manager.maintenance.record_read(reads)
        if writes:
            self.manager.maintenance.record_write(writes)

    def _complete(self, active: ActiveMerge) -> None:
        """Swap the paid-off output in for its inputs, atomically."""
        manager = self.manager
        delta = manager.delta
        output = active.output
        for comp in active.inputs:
            manager.remove_component(comp)
            # Tombstones added against an input after the job started:
            # their victims are in the output snapshot, so re-own them.
            for key, victim in delta.owned_tombstones(comp.owner).items():
                if key not in active.consumed:
                    delta.add_tombstone(victim, output.owner)
        for key, victim in active.consumed.items():
            if key in delta.tombstones:
                delta.drop_tombstone(key)
            else:
                # The tombstone was revived while the merge was in flight:
                # the output snapshot dropped the record, so the live copy
                # moves back into the memtable.
                delta.restore_insert(victim)
        # The build cost was mirrored to the maintenance ledger in steps;
        # reset the private ledger before it joins the aggregate so the
        # transfers are counted exactly once.
        assert output.stats is not None
        output.stats.reset()
        if output.points:
            manager.install_level(active.out_level, output)
        else:
            # Every input record was tombstone-consumed.  An empty
            # component would be unadoptable at a topology change (no
            # point falls in any child's clip), so drop it instead of
            # installing it; its ledger is already reset, and no re-owned
            # tombstone can reference it (a post-start tombstone's victim
            # would be in the output).
            manager._on_layout_change()
        # Counted at completion, not at staging: a merge a compaction
        # discards mid-flight never happened as far as the counters go.
        self.merges_completed += 1
        self.records_merged += len(output.points)
        self.active = None
        if len(output.points) > manager.capacity(active.out_level):
            self.schedule(MergeJob("merge", level=active.out_level))

    def describe(self) -> dict:
        return {
            "active": None
            if self.active is None
            else {
                "kind": self.active.job.kind,
                "out_level": self.active.out_level,
                "debt": self.active.debt,
                "output_records": len(self.active.output.points),
            },
            "queued_jobs": len(self.queue),
            "merges_completed": self.merges_completed,
            "records_merged": self.records_merged,
        }
