"""Unit tests for points and the dominance relation."""

from repro.core.point import (
    Point,
    dominates,
    ensure_general_position,
    in_general_position,
    leftmost_dominator,
    strictly_dominates,
)


def test_dominance_basic():
    p, q = Point(2, 3), Point(1, 1)
    assert p.dominates(q)
    assert not q.dominates(p)
    assert dominates(p, q)
    assert strictly_dominates(p, q)


def test_dominance_requires_both_coordinates():
    assert not Point(2, 0).dominates(Point(1, 1))
    assert not Point(0, 2).dominates(Point(1, 1))
    assert Point(2, 1).dominates(Point(1, 1))
    assert not Point(2, 1).strictly_dominates(Point(1, 1))


def test_point_does_not_dominate_itself():
    p = Point(1, 1)
    assert not p.dominates(Point(1, 1))


def test_lexicographic_ordering_sorts_by_x():
    points = [Point(3, 0), Point(1, 5), Point(2, 2)]
    assert [p.x for p in sorted(points)] == [1, 2, 3]


def test_mirrored_y_and_tuple():
    p = Point(2, 5, ident=7)
    assert p.mirrored_y() == Point(2, -5, 7)
    assert p.as_tuple() == (2, 5)


def test_general_position_check_and_fix():
    points = [Point(1, 1), Point(1, 2), Point(3, 2)]
    assert not in_general_position(points)
    fixed = ensure_general_position(points)
    assert in_general_position(fixed)
    assert len(fixed) == 3
    # Already-general-position inputs are unchanged.
    clean = [Point(1, 1), Point(2, 2)]
    assert ensure_general_position(clean) == clean


def test_leftmost_dominator():
    points = [Point(1, 1), Point(2, 5), Point(4, 3), Point(6, 2)]
    assert leftmost_dominator(Point(1, 1), points) == Point(2, 5)
    assert leftmost_dominator(Point(6, 2), points) is None
    assert leftmost_dominator(Point(4, 3), points) is None
