"""repro.engine -- the unified request/response front door of the stack.

One typed API over every deployment shape the library supports::

    from repro.engine import QueryRequest, SkylineEngine

    engine = SkylineEngine.sharded(points, shard_count=8)   # or .local(points)
    plan = engine.explain(QueryRequest(rect))    # structure + paper bound, no I/O
    result = engine.query(QueryRequest(rect, limit=10))
    result.points                                # the page, in x-order
    result.report.blocks                         # this request's ledger delta
    result.report.predicted_io                   # the bound at the observed k

Backends are pluggable (:class:`Backend` is a protocol):
:class:`LocalIndexBackend` serves from one
:class:`repro.RangeSkylineIndex` on a single simulated machine, and
:class:`ShardedServiceBackend` serves from a
:class:`repro.service.SkylineService` (sharding, batching, result cache,
log-merge updates, durability -- ``SkylineEngine.open(store)`` recovers a
crashed durable service behind the same API).  Reports carry each
request's exact block-transfer ledger delta, so summing them reproduces
the backend ledger total -- see :mod:`repro.engine.engine`.
"""

from repro.engine.backends import (
    Backend,
    LocalIndexBackend,
    QueryTrace,
    ShardedServiceBackend,
)
from repro.engine.engine import SkylineEngine
from repro.engine.plan import (
    BOUND_DYNAMIC_EASY,
    BOUND_FOUR_SIDED,
    BOUND_STATIC_EASY,
    BOUND_UPDATE_LEVELED,
    BOUND_UPDATE_THRESHOLD,
    EASY_TOP_OPEN_VARIANTS,
    QueryPlan,
    ScopePlan,
    amortized_update_io,
    bound_for,
    structure_for,
)
from repro.engine.report import (
    ExecutionReport,
    QueryResult,
    SkylineDelta,
    StreamPage,
    UpdateResult,
)
from repro.engine.requests import (
    CONSISTENCY_LEVELS,
    OP_DELETE,
    OP_INSERT,
    QueryRequest,
    StreamRequest,
    SubscribeRequest,
    UpdateRequest,
)

__all__ = [
    "SkylineEngine",
    "Backend",
    "LocalIndexBackend",
    "ShardedServiceBackend",
    "QueryTrace",
    "QueryRequest",
    "UpdateRequest",
    "StreamRequest",
    "SubscribeRequest",
    "QueryResult",
    "UpdateResult",
    "StreamPage",
    "SkylineDelta",
    "ExecutionReport",
    "QueryPlan",
    "ScopePlan",
    "structure_for",
    "bound_for",
    "EASY_TOP_OPEN_VARIANTS",
    "BOUND_STATIC_EASY",
    "BOUND_DYNAMIC_EASY",
    "BOUND_FOUR_SIDED",
    "BOUND_UPDATE_LEVELED",
    "BOUND_UPDATE_THRESHOLD",
    "amortized_update_io",
    "CONSISTENCY_LEVELS",
    "OP_INSERT",
    "OP_DELETE",
]
