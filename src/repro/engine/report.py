"""Responses: every engine call returns its data plus an execution report.

The report's block counts are the *ledger delta of this one request*: the
engine snapshots the backend's I/O counters immediately before and after
executing, so summing ``report.blocks`` over every request served since
the engine attached reproduces the backend ledger total exactly (asserted
by ``tests/test_engine.py``).  Cache hits, shard pruning and tombstone
fallbacks -- the service-tier effects that make a measured cost differ
from the paper's bound -- are called out as fields so a dashboard can
explain each request's charge next to ``plan.predicted_io(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.point import Point
from repro.engine.plan import QueryPlan

KIND_QUERY = "query"
KIND_BATCH = "batch"
KIND_STREAM = "stream"
KIND_DELTA = "delta"


@dataclass(frozen=True)
class ExecutionReport:
    """What one request actually cost and which machinery served it.

    Attributes
    ----------
    backend:
        Backend name (``"local-index"`` or ``"sharded-service"``).
    kind:
        ``"query"``, ``"insert"`` or ``"delete"``.
    variant:
        The Figure-2 label for queries; the op name for updates.
    structure:
        The structure that served a query (per the plan), or the
        backend's write path for updates.
    reads / writes:
        This request's *attributed* block-transfer ledger delta, split by
        direction.  On the legacy threshold-compact path, an update that
        trips the compaction threshold pays the whole rebuild here; on
        the leveled path the bounded incremental merge work piggybacked
        on an update is split out into ``maintenance_blocks`` instead --
        either way the ledger never loses a transfer between reports.
    maintenance_blocks:
        Transfers of incremental merge debt this update paid alongside
        its own work (leveled update path).  Counted in the engine's
        ``maintenance_io()``, not in ``blocks``, so the partition
        ``attributed + maintenance == total - build`` stays exact while
        per-update charges reflect the bounded step, not the amortised
        backlog.
    cache_hit:
        Whether the result came from the backend's result cache (then
        ``blocks`` is typically 0).
    shards_visited / shards_pruned:
        Router fan-out on the sharded backend (1 / 0 on the monolithic).
    tombstone_fallback:
        Whether a tombstone inside the rectangle forced at least one
        visited shard to rescan its resident points instead of using its
        static structure.
    coalesced:
        Whether this request was a duplicate answered from another
        request's computation within the same batch (the service's
        in-batch coalescing; then ``blocks`` is typically 0).  Always
        ``False`` for a request executed on its own.
    result_size:
        ``k`` -- the full result size before pagination.
    predicted_io:
        ``plan.predicted_io(k)``: the paper bound instantiated at the
        observed output size, for charged-vs-predicted comparisons.
    """

    backend: str
    kind: str
    variant: str
    structure: str
    reads: int
    writes: int
    cache_hit: bool = False
    shards_visited: int = 0
    shards_pruned: int = 0
    tombstone_fallback: bool = False
    coalesced: bool = False
    result_size: int = 0
    predicted_io: Optional[float] = None
    maintenance_blocks: int = 0

    @property
    def blocks(self) -> int:
        """Total block transfers charged on this request's ledger delta."""
        return self.reads + self.writes


@dataclass(frozen=True)
class QueryResult:
    """Points plus provenance: the page, its plan, and its report.

    ``points`` is the requested page (after ``cursor``/``limit``), in
    increasing x-order; ``total_results`` is the full answer size ``k``;
    ``next_cursor`` is the resume token for the following page (``None``
    when this page ends the result).
    """

    points: List[Point]
    total_results: int
    next_cursor: Optional[float]
    plan: QueryPlan
    report: ExecutionReport

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of an :class:`repro.engine.UpdateRequest`.

    ``applied`` is ``False`` only for a delete that found no live victim;
    an insert either applies or raises (coordinate collision on the
    service, static index on a non-dynamic local backend).
    """

    applied: bool
    report: ExecutionReport


@dataclass(frozen=True)
class StreamPage:
    """One page of a resumable top-k stream (``kind="stream"``).

    Pages come from an immutable snapshot pinned when the stream opened,
    so consecutive pages tile the snapshot's answer exactly -- no point
    is skipped or repeated however many updates land between pages.

    ``next_cursor`` is the last point's x and doubles as a
    :attr:`~repro.engine.requests.QueryRequest.cursor` resume token: a
    caller that outlives its snapshot can continue against live data with
    a fresh paginated query.  ``exhausted`` marks the final page; the
    ``report``'s blocks are the transfers this page's pops charged (zero
    for a page served from memory-resident snapshot records).
    """

    points: List[Point]
    next_cursor: Optional[float]
    exhausted: bool
    report: ExecutionReport

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)


@dataclass(frozen=True)
class SkylineDelta:
    """One subscription notification (``kind="delta"``).

    ``entered``/``left`` are the points that joined and dropped out of
    the subscribed rectangle's skyline since the previous notification;
    replaying every delta in ``revision`` order over the initial
    snapshot reconstructs the naive recomputed answer exactly (asserted
    by ``tests/test_stream.py``).  The ``report`` carries the ledger
    delta of the recomputation that derived the notification -- a
    subscription skipped by write-version scoping emits no delta and
    charges nothing.
    """

    entered: List[Point]
    left: List[Point]
    revision: int
    report: ExecutionReport

    @property
    def empty(self) -> bool:
        """Whether the notification changes nothing (never delivered)."""
        return not self.entered and not self.left
