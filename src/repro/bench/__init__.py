"""Benchmark harness: experiment runners and table reporting.

Every benchmark in ``benchmarks/`` builds its workload through this package
so that the rows it prints carry the same columns: the experiment id (the
Table 1 row or theorem being reproduced), the sweep parameters, the measured
I/Os, the theoretical bound, and their ratio (which should stay roughly
constant across the sweep when the claimed shape holds).
"""

from repro.bench.reporting import (
    BenchmarkRow,
    BenchmarkTable,
    counters_table,
    write_json_report,
)
from repro.bench.harness import (
    average_query_ios,
    measure_build,
    measure_queries,
    measure_updates,
)

__all__ = [
    "BenchmarkRow",
    "BenchmarkTable",
    "measure_queries",
    "measure_build",
    "measure_updates",
    "average_query_ios",
    "counters_table",
    "write_json_report",
]
