"""Synthetic point-set generators.

The distributions follow the conventions of the skyline literature the paper
cites (Borzsonyi et al.): *independent/uniform*, *correlated* (few skyline
points; easy) and *anti-correlated* (huge skyline; hard), plus clustered
data and rank-space permutations.  All generators produce points in general
position (distinct x and distinct y coordinates), as the paper assumes.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.core.point import Point


def _general_position(
    n: int, universe: int, rng: random.Random, y_of_x
) -> List[Point]:
    xs = rng.sample(range(universe), n)
    raw_ys = [y_of_x(x) for x in xs]
    # Break y ties by replacing duplicates with unused values near the original.
    order = sorted(range(n), key=lambda i: raw_ys[i])
    ys = [0.0] * n
    used: set = set()
    for rank, index in enumerate(order):
        candidate = raw_ys[index]
        while candidate in used:
            candidate += 1e-6 * (1 + rng.random())
        used.add(candidate)
        ys[index] = candidate
    return [Point(float(x), float(y), ident=i) for i, (x, y) in enumerate(zip(xs, ys))]


def uniform_points(
    n: int, universe: int = 1_000_000, seed: Optional[int] = None
) -> List[Point]:
    """Independently uniform coordinates (the default benchmark input)."""
    rng = random.Random(seed)
    return _general_position(
        n, universe, rng, lambda _x: rng.uniform(0, universe)
    )


def correlated_points(
    n: int, universe: int = 1_000_000, spread: float = 0.05, seed: Optional[int] = None
) -> List[Point]:
    """Positively correlated coordinates: tiny skylines, easy queries."""
    rng = random.Random(seed)
    return _general_position(
        n,
        universe,
        rng,
        lambda x: x + rng.gauss(0, spread * universe),
    )


def anticorrelated_points(
    n: int, universe: int = 1_000_000, spread: float = 0.05, seed: Optional[int] = None
) -> List[Point]:
    """Negatively correlated coordinates: skylines of size Theta(n)."""
    rng = random.Random(seed)
    return _general_position(
        n,
        universe,
        rng,
        lambda x: (universe - x) + rng.gauss(0, spread * universe),
    )


def clustered_points(
    n: int,
    universe: int = 1_000_000,
    clusters: int = 16,
    spread: float = 0.02,
    seed: Optional[int] = None,
) -> List[Point]:
    """Gaussian clusters, as produced by product catalogues with price bands."""
    rng = random.Random(seed)
    centres = [
        (rng.uniform(0, universe), rng.uniform(0, universe)) for _ in range(clusters)
    ]

    def y_of_x(x: float) -> float:
        cx, cy = centres[rng.randrange(clusters)]
        return cy + rng.gauss(0, spread * universe)

    return _general_position(n, universe, rng, y_of_x)


def zipf_x_points(
    n: int,
    universe: int = 1_000_000,
    alpha: float = 4.0,
    hot_center: float = 0.5,
    ident_base: int = 0,
    seed: Optional[int] = None,
) -> List[Point]:
    """Zipf-skewed x-coordinates: most points land in a narrow hot band.

    The x offset from ``hot_center * universe`` is ``u^alpha``-distributed
    (``u`` uniform), so with ``alpha = 4`` about 84% of the mass lies
    within 1/2% of the universe around the centre -- the skewed insert
    stream that makes a *static* shard topology collapse onto one machine
    and that ``benchmarks/bench_resharding.py`` stresses.  y is uniform.
    Coordinates are jittered per index so the output is in general
    position (distinct x and y) and disjoint from the integer-coordinate
    sets the other generators produce; ``ident_base`` offsets the idents
    so a stream can be appended to an existing base set.
    """
    rng = random.Random(seed)
    center = hot_center * universe
    points = []
    for i in range(n):
        offset = (rng.random() ** alpha) * (universe / 2.0)
        if rng.random() < 0.5:
            offset = -offset
        x = min(max(center + offset, 0.0), float(universe))
        # The fractional part is unique per index: general position by
        # construction, whatever the integer parts collide on.
        x = x + (i + 1) / (2.0 * (n + 1))
        y = rng.uniform(0, universe) + (i + 1) / (2.0 * (n + 1))
        points.append(Point(x, y, ident=ident_base + i))
    return points


def grid_permutation_points(n: int, seed: Optional[int] = None) -> List[Point]:
    """A random permutation matrix: the canonical rank-space input of Theorem 2."""
    rng = random.Random(seed)
    permutation = list(range(n))
    rng.shuffle(permutation)
    return [Point(float(i), float(permutation[i]), ident=i) for i in range(n)]
