"""Building the PPB-tree over ``Sigma(P)`` (Section 2.3).

The paper's SABE construction exploits that, because ``Sigma(P)`` is nesting
and monotonic, every update of the sweep happens at the *leftmost* leaf of
the current snapshot B-tree, so that leaf (and the path above it) can be
kept buffered in memory and located for free.  We realise the same effect
through the buffer pool: the sweep inserts a segment at its left endpoint
and deletes it at its right endpoint, and since all these updates touch the
same (leftmost) root-to-leaf path, the path stays resident and the measured
construction cost is dominated by the ``O(n/B)`` block creations --
the linear behaviour Theorem 1 claims.  ``build_segment_ppbtree`` can also
be run with a cold cache per update to exhibit the ``O(n log_B n)`` cost of
the classic construction, which the SABE benchmark compares against.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.em.storage import StorageManager
from repro.ppbtree.ppbtree import MultiversionBTree
from repro.segments.segment import HorizontalSegment


def sweep_events(
    segments: Iterable[HorizontalSegment],
) -> List[Tuple[float, int, HorizontalSegment]]:
    """The sorted endpoint event list of the sweep.

    Each event is ``(x, kind, segment)`` with ``kind`` 0 for a deletion
    (right endpoint) and 1 for an insertion (left endpoint); deletions sort
    before insertions at equal x so a point's dominated predecessors leave
    the snapshot before its own segment enters.
    """
    events: List[Tuple[float, int, HorizontalSegment]] = []
    for segment in segments:
        events.append((segment.x_left, 1, segment))
        if not math.isinf(segment.x_right):
            events.append((segment.x_right, 0, segment))
    events.sort(key=lambda event: (event[0], event[1], event[2].y))
    return events


def build_segment_ppbtree(
    storage: StorageManager,
    segments: Iterable[HorizontalSegment],
    cold_cache: bool = False,
) -> MultiversionBTree:
    """Build the PPB-tree of ``Sigma(P)`` keyed on segment y-coordinate.

    With ``cold_cache`` the buffer pool is dropped before every update,
    which reproduces the I/O behaviour of the classic (non-SABE)
    construction the paper compares against.
    """
    tree = MultiversionBTree(storage)
    for x, kind, segment in sweep_events(segments):
        if cold_cache:
            storage.drop_cache()
        if kind == 1:
            tree.insert(segment.y, segment, version=x)
        else:
            tree.delete(segment.y, version=x)
    return tree
