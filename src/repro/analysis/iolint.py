"""Static uncharged-I/O pass: every block touch must hit a ledger.

The whole reproduction's claim to faithfulness rests on the invariant
that every block transfer is charged to exactly one
:class:`~repro.em.counters.IOStats` ledger -- the paper (PODS 2013)
counts block transfers, not wall-clock.  Two escape hatches exist by
design (``DiskModel.peek`` / ``DiskModel.poke``, the free inspection and
simulator-surgery paths), and nothing used to stop production code from
quietly using them, or from bypassing the charging layer by talking to a
``DiskModel`` handle directly.

This pass walks the AST of every source file and flags:

``uncharged-io``
    * any ``*.peek(...)`` or ``*.poke(...)`` call -- these methods exist
      only on :class:`~repro.em.disk.DiskModel` and are *never* charged;
    * any ``read_block`` / ``write_block`` / ``write_new`` call whose
      receiver is a ``disk`` handle (``self.disk.read_block``,
      ``storage.disk.write_new``, ...) outside the charging layer --
      production code must go through :class:`~repro.em.storage
      .StorageManager` / :class:`~repro.em.cache.BufferPool` so the
      buffer pool's hit accounting stays honest (``EMFile.read_block``
      and friends are fine: they charge internally);
    * any access to the raw block-state attributes of a disk handle
      (``disk._blocks``, ``disk._next_id``) -- state surgery that
      bypasses both the ledger and the space accounting.

``unused-pragma``
    an ``uncharged-io`` pragma on a line where nothing is flagged (a
    stale escape is as misleading as a missing one).

The charging layer itself -- ``repro/em/disk.py``, ``repro/em/cache.py``,
``repro/em/storage.py`` -- is exempt: those files *are* where charging
happens.  Deliberate exceptions elsewhere carry a
``# repro: uncharged-io(<reason>)`` pragma with a non-empty reason.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.findings import Finding, read_sources, sort_findings
from repro.analysis.pragmas import PragmaMap, scan_pragmas

#: Methods that are never charged, on any receiver.
UNCHARGED_METHODS = frozenset({"peek", "poke"})
#: Charging transfers when called on the disk handle itself; flagged when
#: the receiver chain terminates in a name/attribute called ``disk``.
DISK_TRANSFER_METHODS = frozenset({"read_block", "write_block", "write_new"})
#: Raw block-state attributes of :class:`~repro.em.disk.DiskModel`.
RAW_STATE_ATTRS = frozenset({"_blocks", "_next_id"})
#: Path suffixes of the allowlisted charging layer.
CHARGING_LAYER: Tuple[str, ...] = (
    "repro/em/disk.py",
    "repro/em/cache.py",
    "repro/em/storage.py",
)

RULE_UNCHARGED = "uncharged-io"
RULE_UNUSED_PRAGMA = "unused-pragma"


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a receiver chain (``a.b.disk`` -> ``disk``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_charging_layer(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in CHARGING_LAYER)


def lint_source(path: str, source: str) -> List[Finding]:
    """Run the uncharged-I/O pass over one in-memory source file."""
    findings: List[Finding] = []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=path,
                line=exc.lineno or 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    if _is_charging_layer(path):
        return []
    pragmas = scan_pragmas(source)
    for node in ast.walk(tree):
        finding = _check_node(path, node, pragmas)
        if finding is not None:
            findings.append(finding)
    for stale in pragmas.unused(kinds=(RULE_UNCHARGED,)):
        findings.append(
            Finding(
                rule=RULE_UNUSED_PRAGMA,
                path=path,
                line=stale.line,
                message=(
                    f"uncharged-io({stale.argument}) pragma suppresses "
                    "nothing on this line -- remove it or move it to the "
                    "uncharged access it excuses"
                ),
            )
        )
    return findings


def _check_node(
    path: str, node: ast.AST, pragmas: PragmaMap
) -> Optional[Finding]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        method = node.func.attr
        if method in UNCHARGED_METHODS:
            return _flag(
                path,
                node,
                pragmas,
                f"uncharged DiskModel.{method}() call -- production paths "
                "must pay for every transfer via read_block/write_block; "
                "annotate deliberate inspection/surgery with "
                "'# repro: uncharged-io(<reason>)'",
            )
        if (
            method in DISK_TRANSFER_METHODS
            and _terminal_name(node.func.value) == "disk"
        ):
            return _flag(
                path,
                node,
                pragmas,
                f"direct disk.{method}() outside the charging layer -- go "
                "through StorageManager/BufferPool so cache accounting "
                "stays honest, or annotate with "
                "'# repro: uncharged-io(<reason>)'",
            )
    if (
        isinstance(node, ast.Attribute)
        and node.attr in RAW_STATE_ATTRS
        and _terminal_name(node.value) == "disk"
    ):
        return _flag(
            path,
            node,
            pragmas,
            f"raw disk block-state access (.{node.attr}) bypasses the "
            "ledger and the space accounting; annotate deliberate "
            "surgery with '# repro: uncharged-io(<reason>)'",
        )
    return None


def _flag(
    path: str, node: ast.AST, pragmas: PragmaMap, message: str
) -> Optional[Finding]:
    line = getattr(node, "lineno", 1)
    end_line = getattr(node, "end_lineno", None) or line
    pragma = pragmas.find(RULE_UNCHARGED, line, end_line)
    if pragma is not None:
        if pragma.argument:
            return None
        return Finding(
            rule=RULE_UNCHARGED,
            path=path,
            line=line,
            message=(
                "uncharged-io pragma needs a non-empty reason: "
                "'# repro: uncharged-io(<why this access is free>)'"
            ),
        )
    return Finding(rule=RULE_UNCHARGED, path=path, line=line, message=message)


def lint_paths(roots: List[Path]) -> List[Finding]:
    """Run the pass over every Python file under the given roots."""
    findings: List[Finding] = []
    for path, source in read_sources(roots):
        findings.extend(lint_source(str(path), source))
    return sort_findings(findings)
