"""Tests for online shard topology management (repro.service.topology).

The acceptance properties:

* **Interleaving invariance** -- answers and the engine's ledger
  partition (``attributed + maintenance == total - build``) are invariant
  under arbitrary interleavings of updates, queries, splits, merges and
  folds vs the naive scan baseline (hypothesis property).
* **Bounded locality** -- a split/merge/fold never global-rebuilds:
  untouched shards keep their uid, their cached answers and their
  tombstone buckets.
* **Adaptive policy** -- a skewed insert stream triggers hot-shard
  splits and pressure folds (never a compaction); a delete flood on one
  region triggers a cold merge.
* **Reporting** -- the router's actual shard count is authoritative in
  ``describe()`` and plans, including when ``size_balanced_cuts``
  legitimately returns fewer cuts than ``shard_count - 1``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FourSidedQuery, Point, RangeQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.engine import QueryRequest, SkylineEngine
from repro.service import (
    ServiceConfig,
    ShardRouter,
    SkylineService,
    size_balanced_cuts,
    size_balanced_midpoint,
)
from repro.workloads import uniform_points, zipf_x_points


def canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def canon_xy(points):
    return sorted((p.x, p.y) for p in points)


def seed_points(n, seed=0):
    rng = random.Random(seed)
    xs = rng.sample(range(10 * n), n)
    ys = rng.sample(range(10 * n), n)
    return [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]


LEVELED = dict(
    shard_count=4,
    block_size=16,
    memory_blocks=8,
    delta_threshold=8,
    level_growth=2,
    merge_step_blocks=2,
)


def checked(service, live, queries):
    got = service.query_many(queries, use_cache=False)
    want = [canon_xy(range_skyline(live, q)) for q in queries]
    assert [canon_xy(r) for r in got] == want
    assert len(service) == len(live)


# ----------------------------------------------------------------------
# Router primitives
# ----------------------------------------------------------------------
def test_router_split_and_merge_cuts_are_versioned():
    router = ShardRouter([10.0, 20.0])
    assert router.version == 0 and router.shard_count == 3
    router.split_cut(1, 15.0)
    assert router.cuts == [10.0, 15.0, 20.0] and router.version == 1
    assert router.merge_cut(1) == 15.0
    assert router.cuts == [10.0, 20.0] and router.version == 2
    with pytest.raises(ValueError):
        router.split_cut(0, 10.0)  # on the boundary, not strictly inside
    with pytest.raises(ValueError):
        router.split_cut(2, 15.0)  # outside shard 2's range
    with pytest.raises(ValueError):
        router.merge_cut(2)  # only cuts 0 and 1 exist


def test_size_balanced_midpoint_degenerate_inputs():
    assert size_balanced_midpoint([]) is None
    assert size_balanced_midpoint([Point(1, 1)]) is None
    # Duplicate x straddling the midpoint: no strictly-separating cut.
    dup = [Point(5.0, 1.0, 0), Point(5.0, 2.0, 1)]
    assert size_balanced_midpoint(dup) is None
    ok = size_balanced_midpoint([Point(1, 1, 0), Point(3, 2, 1)])
    assert ok == 2.0


# ----------------------------------------------------------------------
# Split / merge / fold correctness
# ----------------------------------------------------------------------
def test_split_merge_fold_keep_answers_exact():
    points = seed_points(400, seed=3)
    service = SkylineService(points, ServiceConfig(**LEVELED))
    live = list(points)
    rng = random.Random(1)
    # Push records into levels and tombstones onto shards and components.
    for i in range(40):
        p = Point(900_000.0 + i * 1.25, 900_000.0 + i * 1.5, 50_000 + i)
        service.insert(p)
        live.append(p)
    for _ in range(12):
        victim = live.pop(rng.randrange(len(live)))
        assert service.delete(victim)
    queries = [
        RangeQuery(),
        TopOpenQuery(100.0, 800_000.0, 50.0),
        FourSidedQuery(0.0, 500_000.0, 0.0, 500_000.0),
    ]
    checked(service, live, queries)
    before = len(service.shards)
    cut = service.split_shard(1)
    assert cut is not None and len(service.shards) == before + 1
    checked(service, live, queries)
    service.fold_shard(0)
    assert len(service.shards) == before + 1  # folds move no cuts
    checked(service, live, queries)
    removed = service.merge_shards(2)
    assert removed is not None and len(service.shards) == before
    checked(service, live, queries)
    service.drain()
    checked(service, live, queries)
    service.compact()
    checked(service, live, queries)
    topo = service.topology.describe()
    assert topo["splits"] == 1 and topo["merges"] == 1 and topo["folds"] == 1
    assert [entry["op"] for entry in topo["history"]] == [
        "split", "fold", "merge",
    ]


def test_split_hands_over_whole_components_and_fold_reclaims_tombstones():
    points = seed_points(120, seed=5)
    service = SkylineService(points, ServiceConfig(**LEVELED))
    live = list(points)
    # Fill a level with fresh points, then delete one of them: the
    # tombstone is owned by the level component.
    fresh = [
        Point(800_000.0 + i * 1.25, 800_000.0 + i * 1.5, 40_000 + i)
        for i in range(8)
    ]
    for p in fresh:
        service.insert(p)
        live.append(p)
    service.drain()
    sid = len(service.shards) - 1
    tower = service.shards[sid].tower
    assert tower.levels  # the fresh points sit in its private tower
    level_comps = list(tower.levels.values())
    victim = fresh[3]
    assert service.delete(victim)
    live.remove(victim)
    # Split the rightmost shard (it owns the fresh points' x-range): a
    # pure metadata move -- the level components are handed to the
    # children *whole* (same objects, refcounted, clipped by readers),
    # and not one of their blocks is read or rewritten.
    comp_io_before = sum(
        c.stats.total for c in level_comps if c.stats is not None
    )
    assert service.split_shard(sid) is not None
    children = service.shards[sid : sid + 2]
    for comp in level_comps:
        holders = [
            child
            for child in children
            for ref in child.tower.inherited
            if ref.comp is comp
        ]
        assert holders, "handed-over component lost in the split"
    assert (
        sum(c.stats.total for c in level_comps if c.stats is not None)
        == comp_io_before
    )
    # The tombstone rode along with the handover: still present, still
    # masking the victim through the inherited clip.
    victim_key = (victim.x, victim.y, victim.ident)
    assert victim_key in service.delta.tombstones
    checked(service, live, [RangeQuery()])
    # Folding the victim's shard rebuilds its range from live points and
    # consumes every tombstone whose victim lies inside it.
    service.fold_shard(service.router.route_point(victim.x))
    assert victim_key not in service.delta.tombstones
    checked(service, live, [RangeQuery()])


def test_fold_pulls_tower_slice_into_base():
    points = seed_points(200, seed=6)
    service = SkylineService(points, ServiceConfig(**LEVELED))
    live = list(points)
    for i in range(24):
        p = Point(700_000.0 + i * 1.25, 700_000.0 + i * 1.5, 30_000 + i)
        service.insert(p)
        live.append(p)
    service.drain()
    sid = len(service.shards) - 1
    x_lo, x_hi = service.router.shard_range(sid)
    assert service.topology.level_slice(sid) > 0
    base_before = len(service.shards[sid])
    touched = service.fold_shard(sid)
    assert touched > 0
    assert service.topology.level_slice(sid) == 0
    assert len(service.shards[sid]) > base_before
    checked(service, live, [RangeQuery(), TopOpenQuery(0.0, 900_000.0, 10.0)])


def test_topology_change_keeps_unrelated_cached_answers():
    """Scoped invalidation across topology changes: a split destroys only
    the split shard's uid, so cached answers confined to other shards
    keep hitting -- before uid-keying, any re-numbering would have made
    every cached answer to the right of the cut unreachable."""
    points = uniform_points(400, universe=1_000_000, seed=7)
    service = SkylineService(points, shard_count=4, delta_threshold=10_000)
    lo3, hi3 = service.router.shard_range(3)
    probe_right = TopOpenQuery(lo3 + 1e-6, 900_000.0, 0.0)
    assert service.router.shards_for(probe_right) == [3]
    first = service.query(probe_right)
    hits_before = service.cache.hits
    # Split shard 0: shard 3 becomes shard 4, its uid unchanged.
    assert service.split_shard(0) is not None
    assert service.router.shards_for(probe_right) == [4]
    again = service.query(probe_right)
    assert service.cache.hits == hits_before + 1
    assert canon_xy(again) == canon_xy(first)
    # A probe into the split range was invalidated (fresh uids).
    lo0, _ = service.router.shard_range(0)
    probe_split = TopOpenQuery(max(lo0, 0.0), service.router.cuts[0] - 1e-6, 0.0)
    service.query(probe_split)
    misses_before = service.cache.misses
    service.query(probe_split)  # second lookup hits
    assert service.cache.misses == misses_before


def test_tombstone_buckets_survive_shard_renumbering():
    points = uniform_points(300, universe=1_000_000, seed=8)
    service = SkylineService(points, shard_count=3, delta_threshold=10_000)
    victim = next(p for p in points if service.router.route_point(p.x) == 2)
    assert service.delete(victim)
    owner = service.shards[2].owner
    assert service.delta.shard_tombstones(owner)
    assert service.split_shard(0) is not None
    # Shard 2 is now shard 3; same uid, same bucket, still masked.
    assert service.shards[3].owner == owner
    assert service.delta.shard_tombstones(owner)
    live = [p for p in points if p.ident != victim.ident]
    checked(service, live, [RangeQuery()])


# ----------------------------------------------------------------------
# Adaptive policy
# ----------------------------------------------------------------------
def test_skewed_stream_triggers_splits_and_folds_never_compaction():
    base = uniform_points(3_000, universe=1_000_000, seed=9)
    service = SkylineService(
        base,
        ServiceConfig(
            shard_count=8,
            block_size=32,
            memory_blocks=16,
            delta_threshold=64,
            level_growth=2,
            adaptive_topology=True,
            split_load_factor=1.5,
            fold_pressure_factor=0.1,
            topology_check_every=8,
        ),
    )
    stream = zipf_x_points(
        1_500, universe=1_000_000, ident_base=5_000_000, seed=10
    )
    live = list(base)
    for p in stream:
        service.insert(p)
        live.append(p)
    assert service.topology.splits >= 1
    assert service.topology.folds >= 1
    assert service.compactions == 0
    assert len(service.shards) > 8
    topo = service.topology.describe()
    # No shard is left beyond the split threshold after rebalancing.
    assert max(topo["shard_loads"]) < 2.0 * topo["target_load"]
    checked(service, live, [RangeQuery(), TopOpenQuery(490_000.0, 510_000.0, 0.0)])


def test_delete_flood_on_one_region_triggers_cold_merge():
    base = uniform_points(2_000, universe=1_000_000, seed=11)
    service = SkylineService(
        base,
        ServiceConfig(
            shard_count=8,
            block_size=32,
            memory_blocks=16,
            delta_threshold=100_000,  # keep the tombstone valve shut
            adaptive_topology=True,
            merge_load_factor=0.5,
            topology_check_every=8,
        ),
    )
    live = list(base)
    # Empty out the two leftmost shards.
    boundary = service.router.cuts[1]
    for p in [q for q in base if q.x < boundary]:
        assert service.delete(p)
        live.remove(p)
    assert service.topology.merges >= 1
    assert len(service.shards) < 8
    checked(service, live, [RangeQuery(), TopOpenQuery(0.0, boundary, 0.0)])


# ----------------------------------------------------------------------
# Hypothesis: interleaving invariance + ledger partition
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    shard_count=st.integers(min_value=1, max_value=4),
    adaptive=st.booleans(),
)
def test_interleaved_topology_ops_match_naive_and_partition_ledger(
    seed, shard_count, adaptive
):
    rng = random.Random(seed)
    points = seed_points(60, seed=seed)
    engine = SkylineEngine.sharded(
        points,
        ServiceConfig(
            shard_count=shard_count,
            block_size=8,
            memory_blocks=8,
            delta_threshold=5,
            level_growth=2,
            merge_step_blocks=2,
            adaptive_topology=adaptive,
            topology_check_every=4,
        ),
    )
    service = engine.backend.service
    live = list(points)
    queries = [
        RangeQuery(),
        TopOpenQuery(50.0, 400_000.0, 10.0),
        FourSidedQuery(0.0, 300_000.0, 0.0, 300_000.0),
    ]
    for i in range(25):
        roll = rng.random()
        if roll < 0.4:
            p = Point(500_000.0 + i * 1.25, 500_000.0 + i * 1.5, 70_000 + i)
            engine.insert(p)
            live.append(p)
        elif roll < 0.6 and live:
            victim = live.pop(rng.randrange(len(live)))
            assert engine.delete(victim).applied
        elif roll < 0.7:
            engine.split_shard(rng.randrange(len(service.shards)))
        elif roll < 0.8 and len(service.shards) > 1:
            engine.merge_shards(rng.randrange(len(service.shards) - 1))
        elif roll < 0.85:
            engine.fold_shard(rng.randrange(len(service.shards)))
        elif roll < 0.9:
            engine.query(rng.choice(queries))
        elif roll < 0.95:
            # Per-shard drain: one private tower's debt paid, the
            # neighbours' untouched -- the per-shard maintenance surface.
            engine.drain(rng.randrange(len(service.shards)))
        else:
            engine.drain()
        # Ledger partition after every op, whatever the interleaving.
        assert (
            engine.attributed_io() + engine.maintenance_io()
            == engine.io_total() - engine.build_io
        ), f"partition broke after op {i}"
        # Inherited-ref partition: the live intervals referencing one
        # shared component are pairwise disjoint, so every reachable
        # record is answered by exactly one tower (the invariant that
        # makes a later merge unable to resurrect folded points).
        intervals: dict = {}
        for shard in service.shards:
            assert shard.tower is not None
            for ref in shard.tower.inherited:
                intervals.setdefault(id(ref.comp), []).append(
                    (ref.lo, ref.hi)
                )
        for rows in intervals.values():
            rows.sort()
            for (_, a_hi), (b_lo, _) in zip(rows, rows[1:]):
                assert a_hi <= b_lo, f"overlapping inherited refs at op {i}"
        assert len(service) == len(live), f"resident count off at op {i}"
        # Verification reads go through the engine too, so they stay
        # inside the accounting identity checked above.
        for q in queries:
            got = engine.query(QueryRequest(rect=q, consistency="fresh"))
            assert canon_xy(got.points) == canon_xy(range_skyline(live, q)), (
                f"answers diverge at op {i}"
            )
    assert canon(service.live_points()) == canon(live)


# ----------------------------------------------------------------------
# Satellite: the actual shard count is authoritative everywhere
# ----------------------------------------------------------------------
def test_actual_shard_count_authoritative_when_cuts_degenerate():
    # Three points cannot populate eight shards: the router's count is
    # what describe(), plans and the topology block must report.
    service = SkylineService(
        [Point(1.0, 5.0, 0), Point(2.0, 6.0, 1), Point(3.0, 7.0, 2)],
        shard_count=8,
    )
    actual = service.router.shard_count
    assert actual < 8
    assert len(service.shards) == actual
    status = service.describe()
    assert status["shard_count"] == actual
    assert len(status["shard_sizes"]) == actual
    topo = status["topology"]
    assert topo["shard_count"] == actual
    assert topo["configured_shard_count"] == 8
    engine = service.engine()
    plan = engine.explain(RangeQuery())
    assert plan.shards_visited + plan.shards_pruned == actual
    assert engine.describe()["backend"]["shard_count"] == actual


def test_size_balanced_cuts_duplicate_x_regression():
    # Duplicate x straddling chunk boundaries: those cuts are dropped
    # rather than emitted non-increasing, and the router agrees with
    # what remains (here only the middle boundary separates distinct x).
    dup = [Point(float(i // 4), float(i), i) for i in range(8)]
    cuts = size_balanced_cuts(dup, 4)
    assert cuts == [0.5]
    assert all(b > a for a, b in zip(cuts, cuts[1:]))
    router = ShardRouter(cuts)
    assert router.shard_count == len(cuts) + 1


def test_topology_changes_reported_in_plans():
    points = uniform_points(300, universe=1_000_000, seed=12)
    engine = SkylineEngine.sharded(
        points, ServiceConfig(shard_count=4, delta_threshold=10_000)
    )
    before = engine.explain(RangeQuery())
    assert before.shards_visited + before.shards_pruned == 4
    assert engine.split_shard(1) is not None
    after = engine.explain(RangeQuery())
    assert after.shards_visited + after.shards_pruned == 5
    assert after.topology_version is not None
    assert before.topology_version is not None
    assert after.topology_version > before.topology_version
