"""Hardness machinery: the lower-bound workload and indexability analysis.

Lemma 8 constructs, for parameters ``omega`` and ``lambda``, a set of
``omega^lambda`` points and ``lambda * omega^(lambda-1)`` anti-dominance
queries such that each query outputs exactly ``omega`` points and any two
queries share at most one point.  Plugging this workload into the
indexability theorem of Hellerstein et al. yields the
``Omega((n/B)^eps + k/B)`` query lower bound of Theorem 5 for any
linear-size structure.

This package builds the workload explicitly (:func:`chazelle_liu_input`)
and provides :class:`IndexabilityAnalyzer`, which evaluates a concrete block
layout against the workload: for each query it computes the minimum number
of blocks that cover the query's output, the quantity the lower bound
constrains.
"""

from repro.hardness.chazelle_liu import (
    ChazelleLiuWorkload,
    chazelle_liu_input,
    rho,
)
from repro.hardness.indexability import (
    IndexabilityAnalyzer,
    indexability_query_lower_bound,
    pointer_machine_space_lower_bound,
)

__all__ = [
    "ChazelleLiuWorkload",
    "chazelle_liu_input",
    "rho",
    "IndexabilityAnalyzer",
    "indexability_query_lower_bound",
    "pointer_machine_space_lower_bound",
]
