"""Invariant checking for priority queues with attrition.

The paper maintains invariants I.1--I.9 over its record/deque
representation; the corresponding invariants for the representation used
here (DESIGN.md §5) are:

C.1  the surviving content, read in queue order, is strictly increasing;
C.2  the cached minimum of every descriptor equals the first surviving
     element of its subtree;
C.3  every record-leaf view is non-empty (its first element is below the
     leaf's cap);
C.4  record blocks hold at most ``record_capacity`` elements.

``check_queue_invariants`` asserts all four and is called from the tests
(including the hypothesis-driven ones).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.pqa.iocpqa import IOCPQA, _Concat, _MemLeaf, _RecordLeaf


class InvariantViolation(AssertionError):
    """Raised when an I/O-CPQA value violates its structural invariants."""


def queue_elements(queue: IOCPQA) -> List[Tuple[Any, Any]]:
    """All surviving elements of ``queue`` (reads records without charging).

    Uses :meth:`DiskModel.peek` so invariant checks do not perturb the I/O
    counters of the experiment being checked.
    """
    queue.storage.flush()
    result: List[Tuple[Any, Any]] = []
    if queue._root is not None:
        _collect_free(queue, queue._root, result)
    result.extend(queue._tail)
    return result


def check_queue_invariants(queue: IOCPQA) -> None:
    """Assert invariants C.1--C.4 for ``queue``."""
    elements = queue_elements(queue)
    keys = [key for key, _ in elements]
    for previous, current in zip(keys, keys[1:]):
        if not previous < current:
            raise InvariantViolation(
                f"queue content is not strictly increasing: {previous!r} !< {current!r}"
            )
    if queue._root is not None:
        _check_node(queue, queue._root)
    if queue._tail:
        tail_keys = [key for key, _ in queue._tail]
        if sorted(tail_keys) != list(tail_keys) or len(set(tail_keys)) != len(tail_keys):
            raise InvariantViolation("tail buffer is not strictly increasing")
        if len(queue._tail) > queue.record_capacity:
            raise InvariantViolation("tail buffer exceeds the record capacity")


def _check_node(queue: IOCPQA, node: Any) -> Tuple[Any, Any]:
    """Check a descriptor subtree; returns its (first surviving element, ok)."""
    if isinstance(node, _Concat):
        left_first = _check_node(queue, node.left)
        _check_node(queue, node.right)
        if node.min_item != left_first:
            raise InvariantViolation("concat node caches a stale minimum")
        return left_first
    if isinstance(node, _MemLeaf):
        if not node.items:
            raise InvariantViolation("empty in-memory leaf descriptor")
        return node.items[0]
    if isinstance(node, _RecordLeaf):
        # repro: uncharged-io(invariant checker inspects record blocks out-of-band; charging it would distort the measured cost of the structure under test)
        records = queue.storage.disk.peek(node.block_id)
        if len(records) > queue.record_capacity:
            raise InvariantViolation("record block exceeds the record capacity")
        if node.offset >= len(records):
            raise InvariantViolation("record leaf offset out of range")
        first = records[node.offset]
        if first[0] >= node.cap:
            raise InvariantViolation("record leaf view is empty (min >= cap)")
        if node.min_item != first:
            raise InvariantViolation("record leaf caches a stale minimum")
        return first
    raise InvariantViolation(f"unknown descriptor node type: {type(node)!r}")


def _collect_free(queue: IOCPQA, node: Any, out: List[Tuple[Any, Any]]) -> None:
    if isinstance(node, _Concat):
        _collect_free(queue, node.left, out)
        _collect_free(queue, node.right, out)
        return
    if isinstance(node, _MemLeaf):
        out.extend(node.items)
        return
    # repro: uncharged-io(same out-of-band inspection as _check_node: the checker reads the queue's blocks without perturbing its ledger)
    records = queue.storage.disk.peek(node.block_id)
    for item in records[node.offset :]:
        if item[0] >= node.cap:
            break
        out.append(item)
