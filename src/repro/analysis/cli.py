"""``reprolint`` -- the repository's invariant lint driver.

Runs both static passes and prints one line per finding::

    src/repro/foo.py:42: [uncharged-io] uncharged DiskModel.peek() call ...

Exit status 0 when clean, 1 when any finding fired, 2 on usage errors.

Usage::

    tools/reprolint [--io | --locks] [--json] [paths...]

With no paths the driver lints ``src/repro`` (uncharged-I/O pass over the
whole tree, lock pass over the concurrency tier ``serve/``, ``service/``
and ``engine/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import iolint, locklint
from repro.analysis.findings import Finding, sort_findings


def _default_src_root() -> Path:
    """Locate ``src/repro`` relative to this installed package."""
    return Path(__file__).resolve().parent.parent


def run(
    paths: List[Path],
    *,
    io_pass: bool = True,
    lock_pass: bool = True,
) -> List[Finding]:
    """Run the selected passes and return all findings, sorted."""
    findings: List[Finding] = []
    if io_pass:
        findings.extend(iolint.lint_paths(paths))
    if lock_pass:
        lock_roots: List[Path] = []
        for path in paths:
            if path.is_file():
                lock_roots.append(path)
            elif (path / "repro").is_dir():
                lock_roots.extend(locklint.default_scope(path / "repro"))
            else:
                lock_roots.extend(locklint.default_scope(path))
        # Deduplicate while keeping order.
        unique: List[Path] = []
        for root in lock_roots:
            if root not in unique:
                unique.append(root)
        findings.extend(locklint.lint_paths(unique))
    return sort_findings(findings)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Invariant lint for the PODS'13 reproduction: uncharged-I/O "
            "pass over the tree, lock-discipline pass over the "
            "concurrency tier."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--io", action="store_true", help="run only the uncharged-I/O pass"
    )
    group.add_argument(
        "--locks",
        action="store_true",
        help="run only the lock-discipline pass",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text lines",
    )
    args = parser.parse_args(argv)

    paths = args.paths or [_default_src_root().parent]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    findings = run(
        paths,
        io_pass=not args.locks,
        lock_pass=not args.io,
    )

    try:
        if args.json:
            print(json.dumps([finding.as_dict() for finding in findings], indent=2))
        else:
            for finding in findings:
                print(finding.render())
            if findings:
                print(
                    f"reprolint: {len(findings)} finding"
                    f"{'s' if len(findings) != 1 else ''}",
                    file=sys.stderr,
                )
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe; the
        # findings still determine the exit status.
        sys.stderr.close()
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tools/reprolint
    raise SystemExit(main())
