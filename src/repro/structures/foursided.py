"""The 4-sided range skyline structure of Theorem 6.

A weight-balanced base tree with fanout ``f ~ (n/B)^eps`` (hence constant
height ``O(1/eps)``) indexes the x-coordinates; every internal node ``u``
stores a *right-open* structure ``R(u)`` over the points of its subtree,
realised as a :class:`~repro.structures.dynamic_topopen.DynamicTopOpenStructure`
on the coordinate-swapped point set (dominance, and therefore the skyline,
is invariant under swapping the axes, and a right-open query becomes a
top-open query after the swap).

A 4-sided query walks the ``O((n/B)^eps / log(n/B))`` canonical nodes of
its x-range from right to left, keeping the highest reported y-coordinate
``beta*``; each canonical node contributes the skyline of its subtree
restricted to ``]beta*, y_hi]`` via one right-open query on ``R(u)``.  The
boundary leaves are handled with one block read each.  Updates insert into
the O(1) right-open structures along the leaf path and rebuild the base
tree periodically, for ``O(log(n/B))`` amortized I/Os.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point, resolve_victim_index
from repro.core.queries import FourSidedQuery, RangeQuery
from repro.core.skyline import skyline
from repro.em.storage import StorageManager
from repro.structures.dynamic_topopen import DynamicTopOpenStructure


def _swap(point: Point) -> Point:
    """Swap the axes of a point (dominance-preserving)."""
    return Point(point.y, point.x, point.ident)


def _strictly_above(value: float) -> float:
    if math.isinf(value):
        return value
    return math.nextafter(value, math.inf)


@dataclass
class _LeafBlock:
    """A leaf of the base tree: up to ``2B`` points sorted by x."""

    points: List[Point] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return True

    def record_size(self) -> int:
        return max(1, len(self.points))

    def x_max(self) -> float:
        return self.points[-1].x if self.points else -math.inf


@dataclass
class _InternalBlock:
    """An internal node: children, separators, and its right-open structure."""

    children: List[int] = field(default_factory=list)
    separators: List[float] = field(default_factory=list)
    right_open: Optional[DynamicTopOpenStructure] = None

    @property
    def is_leaf(self) -> bool:
        return False

    def record_size(self) -> int:
        return max(1, len(self.children))

    def child_index_for(self, x: float) -> int:
        for index, separator in enumerate(self.separators):
            if x <= separator:
                return index
        return len(self.children) - 1


class FourSidedStructure:
    """Linear-space structure for general (4-sided) range skyline queries."""

    def __init__(
        self,
        storage: StorageManager,
        points: Optional[Iterable[Point]] = None,
        epsilon: float = 0.5,
    ) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError("epsilon must lie in (0, 1]")
        self.storage = storage
        self.epsilon = epsilon
        self.points: List[Point] = sorted(points or [], key=lambda p: p.x)
        self.root_id: Optional[int] = None
        self._updates_since_build = 0
        self._size_at_build = 0
        self._rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fanout_for(self, n: int) -> int:
        blocks = max(2, n // max(1, self.storage.block_size))
        # An internal node must fit one block, so the fanout is capped at B.
        return max(2, min(self.storage.block_size, math.ceil(blocks ** self.epsilon)))

    def _rebuild(self) -> None:
        """Rebuild the whole base tree (used initially and after many updates)."""
        self._updates_since_build = 0
        self._size_at_build = len(self.points)
        # Leaves are filled to half a block so subsequent insertions have room
        # before the next (amortized) rebuild.
        leaf_fill = max(2, self.storage.block_size // 2)
        fanout = self._fanout_for(len(self.points))
        level: List[Tuple[int, float, List[Point]]] = []
        ordered = sorted(self.points, key=lambda p: p.x)
        if not ordered:
            self.root_id = self.storage.create(_LeafBlock(points=[]))
            return
        for start in range(0, len(ordered), leaf_fill):
            chunk = ordered[start : start + leaf_fill]
            leaf_id = self.storage.create(_LeafBlock(points=chunk))
            level.append((leaf_id, chunk[-1].x, chunk))
        while len(level) > 1:
            next_level: List[Tuple[int, float, List[Point]]] = []
            for start in range(0, len(level), fanout):
                group = level[start : start + fanout]
                subtree_points: List[Point] = []
                for _, _, pts in group:
                    subtree_points.extend(pts)
                right_open = DynamicTopOpenStructure(
                    self.storage,
                    points=[_swap(p) for p in subtree_points],
                    epsilon=0.0,
                )
                node = _InternalBlock(
                    children=[node_id for node_id, _, _ in group],
                    separators=[x_max for _, x_max, _ in group],
                    right_open=right_open,
                )
                node_id = self.storage.create(node)
                next_level.append((node_id, group[-1][1], subtree_points))
            level = next_level
        self.root_id = level[0][0]

    # ------------------------------------------------------------------
    # Updates (amortized O(log(n/B)) I/Os)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert a point; the base tree is rebuilt periodically."""
        self.points.append(point)
        self._updates_since_build += 1
        if self._needs_rebuild():
            self._rebuild()
            return
        path = self._descend(point.x)
        leaf_id, leaf = path[-1]
        if len(leaf.points) + 1 > self.storage.block_size:
            # The leaf block is full: rebalance by rebuilding the base tree
            # (amortized against the Omega(B) updates that filled the leaf).
            self._rebuild()
            return
        leaf.points.append(point)
        leaf.points.sort(key=lambda p: p.x)
        self.storage.write(leaf_id, leaf)
        for node_id, node in path[:-1]:
            # A point past the rightmost separator descends into the last
            # child; its subtree's recorded x-max must be raised, or
            # _decompose would treat the subtree as fully contained in
            # rectangles the new point sticks out of (leaking an
            # out-of-range point through the node's right-open answer).
            index = node.child_index_for(point.x)
            if node.separators[index] < point.x:
                node.separators[index] = point.x
                self.storage.write(node_id, node)
            if node.right_open is not None:
                node.right_open.insert(_swap(point))

    def delete(self, point: Point) -> bool:
        """Delete one point with matching coordinates; returns success.

        Among coordinate twins, a stored point whose ``ident`` equals
        ``point.ident`` is preferred, and that *resolved* victim (with its
        stored ``ident``) is what gets removed from the leaf and from the
        swapped right-open structures along the path -- so every secondary
        structure drops the same identity as the primary point list.
        """
        victim = resolve_victim_index(self.points, point)
        if victim is None:
            return False
        stored = self.points[victim]
        del self.points[victim]
        self._updates_since_build += 1
        if self._needs_rebuild():
            self._rebuild()
            return True
        path = self._descend(stored.x)
        leaf_id, leaf = path[-1]
        leaf_victim = resolve_victim_index(leaf.points, stored)
        if leaf_victim is not None:
            del leaf.points[leaf_victim]
        self.storage.write(leaf_id, leaf)
        for node_id, node in path[:-1]:
            if node.right_open is not None:
                node.right_open.delete(_swap(stored))
        return True

    def _needs_rebuild(self) -> bool:
        threshold = max(16, self._size_at_build // 2)
        return self._updates_since_build >= threshold

    def _descend(self, x: float) -> List[Tuple[int, object]]:
        path: List[Tuple[int, object]] = []
        node_id = self.root_id
        while True:
            node = self.storage.read(node_id)
            path.append((node_id, node))
            if node.is_leaf:
                return path
            node_id = node.children[node.child_index_for(x)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of ``P`` inside an arbitrary axis-parallel rectangle."""
        return self.query_four_sided(query.x_lo, query.x_hi, query.y_lo, query.y_hi)

    def query_four_sided(
        self, x_lo: float, x_hi: float, y_lo: float, y_hi: float
    ) -> List[Point]:
        """Answer ``[x_lo, x_hi] x [y_lo, y_hi]`` in O((n/B)^eps + k/B) I/Os."""
        if self.root_id is None or not self.points:
            return []
        root = self.storage.read(self.root_id)
        if root.is_leaf:
            return self._leaf_skyline(root, x_lo, x_hi, y_lo, y_hi)
        units = self._decompose(x_lo, x_hi)
        result: List[Point] = []
        # Exclusive lower bound on y-coordinates still worth reporting; starts
        # just below y_lo so that points with y exactly y_lo qualify, then grows
        # to the highest reported y (which any unreported candidate to the left
        # would be dominated by).
        beta_exclusive = y_lo if math.isinf(y_lo) else math.nextafter(y_lo, -math.inf)
        for unit in units:
            if isinstance(unit, _LeafBlock):
                found = self._leaf_skyline(
                    unit, x_lo, x_hi, _strictly_above(beta_exclusive), y_hi
                )
            else:
                swapped = unit.right_open.query_top_open(
                    _strictly_above(beta_exclusive), y_hi, -math.inf
                ) if unit.right_open is not None else []
                found = [Point(p.y, p.x, p.ident) for p in swapped]
            if found:
                result.extend(found)
                beta_exclusive = max(beta_exclusive, max(p.y for p in found))
        deduped = {(p.x, p.y): p for p in result}
        return sorted(deduped.values(), key=lambda p: p.x)

    def _decompose(self, x_lo: float, x_hi: float) -> List[object]:
        """Canonical units covering the x-range, ordered by *descending* x.

        Each unit is either a fully-contained internal node (answered through
        its right-open structure) or a leaf block (boundary leaves and
        fully-contained leaves alike are answered by one block read).
        """
        units: List[Tuple[float, object]] = []

        def walk(node_id: int) -> None:
            node = self.storage.read(node_id)
            if node.is_leaf:
                # Units are x-disjoint, so ordering by the unit's maximum x
                # orders them right-to-left.
                x_key = node.points[-1].x if node.points else -math.inf
                units.append((x_key, node))
                return
            for index, child_id in enumerate(node.children):
                prev_sep = node.separators[index - 1] if index > 0 else -math.inf
                child_hi = node.separators[index]
                if prev_sep >= x_hi:
                    break
                if child_hi < x_lo:
                    continue
                if prev_sep >= x_lo and child_hi <= x_hi:
                    child = self.storage.read(child_id)
                    units.append((child_hi, child))
                else:
                    walk(child_id)

        walk(self.root_id)
        units.sort(key=lambda item: -item[0])
        return [node for _, node in units]

    def _leaf_skyline(
        self, leaf: _LeafBlock, x_lo: float, x_hi: float, y_lo: float, y_hi: float
    ) -> List[Point]:
        selected = [
            p
            for p in leaf.points
            if x_lo <= p.x <= x_hi and y_lo <= p.y <= y_hi
        ]
        return skyline(selected)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def height(self) -> int:
        """Levels of the base tree (constant for fixed epsilon)."""
        levels = 1
        node = self.storage.read(self.root_id)
        while not node.is_leaf:
            levels += 1
            node = self.storage.read(node.children[0])
        return levels


def four_sided_query_bound(n: int, k: int, block_size: int, epsilon: float) -> float:
    """The theoretical ``(n/B)^eps + k/B`` bound for benchmark tables."""
    blocks = max(2, n // max(1, block_size))
    return blocks ** epsilon + k / block_size + 1.0
