"""The in-memory write delta: pending inserts and delete tombstones.

Writes never touch the static shard structures directly.  Following the
logarithmic method (Bentley--Saxe), inserts accumulate in a small in-memory
buffer that every query folds into its answer, and deletes of static points
are recorded as tombstones.  When the delta grows past the service's
threshold a compaction rebuilds the static shards from the live point set
and empties the buffer, so the memory the delta occupies stays bounded by
the threshold.

Skyline queries are *not* decomposable under deletion (removing a maximal
point can expose points it used to dominate), so tombstones cannot simply
be filtered out of a shard's precomputed answer.  Instead, a query whose
rectangle contains a tombstone of some shard recomputes that shard's local
skyline from the shard's resident live points; shards untouched by
tombstones keep using their static structures at full I/O efficiency.

Tombstones are bucketed by the *owning shard id* (the shard whose x-range
contains the deleted static point, supplied by the service at
:meth:`DeltaBuffer.add_tombstone` time).  A batch of ``Q`` queries over
``S`` shards therefore probes only each shard's own bucket instead of
sweeping every tombstone ``Q * S`` times.  Buckets are maintained on every
mutation path -- tombstone creation, revival by re-insert, and
:meth:`DeltaBuffer.clear` at compaction -- and shard ids stay valid for the
bucket's whole lifetime because compaction clears the buffer whenever shard
boundaries move.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery

Key = Tuple[float, float, Optional[int]]


def point_key(point: Point) -> Key:
    """Identity key of a stored point: coordinates plus ``ident``."""
    return (point.x, point.y, point.ident)


class DeltaBuffer:
    """Pending inserts plus delete tombstones, with a change version."""

    def __init__(self) -> None:
        self.inserts: Dict[Key, Point] = {}
        self.tombstones: Dict[Key, Point] = {}
        # Shard-id buckets over the same tombstones (``None`` = unknown
        # owner, checked by every shard) plus the reverse key -> sid map
        # that keeps revival O(1).
        self._tombstones_by_shard: Dict[Optional[int], Dict[Key, Point]] = {}
        self._tombstone_shard: Dict[Key, Optional[int]] = {}
        # Bumped on every mutation; result-cache keys embed it, so any
        # write implicitly invalidates every cached answer.
        self.version = 0

    def __len__(self) -> int:
        return len(self.inserts) + len(self.tombstones)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Buffer an insert (re-inserting a tombstoned point revives it)."""
        key = point_key(point)
        if key in self.tombstones:
            del self.tombstones[key]
            self._unbucket(key)
        else:
            self.inserts[key] = point
        self.version += 1

    def remove_insert(self, point: Point) -> Optional[Point]:
        """Drop a pending insert matching ``point``; prefers an exact
        ``ident`` match among coordinate twins.  Returns the removed point
        (so callers can log exactly which point died), or ``None``."""
        victim = self._match(self.inserts, point)
        if victim is None:
            return None
        removed = self.inserts.pop(victim)
        self.version += 1
        return removed

    def add_tombstone(self, point: Point, sid: Optional[int] = None) -> None:
        """Record that the *static* point ``point`` is deleted.

        ``sid`` is the id of the shard owning the point; it buckets the
        tombstone so queries against other shards never scan it.  ``None``
        (owner unknown) lands in a catch-all bucket every shard checks.
        """
        key = point_key(point)
        if key in self.tombstones:
            self._unbucket(key)
        self.tombstones[key] = point
        self._tombstone_shard[key] = sid
        self._tombstones_by_shard.setdefault(sid, {})[key] = point
        self.version += 1

    def clear(self) -> None:
        """Empty the buffer (after a compaction)."""
        self.inserts.clear()
        self.tombstones.clear()
        self._tombstones_by_shard.clear()
        self._tombstone_shard.clear()
        self.version += 1

    def _unbucket(self, key: Key) -> None:
        sid = self._tombstone_shard.pop(key)
        bucket = self._tombstones_by_shard[sid]
        del bucket[key]
        if not bucket:
            del self._tombstones_by_shard[sid]

    # ------------------------------------------------------------------
    # Query-side views
    # ------------------------------------------------------------------
    def is_deleted(self, point: Point) -> bool:
        return point_key(point) in self.tombstones

    def describe(self) -> dict:
        """Current fill of the buffer, for dashboards and reports."""
        return {
            "inserts": len(self.inserts),
            "tombstones": len(self.tombstones),
            "version": self.version,
        }

    def candidates_in(self, query: RangeQuery) -> List[Point]:
        """Pending inserts inside the query rectangle."""
        return [p for p in self.inserts.values() if query.contains(p)]

    def shard_tombstones(self, sid: Optional[int]) -> List[Point]:
        """The tombstones bucketed under shard ``sid`` (test/introspection)."""
        return list(self._tombstones_by_shard.get(sid, {}).values())

    def tombstone_hits(
        self,
        query: RangeQuery,
        x_lo: float,
        x_hi: float,
        sid: Optional[int] = None,
    ) -> bool:
        """Whether a tombstone lies inside ``query`` within ``[x_lo, x_hi)``.

        Only then is the static answer of the shard covering that x-range
        unreliable (a deleted point outside the rectangle can neither appear
        in, nor have dominated anything in, the answer).  When the caller
        passes its shard id, only that shard's bucket (plus the unknown-owner
        catch-all) is scanned; without a ``sid`` the full table is swept.
        """
        if sid is None:
            candidates = list(self.tombstones.values())
        else:
            candidates = self.shard_tombstones(sid)
            candidates.extend(self.shard_tombstones(None))
        return any(
            x_lo <= t.x < x_hi and query.contains(t) for t in candidates
        )

    def _match(self, table: Dict[Key, Point], point: Point) -> Optional[Key]:
        """A key in ``table`` matching ``point``'s coordinates, preferring an
        exact ident match -- the same one-victim semantics as
        :meth:`repro.RangeSkylineIndex.delete`."""
        exact = point_key(point)
        if exact in table:
            return exact
        for key in table:
            if key[0] == point.x and key[1] == point.y:
                return key
        return None
