"""One immutable component of the leveled update subsystem.

A :class:`Component` is a frozen batch of points.  Level components (the
result of a merge) are backed by a static :class:`repro.RangeSkylineIndex`
on a private simulated machine with a private
:class:`~repro.em.counters.IOStats` ledger -- the same isolation discipline
as :class:`~repro.service.shard.Shard`, so queries against a level charge
exactly one ledger and concurrent batch workers never race a counter.
Frozen memtables (a sealed level 0 awaiting its flush merge) carry no
index and no machine: they are still in memory, so scanning them is free,
exactly like the flat delta the leveled path replaces.

Construction of an indexed component eagerly charges the build to the
component's *private* ledger.  The ledger only joins the service-wide
aggregate after the :class:`~repro.service.lsm.CompactionScheduler` has
mirrored the build cost into the maintenance ledger in bounded steps and
reset it -- that escrow is what turns an ``O(m/B)`` build into ``O(1)``
visible work per update.

Shared (inherited) components
-----------------------------
Per-shard towers turn topology changes into metadata moves: a split hands
each child *whole components* instead of carving point slices out of
them.  A component handed across a topology change may therefore be
referenced by several towers at once -- :attr:`Component.refs` counts the
referencing towers, and the component (with its ledger, machine and
index) is retired only when the count drops to zero.  Adoption is a pure
metadata move: :meth:`Component.adopt` wraps an existing shard's already
built index, points and ledger without touching a single block.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.api import RangeSkylineIndex
from repro.core.columns import PointColumns
from repro.core.point import Point
from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.em.storage import StorageManager

#: Owner key of a component in the tombstone table (see
#: :class:`repro.service.delta.DeltaBuffer`): distinct from the plain
#: ``int`` shard ids the base tier uses.
OwnerKey = Tuple[str, int]


class Component:
    """An immutable, x-sorted batch of points, optionally indexed."""

    def __init__(
        self,
        comp_id: int,
        points: Sequence[Point],
        em_config: Optional[EMConfig] = None,
        epsilon: float = 0.5,
        build_index: bool = True,
    ) -> None:
        self.comp_id = comp_id
        self.points: List[Point] = sorted(points, key=lambda p: (p.x, p.y))
        # Columnar twin of ``points`` (parallel x/y/ident arrays): the
        # query path bisects and filters these instead of touching one
        # object per point.  Built once -- the component is immutable.
        self.columns: PointColumns = PointColumns.from_points(self.points)
        self.stats: Optional[IOStats] = None
        self.storage: Optional[StorageManager] = None
        self.index: Optional[RangeSkylineIndex] = None
        # Towers currently referencing this component (0 while it is a
        # private level of exactly one tower -- only inherited components
        # handed across topology changes are refcounted).
        self.refs = 0
        if build_index:
            assert em_config is not None
            self.stats = IOStats()
            self.storage = StorageManager(em_config, stats=self.stats)
            self.index = RangeSkylineIndex(
                self.storage, self.points, dynamic=False, epsilon=epsilon
            )

    @classmethod
    def adopt(
        cls,
        comp_id: int,
        points: Sequence[Point],
        stats: IOStats,
        storage: Optional[StorageManager],
        index: Optional[RangeSkylineIndex],
    ) -> "Component":
        """Wrap an already built index (a retiring base shard's) as a
        component without touching a single block.

        The donor's *ledger object itself* is transferred, not copied:
        its history stays visible through the service aggregate exactly
        as it did while the donor was a shard, so adoption moves zero
        charges and loses zero charges.  ``points`` must already be
        ``(x, y)``-sorted (a shard's always are); the columnar twin is
        rebuilt in memory, which is free in the I/O model.
        """
        comp = cls.__new__(cls)
        comp.comp_id = comp_id
        comp.points = list(points)
        comp.columns = PointColumns.from_points(comp.points)
        comp.stats = stats
        comp.storage = storage
        comp.index = index
        comp.refs = 0
        return comp

    @property
    def owner(self) -> OwnerKey:
        """This component's owner key in the tombstone table."""
        return ("c", self.comp_id)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "level" if self.index is not None else "frozen"
        return f"Component({self.comp_id}, {kind}, {len(self.points)} pts)"
