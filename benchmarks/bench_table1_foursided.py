"""Table 1, row 5 / Theorem 6 (static part): 4-sided range skyline queries.

Claim: O(n/B) space and O((n/B)^eps + k/B) query I/Os, which is optimal in
the indexability model (the matching lower bound is exercised by
``bench_table1_antidominance_lb``).  The sweep varies n and eps.
"""

from __future__ import annotations

import pytest

from repro.api import RangeSkylineIndex
from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.structures.foursided import FourSidedStructure, four_sided_query_bound
from repro.workloads import four_sided_queries, uniform_points

BLOCK_SIZE = 64
SWEEP = [(512, 0.5), (1024, 0.5), (2048, 0.5), (2048, 0.25), (2048, 0.75)]
QUERIES_PER_CONFIG = 8


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 5 -- 4-sided range skyline (static)")
    for n, epsilon in SWEEP:
        storage = make_storage(block_size=BLOCK_SIZE)
        points = uniform_points(n, seed=n + int(100 * epsilon))
        structure = FourSidedStructure(storage, points, epsilon=epsilon)
        queries = four_sided_queries(points, QUERIES_PER_CONFIG, selectivity=0.4, seed=n)
        io_per_query, avg_k = measure_queries(storage, structure, queries)
        table.add(
            measured_io=io_per_query,
            predicted=four_sided_query_bound(n, int(avg_k), BLOCK_SIZE, epsilon),
            n=n,
            eps=epsilon,
            B=BLOCK_SIZE,
            avg_k=round(avg_k, 1),
            height=structure.height(),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_foursided_query_shape(benchmark, sweep_table, capsys):
    """Measured I/Os track (n/B)^eps + k/B within a constant factor."""
    with capsys.disabled():
        sweep_table.show()
    assert sweep_table.max_ratio_spread() < 15.0

    storage = make_storage(block_size=BLOCK_SIZE)
    points = uniform_points(512, seed=5)
    structure = FourSidedStructure(storage, points, epsilon=0.5)
    query = four_sided_queries(points, 1, selectivity=0.4, seed=5)[0]
    benchmark(lambda: structure.query(query))


def test_query_many_batches_match_and_share_warmth(capsys):
    """The facade's batch API answers like sequential queries, cheaper.

    ``RangeSkylineIndex.query_many`` orders the batch by (variant, x_lo),
    so consecutive 4-sided queries descend overlapping base-tree paths;
    with a warm buffer pool the batch never costs more block transfers
    than the same queries issued cold one at a time.
    """
    n = 2048
    storage = make_storage(block_size=BLOCK_SIZE)
    points = uniform_points(n, seed=n)
    index = RangeSkylineIndex(storage, points)
    queries = four_sided_queries(points, QUERIES_PER_CONFIG, selectivity=0.4, seed=n)

    sequential_io = 0
    sequential = []
    for query in queries:
        storage.drop_cache()
        before = storage.io_total()
        sequential.append(index.query(query))
        sequential_io += storage.io_total() - before

    storage.drop_cache()
    before = storage.io_total()
    batch = index.query_many(queries)
    batch_io = storage.io_total() - before

    assert [sorted((p.x, p.y) for p in r) for r in batch] == [
        sorted((p.x, p.y) for p in r) for r in sequential
    ]
    assert batch_io <= sequential_io
    with capsys.disabled():
        print(
            f"\nquery_many: {batch_io} I/Os for the batch vs "
            f"{sequential_io} cold sequential"
        )
