"""Why anti-dominance (and 4-sided) queries are fundamentally harder.

Section 5 of the paper proves that, with linear space, anti-dominance range
skyline queries cannot be answered in O(log_B n + k/B) I/Os: on the
low-discrepancy workload of Lemma 8 *every* layout of the points into blocks
leaves some query whose B-point answer is scattered across polynomially many
blocks.

This example makes the lower bound tangible:

1. it builds the (omega, lambda)-input and its query set;
2. it evaluates three natural linear-size layouts (x-sorted, y-sorted,
   Z-order) and prints how many blocks the worst query needs under each;
3. it runs the paper's 4-sided structure (the matching upper bound) on the
   mirrored workload and contrasts its cost with the cost of an easy
   top-open query of the same output size.
"""

from __future__ import annotations

from repro import TopOpenQuery
from repro.em import EMConfig, StorageManager
from repro.hardness import IndexabilityAnalyzer, chazelle_liu_input
from repro.hardness.indexability import indexability_query_lower_bound
from repro.structures import FourSidedStructure, StaticTopOpenStructure


def main() -> None:
    block_size = 16
    omega, lam = block_size, 3
    workload = chazelle_liu_input(omega, lam)
    print(
        f"Lemma 8 workload: n = {workload.n} points, "
        f"{len(workload.queries)} queries, each answering exactly {omega} points\n"
    )

    print("Blocks needed to cover the answer of a query (ideal = k/B = 1):")
    analyzer = IndexabilityAnalyzer(workload, block_size)
    for report in analyzer.evaluate_standard_layouts():
        print(
            f"  {report.name:<9} layout: avg {report.avg_blocks_per_query:5.2f}, "
            f"worst {report.max_blocks_per_query:3d} blocks"
        )
    bound = indexability_query_lower_bound(workload.n, block_size, redundancy=1.0)
    print(f"  indexability lower bound for linear space: ~{bound:.1f} blocks\n")

    # The matching upper bound (Theorem 6) on the mirrored workload.
    storage = StorageManager(EMConfig(block_size=block_size, memory_blocks=32))
    mirrored = workload.mirrored_points()
    structure = FourSidedStructure(storage, mirrored, epsilon=0.5)
    worst = 0
    sample = workload.mirrored_queries()[:: max(1, len(workload.queries) // 64)]
    for query in sample:
        storage.drop_cache()
        before = storage.snapshot()
        structure.query(query)
        worst = max(worst, (storage.snapshot() - before).total)
    print(f"4-sided structure, worst anti-dominance query : {worst} I/Os")

    # Contrast: a top-open query with the same output size is cheap.
    easy_storage = StorageManager(EMConfig(block_size=block_size, memory_blocks=32))
    easy = StaticTopOpenStructure(easy_storage, mirrored)
    easy_storage.drop_cache()
    before = easy_storage.snapshot()
    result = easy.query(TopOpenQuery(0, workload.n, 0))
    easy_io = (easy_storage.snapshot() - before).total
    print(
        f"top-open structure, whole-range top-open query : {easy_io} I/Os "
        f"({len(result)} points reported)"
    )
    print(
        "\nThe gap between the two is the content of Theorem 5: the skyline\n"
        "requirement does not make 2-sided 'anti-dominance' ranges any easier\n"
        "than general 4-sided range reporting."
    )


if __name__ == "__main__":
    main()
