"""Hot-path equivalence tests (ISSUE 9): columnar kernels, pooled queue,
snapshot-concurrent read batches.

The columnar kernels and the pooled skip-list queue are pure speed
plays: each must be *indistinguishable* from the implementation it
replaced -- identical answers, identical pop order, identical block
ledgers.  Hypothesis drives the equivalence properties over both column
backends (numpy and the pure-python ``array`` fallback) by flipping the
module's backend switch; the concurrency tests run the serving tier's
serial and snapshot-concurrent read disciplines against identical
engines and hold their answers and ledgers equal.
"""

from __future__ import annotations

import heapq
import threading
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.locks import ReadWriteGate, tracked_rw_gate
from repro.core import columns
from repro.core.columns import PointColumns, filter_rect, sort_points_by_x
from repro.core.point import Point
from repro.core.pqueue import BLOCK_NODES, HeapQueue, SkipListPQ
from repro.core.queries import RangeQuery
from repro.engine import QueryRequest, SkylineEngine, UpdateRequest
from repro.serve import ServerConfig, SkylineServer
from repro.service.merge import (
    merge_component_skylines,
    merge_component_skylines_objects,
    merge_shard_skylines,
    merge_shard_skylines_objects,
    merge_with_delta,
)

# ----------------------------------------------------------------------
# Backend switching
# ----------------------------------------------------------------------
BACKENDS = ["python-array"] + (["numpy"] if columns._np is not None else [])


@contextmanager
def _backend(name: str):
    """Run the columnar kernels on the given backend, with the
    small-input cutoff disabled so tiny hypothesis cases still exercise
    the vectorized paths."""
    saved = (columns.HAVE_NUMPY, columns.SMALL_MERGE_CUTOFF)
    columns.HAVE_NUMPY = name == "numpy"
    columns.SMALL_MERGE_CUTOFF = 0
    try:
        yield
    finally:
        columns.HAVE_NUMPY, columns.SMALL_MERGE_CUTOFF = saved


# Distinct coordinates (the service's general-position invariant): draw
# unique x and unique y pools and zip them into points.
def _points_strategy(max_size: int = 60):
    return st.integers(min_value=2, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.integers(0, 10_000), min_size=n, max_size=n, unique=True
            ),
            st.lists(
                st.integers(0, 10_000), min_size=n, max_size=n, unique=True
            ),
        )
    )


def _mk_points(coords) -> list:
    xs, ys = coords
    return [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]


def _canon(points):
    return [(p.x, p.y, p.ident) for p in points]


# ----------------------------------------------------------------------
# Columnar merge kernels vs object references
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(coords=_points_strategy(), k=st.integers(1, 5), data=st.data())
def test_component_merge_matches_objects(coords, k, data):
    points = _mk_points(coords)
    assignment = data.draw(
        st.lists(
            st.integers(0, k - 1),
            min_size=len(points),
            max_size=len(points),
        )
    )
    sources = [[] for _ in range(k)]
    for point, slot in zip(points, assignment):
        sources[slot].append(point)
    sources = [sorted(s, key=lambda p: p.x) for s in sources]
    expected = _canon(merge_component_skylines_objects(sources))
    for name in BACKENDS:
        with _backend(name):
            columnar = [PointColumns.from_points(s) for s in sources]
            got = merge_component_skylines(columnar)
            assert _canon(got) == expected, name
            # Plain sequences are accepted per source too.
            assert _canon(merge_component_skylines(sources)) == expected


@settings(max_examples=60, deadline=None)
@given(coords=_points_strategy(), k=st.integers(1, 5))
def test_shard_merge_matches_objects(coords, k):
    points = sorted(_mk_points(coords), key=lambda p: p.x)
    band = max(1, len(points) // k)
    # Per-shard skylines over an x-disjoint partition, in shard order.
    per_shard = [
        merge_component_skylines_objects([points[i : i + band]])
        for i in range(0, len(points), band)
    ]
    expected = _canon(merge_shard_skylines_objects(per_shard))
    for name in BACKENDS:
        with _backend(name):
            assert _canon(merge_shard_skylines(per_shard)) == expected, name


@settings(max_examples=60, deadline=None)
@given(coords=_points_strategy())
def test_merge_with_delta_matches_union_skyline(coords):
    points = _mk_points(coords)
    half = len(points) // 2
    static, delta = points[:half], points[half:]
    static_result = merge_component_skylines_objects(
        [sorted(static, key=lambda p: p.x)]
    )
    expected = _canon(
        merge_component_skylines_objects([list(static_result), delta])
    )
    assert _canon(merge_with_delta(static_result, delta)) == expected


@settings(max_examples=60, deadline=None)
@given(
    coords=_points_strategy(),
    window=st.tuples(
        st.integers(0, 10_000),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    ),
)
def test_filter_rect_matches_scan(coords, window):
    points = sorted(_mk_points(coords), key=lambda p: p.x)
    x_lo, x_hi = sorted(window[:2])
    y_lo, y_hi = sorted(window[2:])
    expected = _canon(
        [p for p in points if x_lo <= p.x <= x_hi and y_lo <= p.y <= y_hi]
    )
    for name in BACKENDS:
        with _backend(name):
            cols = PointColumns.from_points(points)
            assert _canon(filter_rect(cols, x_lo, x_hi, y_lo, y_hi)) == expected


@settings(max_examples=40, deadline=None)
@given(coords=_points_strategy())
def test_sort_points_by_x_matches_sorted(coords):
    points = _mk_points(coords)
    expected = _canon(sorted(points, key=lambda p: p.x))
    for name in BACKENDS:
        with _backend(name):
            result = sort_points_by_x(points)
            assert _canon(result) == expected, name


def test_columnar_results_are_original_objects():
    points = [Point(float(i), float(100 - i), i) for i in range(100)]
    cols = PointColumns.from_points(points)
    for got in (
        merge_component_skylines([cols]),
        filter_rect(cols, 10.0, 90.0, 0.0, 200.0),
        sort_points_by_x(points),
    ):
        assert all(any(g is p for p in points) for g in got)


# ----------------------------------------------------------------------
# Pooled skip-list queue vs heapq
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    priorities=st.lists(st.integers(0, 8), min_size=0, max_size=80),
    pops=st.lists(st.booleans(), min_size=0, max_size=40),
)
def test_pop_order_matches_heapq(priorities, pops):
    """Interleaved pushes and pops agree with ``heapq`` exactly.

    Priorities collide on purpose; the unique tiebreak (the convention
    every call site follows) makes keys totally ordered, so pop order --
    including among equal priorities -- must be identical.
    """
    pooled = SkipListPQ()
    reference: list = []
    items = [(priority, seq) for seq, priority in enumerate(priorities)]
    ops = iter(pops)
    for item in items:
        pooled.push(item)
        heapq.heappush(reference, item)
        assert pooled.peek() == reference[0]
        if next(ops, False) and reference:
            assert pooled.pop() == heapq.heappop(reference)
    assert len(pooled) == len(reference)
    while reference:
        assert pooled.pop() == heapq.heappop(reference)
    assert not pooled
    with pytest.raises(IndexError):
        pooled.pop()


def test_heap_queue_adapter_matches_heapq_api():
    queue = HeapQueue()
    for value in (5, 1, 3):
        queue.push((value, value))
    assert queue.peek() == (1, 1)
    assert [queue.pop() for _ in range(3)] == [(1, 1), (3, 3), (5, 5)]
    assert not queue and len(queue) == 0


def test_skiplist_pool_is_reused_across_cycles():
    queue = SkipListPQ()
    for item in range(BLOCK_NODES):
        queue.push((item, item))
    capacity = queue.capacity
    for _ in range(5):
        while queue:
            queue.pop()
        for item in range(BLOCK_NODES):
            queue.push((item, item))
        # Steady-state churn allocates no new node blocks.
        assert queue.capacity == capacity
    queue.clear()
    assert len(queue) == 0 and queue.capacity == capacity


# ----------------------------------------------------------------------
# ReadWriteGate
# ----------------------------------------------------------------------
def test_gate_counts_readers_and_serializes_writers():
    gate: ReadWriteGate = tracked_rw_gate("test.hotpath.gate")
    assert gate.readers == 0
    with gate.read():
        assert gate.readers == 1
        with gate.read():  # another reader may share the gate
            assert gate.readers == 2
    assert gate.readers == 0

    entered = threading.Event()
    release = threading.Event()
    observed: list = []

    def writer() -> None:
        with gate.write():
            entered.set()
            release.wait(timeout=10.0)
            observed.append(gate.readers)

    thread = threading.Thread(target=writer)
    thread.start()
    assert entered.wait(timeout=10.0)

    blocked_reader_done = threading.Event()

    def reader() -> None:
        with gate.read():
            blocked_reader_done.set()

    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    # The reader cannot enter while the writer holds the gate.
    assert not blocked_reader_done.wait(timeout=0.05)
    release.set()
    assert blocked_reader_done.wait(timeout=10.0)
    thread.join()
    reader_thread.join()
    assert observed == [0]


def test_gate_prefers_waiting_writers():
    gate: ReadWriteGate = tracked_rw_gate("test.hotpath.gate2")
    reader_in = threading.Event()
    release_reader = threading.Event()
    writer_done = threading.Event()
    late_reader_in = threading.Event()
    order: list = []

    def first_reader() -> None:
        with gate.read():
            reader_in.set()
            release_reader.wait(timeout=10.0)

    def writer() -> None:
        with gate.write():
            order.append("writer")
        writer_done.set()

    def late_reader() -> None:
        with gate.read():
            late_reader_in.set()
            order.append("late-reader")

    threading.Thread(target=first_reader).start()
    assert reader_in.wait(timeout=10.0)
    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    while gate._writers_waiting == 0:  # writer registered as waiting
        pass
    late = threading.Thread(target=late_reader)
    late.start()
    # Write preference: the late reader must not slip past the waiting
    # writer even though a reader currently holds the gate.
    assert not late_reader_in.wait(timeout=0.05)
    release_reader.set()
    assert writer_done.wait(timeout=10.0)
    assert late_reader_in.wait(timeout=10.0)
    writer_thread.join()
    late.join()
    assert order == ["writer", "late-reader"]


# ----------------------------------------------------------------------
# Snapshot-concurrent read batches
# ----------------------------------------------------------------------
def _mk_engine(seed: int = 0) -> SkylineEngine:
    import random

    rng = random.Random(seed)
    xs = rng.sample(range(100_000), 1500)
    ys = rng.sample(range(100_000), 1500)
    points = [Point(float(x), float(y), i) for i, (x, y) in enumerate(zip(xs, ys))]
    return SkylineEngine.sharded(
        points, shard_count=4, block_size=16, memory_blocks=8, cache_capacity=0
    )


def _partition_holds(engine: SkylineEngine) -> bool:
    return (
        engine.attributed_io() + engine.maintenance_io()
        == engine.io_total() - engine.build_io
    )


def _run_clients(server: SkylineServer, rects, clients: int = 4):
    """Closed-loop clients with two requests outstanding each."""
    per = len(rects) // clients
    answers = {}
    lock = threading.Lock()

    def loop(cid: int) -> None:
        pending = []
        local = {}
        for rect in rects[cid * per : (cid + 1) * per]:
            pending.append(
                (rect, server.submit_query(QueryRequest(rect=rect, consistency="fresh")))
            )
            if len(pending) >= 2:
                done, future = pending.pop(0)
                local[(done.x_lo, done.x_hi)] = _canon(
                    future.result(timeout=60.0).points
                )
        for done, future in pending:
            local[(done.x_lo, done.x_hi)] = _canon(
                future.result(timeout=60.0).points
            )
        with lock:
            answers.update(local)

    threads = [threading.Thread(target=loop, args=(cid,)) for cid in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return answers


def test_concurrent_read_batches_match_serial():
    rects = [
        RangeQuery(x_lo=i * 2000.0, x_hi=(i + 1) * 2000.0 - 1.0)
        for i in range(32)
    ]
    results = {}
    ledgers = {}
    for concurrency in (1, 4):
        engine = _mk_engine()
        config = ServerConfig(
            gather_window=0.002, max_batch=16, read_concurrency=concurrency
        )
        with SkylineServer(engine, config) as server:
            results[concurrency] = _run_clients(server, rects)
            status = server.describe()
        assert status["server"]["read_concurrency"] == concurrency
        assert _partition_holds(engine)
        ledgers[concurrency] = (
            engine.io_total(),
            engine.attributed_io(),
            engine.maintenance_io(),
        )
    assert results[1] == results[4]
    assert ledgers[1] == ledgers[4]


def test_pinned_version_reporting():
    engine = _mk_engine(seed=1)
    config = ServerConfig(gather_window=0.0, read_concurrency=4)
    with SkylineServer(engine, config) as server:
        first = server.query(RangeQuery(x_lo=0.0, x_hi=50_000.0))
        assert first.serving.pinned_version == 0
        written = server.update(
            UpdateRequest.insert(Point(123_456.5, 123_456.5, 999_999))
        )
        assert written.serving.pinned_version == 1
        after = server.query(RangeQuery(x_lo=0.0, x_hi=200_000.0))
        assert after.serving.pinned_version == 1
        status = server.describe()
    assert status["server"]["writes_applied"] == 1
    assert _partition_holds(engine)


def test_read_concurrency_degrades_safely():
    # Without in-batch coalescing the singles path drives the engine's
    # exclusive query API, so the server must fall back to serial reads.
    engine = _mk_engine(seed=2)
    config = ServerConfig(coalesce=False, read_concurrency=4)
    with SkylineServer(engine, config) as server:
        served = server.query(RangeQuery(x_lo=0.0, x_hi=10_000.0))
        assert served.serving.pinned_version == 0
        status = server.describe()
    assert status["server"]["read_concurrency"] == 1

    # A backend without a uid-keyed worker pool (no sharded service)
    # degrades the same way.
    local = SkylineEngine.local(
        [Point(float(i), float(50 - i), i) for i in range(50)]
    )
    with SkylineServer(local, ServerConfig(read_concurrency=8)) as server:
        server.query(RangeQuery(x_lo=0.0, x_hi=100.0))
        status = server.describe()
    assert status["server"]["read_concurrency"] == 1
