"""Measurement helpers shared by all benchmarks."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.storage import StorageManager


def make_storage(block_size: int = 64, memory_blocks: int = 32) -> StorageManager:
    """A fresh simulated machine for one benchmark configuration."""
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=memory_blocks))


def measure_build(
    storage: StorageManager, builder: Callable[[], object]
) -> Tuple[object, int]:
    """Build a structure and return it with the I/Os the construction charged."""
    before = storage.snapshot()
    structure = builder()
    delta = storage.snapshot() - before
    return structure, delta.total


def measure_queries(
    storage: StorageManager,
    structure,
    queries: Sequence[RangeQuery],
    cold_cache: bool = True,
) -> Tuple[float, float]:
    """Average (I/Os, output size) per query.

    With ``cold_cache`` the buffer pool is dropped before each query, so the
    figure reflects the worst-case cost the paper's bounds describe rather
    than cross-query cache reuse.
    """
    total_io = 0
    total_k = 0
    for query in queries:
        if cold_cache:
            storage.drop_cache()
        before = storage.snapshot()
        result = structure.query(query)
        total_io += (storage.snapshot() - before).total
        total_k += len(result)
    count = max(1, len(queries))
    return total_io / count, total_k / count


def average_query_ios(
    storage: StorageManager,
    run_query: Callable[[RangeQuery], List[Point]],
    queries: Sequence[RangeQuery],
    cold_cache: bool = True,
) -> Tuple[float, float]:
    """Like :func:`measure_queries` but for a bare query callable."""
    total_io = 0
    total_k = 0
    for query in queries:
        if cold_cache:
            storage.drop_cache()
        before = storage.snapshot()
        result = run_query(query)
        total_io += (storage.snapshot() - before).total
        total_k += len(result)
    count = max(1, len(queries))
    return total_io / count, total_k / count


def measure_updates(
    storage: StorageManager,
    apply_update: Callable[[Point], None],
    points: Iterable[Point],
    cold_cache: bool = False,
) -> float:
    """Average I/Os per update over a stream of points."""
    total_io = 0
    count = 0
    for point in points:
        if cold_cache:
            storage.drop_cache()
        before = storage.snapshot()
        apply_update(point)
        total_io += (storage.snapshot() - before).total
        count += 1
    return total_io / max(1, count)
