"""Table 1, row 4 / Theorem 5: the anti-dominance lower bound.

Claim: any linear-size structure (in the indexability model) needs
Omega((n/B)^eps + k/B) I/Os for anti-dominance queries in the worst case.
The experiment builds the (omega, lambda)-input of Lemma 8 with omega = B,
so every query outputs exactly B points (one "ideal" block), and then

* evaluates standard linear-size block layouts with the indexability
  analyzer -- the worst query must touch far more than k/B = 1 blocks and
  the blow-up grows with n; and
* runs the 4-sided structure (the matching upper bound) on the mirrored
  workload, showing it pays the predicted (n/B)^eps cost, unlike on the
  easy top-open workloads of rows 1-3.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable
from repro.bench.harness import make_storage
from repro.core.queries import FourSidedQuery
from repro.hardness import IndexabilityAnalyzer, chazelle_liu_input
from repro.hardness.indexability import indexability_query_lower_bound
from repro.structures.foursided import FourSidedStructure

BLOCK_SIZE = 16  # omega = B; kept small so omega^lambda stays tractable
SWEEP_LAMBDA = [2, 3]
EPSILON = 0.5


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 4 -- anti-dominance lower bound (Lemma 8/9)")
    for lam in SWEEP_LAMBDA:
        workload = chazelle_liu_input(BLOCK_SIZE, lam)
        analyzer = IndexabilityAnalyzer(workload, BLOCK_SIZE)
        reports = analyzer.evaluate_standard_layouts()
        worst_layout = min(reports, key=lambda r: r.max_blocks_per_query)

        # The matching upper bound: run the 4-sided structure on the mirrored
        # anti-dominance workload and measure I/Os of the worst query.
        storage = make_storage(block_size=BLOCK_SIZE)
        mirrored = workload.mirrored_points()
        structure = FourSidedStructure(storage, mirrored, epsilon=EPSILON)
        worst_structure_io = 0
        for query in workload.mirrored_queries()[:: max(1, len(workload.queries) // 32)]:
            storage.drop_cache()
            before = storage.snapshot()
            structure.query_four_sided(query.x_lo, query.x_hi, query.y_lo, query.y_hi)
            worst_structure_io = max(
                worst_structure_io, (storage.snapshot() - before).total
            )

        table.add(
            measured_io=worst_layout.max_blocks_per_query,
            predicted=indexability_query_lower_bound(workload.n, BLOCK_SIZE, 1.0),
            n=workload.n,
            omega=BLOCK_SIZE,
            lam=lam,
            ideal_k_over_B=worst_layout.optimal_blocks_per_query,
            best_layout_avg=round(
                min(r.avg_blocks_per_query for r in reports), 2
            ),
            foursided_worst_io=worst_structure_io,
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_antidominance_is_polynomially_hard(benchmark, sweep_table, capsys):
    """No standard linear layout answers the worst query in O(k/B) blocks."""
    with capsys.disabled():
        sweep_table.show()
    for row in sweep_table.rows:
        # The ideal output cost is one block (k = omega = B); every layout
        # needs several times that on its worst query, and the gap grows with n.
        assert row.measured_io >= 2 * row.params["ideal_k_over_B"]
    measured = sweep_table.measured_values()
    assert measured[-1] > measured[0]

    workload = chazelle_liu_input(BLOCK_SIZE, 2)
    analyzer = IndexabilityAnalyzer(workload, BLOCK_SIZE)
    benchmark(lambda: analyzer.evaluate_standard_layouts())
