"""Tunables of the async serving runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: ``block`` makes an over-capacity submission wait for queue space (up to
#: ``submit_timeout``); ``shed`` rejects it immediately with a typed
#: :class:`~repro.serve.errors.Overloaded` failure on the returned future.
BACKPRESSURE_POLICIES = ("block", "shed")


@dataclass(frozen=True)
class ServerConfig:
    """Parameters of a :class:`repro.serve.SkylineServer`.

    Attributes
    ----------
    gather_window:
        Cross-caller coalescing window, in seconds.  After the dispatcher
        pulls the first pending read it keeps gathering submissions for at
        most this long (or until ``max_batch``), so concurrent callers
        hitting the service within one window are served as *one* batch
        and duplicate rectangles among them execute once.  ``0`` still
        drains whatever is already queued (burst coalescing) but never
        waits for stragglers.  With ``adaptive_gather`` this value is only
        the starting point.
    adaptive_gather:
        Adapt the gather window to the *observed* read arrival rate: the
        dispatcher keeps an EWMA of submission inter-arrival gaps and
        sizes the window to roughly the time ``max_batch`` submissions
        take to arrive, clamped to ``[0, gather_window_max]``.  Under a
        fast stream the window shrinks (no pointless waiting); under a
        trickle it stops stretching past the clamp, so latency stays
        bounded.  ``describe()`` reports the currently effective window.
    gather_alpha:
        EWMA smoothing factor in ``(0, 1]`` for the arrival-gap estimate
        (higher = reacts faster to rate changes).
    gather_window_max:
        Upper clamp of the adaptive window, seconds.  ``None`` defaults
        to ``4 * gather_window``.
    max_batch:
        Upper bound on the submissions gathered into one read batch.
    coalesce:
        Whether identical requests within a gathered batch are collapsed
        onto one execution (the leader computes, every follower shares the
        answer; fan-in is reported per response).  Off, every gathered
        submission executes individually -- the uncoalesced baseline
        ``benchmarks/bench_serving.py`` measures against.
    max_read_queue / max_write_queue:
        Admission-control bounds on the two intake queues.  A full queue
        triggers the ``backpressure`` policy, so queue wait -- and
        therefore tail latency -- is bounded by construction.
    backpressure:
        ``"block"`` or ``"shed"`` -- see :data:`BACKPRESSURE_POLICIES`.
    submit_timeout:
        Under the ``block`` policy, how long a submission may wait for
        queue space before it is shed anyway (``None`` = wait forever).
    default_deadline:
        Default per-request deadline in seconds from submission (``None``
        = no deadline).  A submission still queued past its deadline is
        failed with :class:`~repro.serve.errors.DeadlineExceeded` instead
        of executing; a per-call ``deadline=`` overrides this default.
    latency_samples:
        Size of the reservoir of recent end-to-end latencies the server's
        metrics keep for percentile reporting.
    max_subscription_queue:
        Bound on each subscription's pending-notification queue.  A
        subscriber that stops draining is *shed*: its subscription is
        cancelled with a terminal :class:`~repro.serve.errors.Overloaded`
        -- the same admission-control stance the intake queues take, so a
        slow consumer cannot hold delta history without bound.
    read_concurrency:
        Gathered read batches allowed to execute concurrently.  ``1``
        (the default) reproduces the classic serial discipline: the
        dispatcher executes each batch inline before gathering the next.
        Above 1, batches run on a small read-lane executor against a
        frozen snapshot (writes still serialize on the write side of the
        server's read/write gate), so gathering the next window overlaps
        executing the previous one.  The server silently degrades the
        effective value to 1 when the backend has no uid-keyed shard
        worker pool or in-batch coalescing is off -- the only
        configurations whose ledger charges are single-thread per shard.
    """

    gather_window: float = 0.002
    adaptive_gather: bool = False
    gather_alpha: float = 0.2
    gather_window_max: Optional[float] = None
    max_batch: int = 64
    coalesce: bool = True
    max_read_queue: int = 1024
    max_write_queue: int = 1024
    backpressure: str = "block"
    submit_timeout: Optional[float] = None
    default_deadline: Optional[float] = None
    latency_samples: int = 8192
    max_subscription_queue: int = 256
    read_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.gather_window < 0:
            raise ValueError(
                f"gather_window must be >= 0, got {self.gather_window}"
            )
        if not 0 < self.gather_alpha <= 1:
            raise ValueError(
                f"gather_alpha must be in (0, 1], got {self.gather_alpha}"
            )
        if self.gather_window_max is not None and self.gather_window_max < 0:
            raise ValueError(
                f"gather_window_max must be >= 0 or None, "
                f"got {self.gather_window_max}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_read_queue < 1:
            raise ValueError(
                f"max_read_queue must be >= 1, got {self.max_read_queue}"
            )
        if self.max_write_queue < 1:
            raise ValueError(
                f"max_write_queue must be >= 1, got {self.max_write_queue}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.submit_timeout is not None and self.submit_timeout <= 0:
            raise ValueError(
                f"submit_timeout must be > 0 or None, got {self.submit_timeout}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0 or None, got {self.default_deadline}"
            )
        if self.latency_samples < 1:
            raise ValueError(
                f"latency_samples must be >= 1, got {self.latency_samples}"
            )
        if self.max_subscription_queue < 1:
            raise ValueError(
                f"max_subscription_queue must be >= 1, "
                f"got {self.max_subscription_queue}"
            )
        if self.read_concurrency < 1:
            raise ValueError(
                f"read_concurrency must be >= 1, got {self.read_concurrency}"
            )
