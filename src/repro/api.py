"""High-level facade routing each query variant to the right structure.

The paper separates the *easy* variants (top-open, right-open, dominance,
contour -- answerable in O(log_B n + k/B) or better) from the *hard* ones
(left-open, bottom-open, anti-dominance and general 4-sided -- which
provably require Omega((n/B)^eps + k/B) I/Os with linear space).
:class:`RangeSkylineIndex` mirrors that separation: it keeps one top-open
structure for each "easy" orientation and a 4-sided structure for everything
else, and dispatches on the shape of the query rectangle.

Right-open queries are served by a top-open structure over the
coordinate-swapped point set (dominance is symmetric under swapping the
axes), exactly as Theorem 6 uses right-open structures internally.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.point import Point, resolve_victim_index
from repro.core.queries import RangeQuery, classify
from repro.em.storage import StorageManager
from repro.structures.dynamic_topopen import DynamicTopOpenStructure
from repro.structures.foursided import FourSidedStructure
from repro.structures.topopen_static import StaticTopOpenStructure


def _swap(point: Point) -> Point:
    return Point(point.y, point.x, point.ident)


class RangeSkylineIndex:
    """One index, every query variant of Figure 2, with the paper's costs.

    Parameters
    ----------
    storage:
        The simulated machine to charge I/Os to.
    points:
        The initial point set.
    dynamic:
        With ``dynamic=True`` the easy orientations are backed by the
        dynamic structure of Theorem 4 (so :meth:`insert` / :meth:`delete`
        are supported); otherwise the static structures of Theorems 1 and 6
        are used and updates raise ``TypeError``.
    epsilon:
        The query/update trade-off knob of Theorems 4 and 6.
    """

    def __init__(
        self,
        storage: StorageManager,
        points: Iterable[Point],
        dynamic: bool = False,
        epsilon: float = 0.5,
    ) -> None:
        self.storage = storage
        self.dynamic = dynamic
        self.epsilon = epsilon
        self.points: List[Point] = list(points)
        swapped = [_swap(p) for p in self.points]
        if dynamic:
            self._top_open = DynamicTopOpenStructure(
                storage, points=self.points, epsilon=epsilon
            )
            self._right_open = DynamicTopOpenStructure(
                storage, points=swapped, epsilon=epsilon
            )
        else:
            self._top_open = StaticTopOpenStructure(storage, self.points)
            self._right_open = StaticTopOpenStructure(storage, swapped)
        self._four_sided = FourSidedStructure(storage, self.points, epsilon=max(0.25, epsilon))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of the indexed points inside ``query``, sorted by x."""
        if not self.points:
            return []
        label = classify(query)
        if label in ("top-open", "dominance", "contour", "unbounded", "1-sided"):
            return self._top_open.query_top_open(query.x_lo, query.x_hi, query.y_lo)
        if label == "right-open":
            swapped = self._right_open.query_top_open(query.y_lo, query.y_hi, query.x_lo)
            return sorted((_swap(p) for p in swapped), key=lambda p: p.x)
        # Left-open, bottom-open, anti-dominance, slabs and 4-sided queries
        # are exactly as hard as the general case (Theorem 5), so they all go
        # to the 4-sided structure (Theorem 6).
        return self._four_sided.query_four_sided(
            query.x_lo, query.x_hi, query.y_lo, query.y_hi
        )

    def query_many(self, queries: Sequence[RangeQuery]) -> List[List[Point]]:
        """Answer a batch of queries; ``result[i]`` answers ``queries[i]``.

        The batch is executed grouped by query variant and, within a group,
        in increasing ``x_lo`` order, so consecutive queries descend through
        the same structure along nearby root-to-leaf paths and reuse warm
        buffer-pool frames.  :class:`repro.service.SkylineService` exposes the
        same method, so callers can swap a monolithic index for the sharded
        service without changing the calling code.
        """
        order = sorted(
            range(len(queries)),
            key=lambda i: (classify(queries[i]), queries[i].x_lo, queries[i].y_lo),
        )
        results: List[Optional[List[Point]]] = [None] * len(queries)
        for i in order:
            results[i] = self.query(queries[i])
        return results  # type: ignore[return-value]

    def skyline(self) -> List[Point]:
        """The skyline of the whole point set."""
        return self._top_open.query_top_open(float("-inf"), float("inf"), float("-inf"))

    # ------------------------------------------------------------------
    # Updates (dynamic mode only)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert a point (requires ``dynamic=True``)."""
        self._require_dynamic()
        self.points.append(point)
        self._top_open.insert(point)
        self._right_open.insert(_swap(point))
        self._four_sided.insert(point)

    def delete(self, point: Point) -> bool:
        """Delete a point by coordinates (requires ``dynamic=True``).

        Exactly one stored point is removed: among the points matching the
        coordinates, one whose ``ident`` equals ``point.ident`` is preferred,
        so deleting ``Point(x, y, 7)`` never silently drops a coordinate
        twin ``Point(x, y, 8)``.  The victim is resolved *once*, here, and
        the resolved point (with its stored ``ident``) is handed to every
        structure -- including the axis-swapped right-open structure, whose
        own delete also prefers an exact ``ident`` match -- so all three
        structures and the point list drop the same identity.
        """
        self._require_dynamic()
        victim_index = resolve_victim_index(self.points, point)
        if victim_index is None:
            return False
        victim = self.points[victim_index]
        removed = self._top_open.delete(victim)
        if removed:
            self._right_open.delete(_swap(victim))
            self._four_sided.delete(victim)
            del self.points[victim_index]
        return removed

    def _require_dynamic(self) -> None:
        if not self.dynamic:
            raise TypeError(
                "this index was built statically; pass dynamic=True to support updates"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def io_total(self) -> int:
        """Block transfers charged to the underlying simulated machine so far."""
        return self.storage.io_total()

    @property
    def four_sided_epsilon(self) -> float:
        """The epsilon the 4-sided structure actually runs with.

        The facade floors the knob at 0.25 for the 4-sided structure
        (very small epsilons make its base-tree fanout degenerate); the
        engine's planner quotes this value when instantiating Theorem 6's
        bound.
        """
        return self._four_sided.epsilon

    def engine(self) -> "object":
        """Migration shim: this index wrapped as a :class:`repro.engine
        .SkylineEngine` (the recommended request/response front door)."""
        from repro.engine import LocalIndexBackend, SkylineEngine

        return SkylineEngine(LocalIndexBackend(self))


def __getattr__(name: str):
    # Deprecated lazy re-export of the service tier.  ``repro.service``
    # builds on this module, so a top-level import here would be circular;
    # resolving the names on first attribute access keeps ``from repro.api
    # import SkylineService`` working without the cycle -- but new code
    # should import from ``repro.service`` (or serve everything through
    # ``repro.engine.SkylineEngine``).
    if name in ("SkylineService", "ServiceConfig"):
        import warnings

        warnings.warn(
            f"importing {name} from repro.api is deprecated; import it from "
            "repro.service, or serve through repro.engine.SkylineEngine",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
