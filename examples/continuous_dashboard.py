"""An asyncio dashboard fed by continuous skyline subscriptions.

One :class:`repro.serve.SkylineServer` serves a producer coroutine that
streams inserts through the writer lane and a dashboard coroutine that
never polls: it registered a rectangle with
:meth:`~repro.serve.SkylineServer.subscribe` and sits in ``async for
delta in handle.deltas()``, redrawing only when points actually enter or
leave the watched skyline.  The server pumps its
:class:`repro.stream.SubscriptionManager` after every applied write, and
the per-shard ``(uid, write_version)`` scopes mean a write outside the
watched x-band costs the dashboard zero block transfers.

Run it::

    PYTHONPATH=src python examples/continuous_dashboard.py
"""

from __future__ import annotations

import asyncio
import random

from repro import Point, RangeQuery
from repro.engine import SkylineEngine, SubscribeRequest
from repro.serve import ServerConfig, SkylineServer
from repro.workloads import uniform_points

UNIVERSE = 1_000_000
WATCHED = RangeQuery(x_lo=0.25 * UNIVERSE, x_hi=0.75 * UNIVERSE)
PRODUCED = 200


async def producer(server: SkylineServer) -> None:
    """Stream inserts through the writer lane, everywhere on the x-axis."""
    rng = random.Random(11)
    for i in range(PRODUCED):
        point = Point(
            rng.uniform(0, UNIVERSE) + (i + 1) / (PRODUCED + 2.0),
            rng.uniform(0, UNIVERSE) + (i + 1) / (PRODUCED + 2.0),
            ident=10_000 + i,
        )
        await server.ainsert(point)
        if i % 50 == 49:
            await asyncio.sleep(0)  # let the dashboard breathe


async def dashboard(handle) -> int:
    """Redraw on deltas only; returns how many redraws happened.

    The ``async for`` ends cleanly when the handle is closed -- no
    polling, no cancellation, no sentinel values in user code.
    """
    redraws = 0
    view: set = set()
    async for delta in handle.deltas():
        for left in delta.left:
            view.discard((left.x, left.y, left.ident))
        for entered in delta.entered:
            view.add((entered.x, entered.y, entered.ident))
        redraws += 1
        print(
            f"redraw {redraws:>2}: rev {delta.revision:>2}, "
            f"+{len(delta.entered)} / -{len(delta.left)}, "
            f"view holds {len(view)} maxima "
            f"({delta.report.blocks} blocks charged)"
        )
    return redraws


async def main() -> None:
    engine = SkylineEngine.sharded(
        uniform_points(512, universe=UNIVERSE, seed=7),
        shard_count=4,
        cache_capacity=0,
    )
    server = SkylineServer(engine, ServerConfig(adaptive_gather=True))
    try:
        handle = server.subscribe(SubscribeRequest(WATCHED))
        redraw_task = asyncio.create_task(dashboard(handle))
        await producer(server)
        # The producer is done; let the last pump land, then end the
        # subscription -- the dashboard's iterator finishes by itself.
        await asyncio.sleep(0.1)
        handle.close()
        redraws = await redraw_task
        status = server.describe()["server"]
        subs = status["subscriptions"]
        print()
        print(f"writes produced        : {PRODUCED}")
        print(f"dashboard redraws      : {redraws}")
        print(
            f"pump economics         : {subs['recomputed']} recomputed, "
            f"{subs['skipped']} skipped by write-version scope"
        )
        print(f"notification blocks    : {subs['notify_blocks']}")
        print(f"adaptive gather window : {status['gather_window_s']*1e3:.3f} ms")
    finally:
        server.stop()


if __name__ == "__main__":
    asyncio.run(main())
