"""Static lock-discipline pass over the concurrency tier.

Scope: ``serve/``, ``service/``, ``engine/`` and ``stream/`` -- the
packages where threads meet shared state (the dispatcher and writer
lanes, the shard worker pool, the engine the server serializes on, the
subscription manager the writer lane pumps).  The pass extracts
every lock the tier creates, builds the **static lock-order graph**, and
enforces four rules:

``untracked-lock``
    Locks in the tier must be created through
    :func:`repro.analysis.locks.tracked_lock` /
    :func:`~repro.analysis.locks.tracked_condition` so they carry a
    stable name and the runtime tracker can see them.  A raw
    ``threading.Lock()``/``RLock()``/``Condition()`` is flagged unless
    annotated ``# repro: untracked-lock(<reason>)``.

``lock-cycle``
    The static order graph must be acyclic.  Edges come from lexical
    nesting (``with a: ... with b:``), from calls the pass can resolve
    *reliably* (``self.method(...)`` to the same class, bare calls to
    module-level functions of the same file), and from declared dynamic
    hops: a call that dispatches through a pluggable attribute or
    across a module boundary carries a ``# repro: calls(Class.method)``
    directive naming its target.  The runtime tracker
    (:class:`repro.analysis.locks.LockOrderTracker`) closes the loop:
    under ``REPRO_SANITIZE=1`` every *observed* edge must appear in this
    static graph, so a missing ``calls`` annotation fails the sanitized
    suite instead of silently shrinking the graph.

``unguarded-call``
    A ``tracked_lock(...)`` construction annotated
    ``# repro: guards(<attr>)`` declares that every call through
    ``self.<attr>`` in the same class must be dominated by a ``with`` on
    that lock (the server's engine-lock discipline: nothing touches the
    engine outside the lock).  Calls in ``__init__`` are exempt (the
    lanes have not started); deliberate exceptions elsewhere carry
    ``# repro: unguarded-call(<reason>)``.

``unknown-directive-target``
    A ``calls(...)`` directive naming a function the pass cannot find is
    an error -- a stale annotation would silently drop graph edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, read_sources, sort_findings
from repro.analysis.pragmas import PragmaMap, scan_pragmas

RULE_UNTRACKED = "untracked-lock"
RULE_CYCLE = "lock-cycle"
RULE_UNGUARDED = "unguarded-call"
RULE_BAD_DIRECTIVE = "unknown-directive-target"

#: Sub-packages of ``src/repro`` the pass runs over by default.  ``core``
#: carries no locks of its own; it is in scope so the hot-path kernels
#: (``core/columns.py``, ``core/pqueue.py``) stay covered by the guard
#: and directive checks as they grow.
DEFAULT_SCOPE: Tuple[str, ...] = (
    "serve",
    "service",
    "engine",
    "stream",
    "core",
)

TRACKED_FACTORIES = frozenset(
    {"tracked_lock", "tracked_condition", "tracked_rw_gate"}
)

#: Side selectors of a :class:`repro.analysis.locks.ReadWriteGate`:
#: ``with self._gate.read():`` / ``with self._gate.write():`` acquire the
#: gate's single name (both sides share it -- the gate serializes its own
#: transitions internally).
GATE_SIDES = frozenset({"read", "write"})
RAW_LOCK_TYPES = frozenset({"Lock", "RLock", "Condition"})

FuncKey = Tuple[str, Optional[str], str]  # (module, class or None, name)


@dataclass(frozen=True)
class LockDef:
    """One lock creation site."""

    name: str  # stable lock name (factory argument, or synthesized)
    module: str
    cls: Optional[str]
    attr: str
    line: int
    tracked: bool


@dataclass
class _FuncInfo:
    key: FuncKey
    path: str
    # (lock name, locks held at that point, line)
    acquisitions: List[Tuple[str, Tuple[str, ...], int]] = field(
        default_factory=list
    )
    # (resolution spec, locks held, line); spec is ("self"|"exact", name)
    calls: List[Tuple[Tuple[str, str], Tuple[str, ...], int]] = field(
        default_factory=list
    )
    # calls through guarded attributes: (attr, locks held, line, pragma ok)
    guarded_uses: List[Tuple[str, Tuple[str, ...], int, bool]] = field(
        default_factory=list
    )


@dataclass
class Analysis:
    """The extracted lock model of one scope."""

    locks: List[LockDef]
    edges: Set[Tuple[str, str]]
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]]
    findings: List[Finding]

    def lock_names(self) -> Set[str]:
        return {lock.name for lock in self.locks}


def _module_label(path: str) -> str:
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


def _terminal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _Extractor(ast.NodeVisitor):
    """First pass over one file: lock definitions and guard directives."""

    def __init__(self, path: str, pragmas: PragmaMap) -> None:
        self.path = path
        self.module = _module_label(path)
        self.pragmas = pragmas
        self.locks: List[LockDef] = []
        # (class, guarded attr) -> lock name
        self.guards: Dict[Tuple[str, str], str] = {}
        self.findings: List[Finding] = []
        self._class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        self._maybe_lock_assign(node.targets, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._maybe_lock_assign([node.target], node.value, node.lineno)
        self.generic_visit(node)

    def _maybe_lock_assign(
        self, targets: Sequence[ast.expr], value: ast.expr, line: int
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        callee = _terminal(value.func)
        if callee is None:
            return
        attr = self._target_attr(targets)
        cls = self._class_stack[-1] if self._class_stack else None
        if callee in TRACKED_FACTORIES:
            if attr is None:
                return
            name = self._factory_name(value) or f"{self.module}.{attr}"
            self.locks.append(
                LockDef(
                    name=name,
                    module=self.module,
                    cls=cls,
                    attr=attr,
                    line=line,
                    tracked=True,
                )
            )
            for directive in self.pragmas.find_all("guards", line):
                if cls is not None and directive.argument:
                    self.guards[(cls, directive.argument)] = name
            return
        if callee in RAW_LOCK_TYPES and self._is_threading_call(value.func):
            if attr is None:
                return
            pragma = self.pragmas.find(RULE_UNTRACKED, line)
            if pragma is None or not pragma.argument:
                self.findings.append(
                    Finding(
                        rule=RULE_UNTRACKED,
                        path=self.path,
                        line=line,
                        message=(
                            f"raw threading.{callee}() in the concurrency "
                            "tier -- create it via repro.analysis.locks."
                            "tracked_lock/tracked_condition so reprolint "
                            "and the runtime tracker can see it, or "
                            "annotate '# repro: untracked-lock(<reason>)'"
                        ),
                    )
                )
            self.locks.append(
                LockDef(
                    name=f"{self.module}.{cls or ''}.{attr}".replace("..", "."),
                    module=self.module,
                    cls=cls,
                    attr=attr,
                    line=line,
                    tracked=False,
                )
            )

    @staticmethod
    def _target_attr(targets: Sequence[ast.expr]) -> Optional[str]:
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self":
                    return target.attr
            if isinstance(target, ast.Name):
                return target.id
        return None

    @staticmethod
    def _factory_name(call: ast.Call) -> Optional[str]:
        if call.args and isinstance(call.args[0], ast.Constant):
            value = call.args[0].value
            if isinstance(value, str):
                return value
        return None

    @staticmethod
    def _is_threading_call(func: ast.expr) -> bool:
        if isinstance(func, ast.Attribute):
            return _terminal(func.value) == "threading"
        return isinstance(func, ast.Name)


class _BodyWalker(ast.NodeVisitor):
    """Second pass over one function body, carrying the with-stack."""

    def __init__(
        self,
        info: _FuncInfo,
        path: str,
        cls: Optional[str],
        lock_attrs: Dict[Tuple[Optional[str], str], str],
        guards: Dict[Tuple[str, str], str],
        pragmas: PragmaMap,
    ) -> None:
        self.info = info
        self.path = path
        self.cls = cls
        self.lock_attrs = lock_attrs
        self.guards = guards
        self.pragmas = pragmas
        self.stack: List[str] = []

    # -- structure -----------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._handle_with(node.items, node.body)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._handle_with(node.items, node.body)

    def _handle_with(
        self, items: Sequence[ast.withitem], body: Sequence[ast.stmt]
    ) -> None:
        pushed = 0
        for item in items:
            lock = self._resolve_lock(item.context_expr)
            if lock is not None:
                self.info.acquisitions.append(
                    (lock, tuple(self.stack), item.context_expr.lineno)
                )
                self.stack.append(lock)
                pushed += 1
            else:
                self.visit(item.context_expr)
        for stmt in body:
            self.visit(stmt)
        for _ in range(pushed):
            self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs execute later, not here: analyzed as separate
        # functions by the driver.
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        held = tuple(self.stack)
        line = node.lineno
        end_line = getattr(node, "end_lineno", None) or line
        for directive in self.pragmas.find_all("calls", line, end_line):
            if directive.argument:
                self.info.calls.append(
                    (("exact", directive.argument), held, line)
                )
        func = node.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.info.calls.append((("self", func.attr), held, line))
            elif func.attr == "acquire":
                lock = self._resolve_lock(func.value)
                if lock is not None:
                    self.info.acquisitions.append((lock, held, line))
            self._check_guard(func, held, line)
        elif isinstance(func, ast.Name):
            self.info.calls.append((("bare", func.id), held, line))
        self.generic_visit(node)

    def _check_guard(
        self, func: ast.Attribute, held: Tuple[str, ...], line: int
    ) -> None:
        # A call through a guarded attribute: self.<attr>.<method>(...).
        value = func.value
        if not (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.cls is not None
        ):
            return
        guard_lock = self.guards.get((self.cls, value.attr))
        if guard_lock is None:
            return
        if self.info.key[2] == "__init__":
            return
        pragma = self.pragmas.find(RULE_UNGUARDED, line)
        ok = guard_lock in held or (pragma is not None and bool(pragma.argument))
        self.info.guarded_uses.append((value.attr, held, line, ok))

    # -- lock resolution ----------------------------------------------
    def _resolve_lock(self, expr: ast.expr) -> Optional[str]:
        # A read/write gate side: `self._gate.read()` / `.write()` in a
        # with-item acquires the gate's name.
        if (
            isinstance(expr, ast.Call)
            and not expr.args
            and not expr.keywords
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in GATE_SIDES
        ):
            return self._resolve_lock(expr.func.value)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                name = self.lock_attrs.get((self.cls, expr.attr))
                if name is None:
                    name = self.lock_attrs.get((None, expr.attr))
                return name
        if isinstance(expr, ast.Name):
            return self.lock_attrs.get((None, expr.id))
        return None


def analyze_sources(sources: List[Tuple[str, str]]) -> Analysis:
    """Run the full lock pass over in-memory ``(path, source)`` pairs."""
    findings: List[Finding] = []
    locks: List[LockDef] = []
    guards: Dict[Tuple[str, str], str] = {}
    parsed: List[Tuple[str, ast.Module, PragmaMap]] = []
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=path,
                    line=exc.lineno or 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        pragmas = scan_pragmas(source)
        extractor = _Extractor(path, pragmas)
        extractor.visit(tree)
        findings.extend(extractor.findings)
        locks.extend(extractor.locks)
        guards.update(extractor.guards)
        parsed.append((path, tree, pragmas))

    # Lock-attribute resolution map: (class, attr) plus a (None, attr)
    # fallback so `with self._lock` resolves across helper classes too.
    lock_attrs: Dict[Tuple[Optional[str], str], str] = {}
    for lock in locks:
        lock_attrs[(lock.cls, lock.attr)] = lock.name
        lock_attrs.setdefault((None, lock.attr), lock.name)

    # Function table + per-function walks.
    table: Dict[FuncKey, _FuncInfo] = {}
    by_class_name: Dict[Tuple[str, str], List[FuncKey]] = {}
    by_bare_name: Dict[Tuple[str, str], List[FuncKey]] = {}
    for path, tree, pragmas in parsed:
        module = _module_label(path)
        for cls, func in _iter_functions(tree):
            key: FuncKey = (module, cls, func.name)
            info = _FuncInfo(key=key, path=path)
            walker = _BodyWalker(info, path, cls, lock_attrs, guards, pragmas)
            for stmt in func.body:
                walker.visit(stmt)
            table[key] = info
            if cls is not None:
                by_class_name.setdefault((cls, func.name), []).append(key)
            else:
                by_bare_name.setdefault((module, func.name), []).append(key)

    # Resolve calls.
    resolved: Dict[FuncKey, List[FuncKey]] = {key: [] for key in table}
    for key, info in table.items():
        module, cls, _ = key
        for (kind, target), _held, line in info.calls:
            if kind == "self" and cls is not None:
                resolved[key].extend(by_class_name.get((cls, target), []))
            elif kind == "bare":
                resolved[key].extend(by_bare_name.get((module, target), []))
            elif kind == "exact":
                matches = _resolve_exact(target, by_class_name, by_bare_name)
                if not matches:
                    findings.append(
                        Finding(
                            rule=RULE_BAD_DIRECTIVE,
                            path=info.path,
                            line=line,
                            message=(
                                f"calls({target}) names no function in the "
                                "analyzed scope -- fix or remove the "
                                "directive"
                            ),
                        )
                    )
                resolved[key].extend(matches)

    # Fixpoint: the set of locks each function may (transitively) acquire.
    acquires: Dict[FuncKey, Set[str]] = {
        key: {name for name, _, _ in info.acquisitions}
        for key, info in table.items()
    }
    changed = True
    while changed:
        changed = False
        for key in table:
            merged = set(acquires[key])
            for callee in resolved[key]:
                merged |= acquires[callee]
            if merged != acquires[key]:
                acquires[key] = merged
                changed = True

    # Edges of the static lock-order graph.
    edges: Set[Tuple[str, str]] = set()
    edge_sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for key, info in table.items():
        for name, held, line in info.acquisitions:
            for outer in held:
                _add_edge(edges, edge_sites, outer, name, info.path, line)
    for key, info in table.items():
        module, cls, _ = key
        for spec, held, line in info.calls:
            if not held:
                continue
            kind, target = spec
            if kind == "self" and cls is not None:
                callees = by_class_name.get((cls, target), [])
            elif kind == "bare":
                callees = by_bare_name.get((module, target), [])
            elif kind == "exact":
                callees = _resolve_exact(target, by_class_name, by_bare_name)
            else:
                callees = []
            for callee in callees:
                for inner in acquires[callee]:
                    for outer in held:
                        _add_edge(
                            edges, edge_sites, outer, inner, info.path, line
                        )

    # Cycle detection.
    for cycle in _find_cycles(edges):
        path_, line_ = edge_sites.get((cycle[0], cycle[1]), ("<graph>", 0))
        findings.append(
            Finding(
                rule=RULE_CYCLE,
                path=path_,
                line=line_,
                message=(
                    "lock-order cycle: " + " -> ".join(cycle + (cycle[0],))
                ),
            )
        )

    # Guard violations.
    for key, info in table.items():
        for attr, _held, line, ok in info.guarded_uses:
            if not ok:
                findings.append(
                    Finding(
                        rule=RULE_UNGUARDED,
                        path=info.path,
                        line=line,
                        message=(
                            f"call through self.{attr} outside the lock "
                            f"declared to guard it -- wrap in the guarding "
                            "'with' or annotate "
                            "'# repro: unguarded-call(<reason>)'"
                        ),
                    )
                )

    return Analysis(
        locks=locks,
        edges=edges,
        edge_sites=edge_sites,
        findings=sort_findings(findings),
    )


def _iter_functions(
    tree: ast.Module,
) -> List[Tuple[Optional[str], ast.FunctionDef]]:
    """Every function in the module (methods carry their class name),
    including nested defs (keyed like module-level helpers)."""
    result: List[Tuple[Optional[str], ast.FunctionDef]] = []

    def walk(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(child, ast.FunctionDef):
                    result.append((cls, child))
                else:
                    # Async defs share the FunctionDef body shape.
                    result.append((cls, child))  # type: ignore[arg-type]
                walk(child, None if cls is None else cls)
            else:
                walk(child, cls)

    walk(tree, None)
    return result


def _resolve_exact(
    target: str,
    by_class_name: Dict[Tuple[str, str], List[FuncKey]],
    by_bare_name: Dict[Tuple[str, str], List[FuncKey]],
) -> List[FuncKey]:
    if "." in target:
        cls, _, method = target.partition(".")
        return list(by_class_name.get((cls, method), []))
    matches: List[FuncKey] = []
    for (_module, name), keys in by_bare_name.items():
        if name == target:
            matches.extend(keys)
    return matches


def _add_edge(
    edges: Set[Tuple[str, str]],
    sites: Dict[Tuple[str, str], Tuple[str, int]],
    outer: str,
    inner: str,
    path: str,
    line: int,
) -> None:
    edge = (outer, inner)
    if edge not in edges:
        edges.add(edge)
        sites[edge] = (path, line)


def _find_cycles(edges: Set[Tuple[str, str]]) -> List[Tuple[str, ...]]:
    """Every elementary cycle reachable by DFS (deduplicated by node set)."""
    graph: Dict[str, List[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, []).append(inner)
    cycles: List[Tuple[str, ...]] = []
    seen_sets: Set[FrozenSet[str]] = set()

    def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in graph.get(node, ()):  # deterministic enough: sorted below
            if nxt in on_path:
                start = path.index(nxt)
                cycle = tuple(path[start:])
                key = frozenset(cycle)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(cycle)
                continue
            path.append(nxt)
            on_path.add(nxt)
            dfs(nxt, path, on_path)
            on_path.discard(nxt)
            path.pop()

    for start in sorted(graph):
        dfs(start, [start], {start})
    return cycles


def default_scope(src_root: Path) -> List[Path]:
    """The lock-pass roots under a ``src/repro``-style tree."""
    scoped = [src_root / sub for sub in DEFAULT_SCOPE]
    return [path for path in scoped if path.exists()] or [src_root]


def lint_paths(roots: List[Path]) -> List[Finding]:
    """Run the lock pass over every Python file under the given roots."""
    return analyze_sources(
        [(str(path), source) for path, source in read_sources(roots)]
    ).findings


def static_lock_graph(roots: List[Path]) -> Set[Tuple[str, str]]:
    """The static lock-order graph (for the runtime tracker cross-check)."""
    return analyze_sources(
        [(str(path), source) for path, source in read_sources(roots)]
    ).edges
