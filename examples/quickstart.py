"""Quickstart: the engine front door -- request, plan, result, report.

Run with::

    PYTHONPATH=src python examples/quickstart.py

The example serves a small dataset through
:class:`repro.engine.SkylineEngine` (the unified API over every backend),
walks the three-step lifecycle of a request -- build a
:class:`~repro.engine.QueryRequest`, ``explain`` it to see the plan
(which structure serves it and what the paper says it should cost), then
execute it and read the :class:`~repro.engine.ExecutionReport` (what it
*actually* charged on the block-transfer ledger) -- and repeats one query
of every Figure-2 shape on both backends.
"""

from __future__ import annotations

from repro import (
    AntiDominanceQuery,
    ContourQuery,
    DominanceQuery,
    FourSidedQuery,
    LeftOpenQuery,
    RightOpenQuery,
    TopOpenQuery,
)
from repro.em import EMConfig
from repro.engine import QueryRequest, SkylineEngine
from repro.service import ServiceConfig
from repro.workloads import uniform_points


def main() -> None:
    # 5 000 uniform points in general position on a simulated machine
    # with 64-record blocks.
    points = uniform_points(5_000, universe=100_000, seed=42)

    # The same request API serves a single-machine index ...
    local = SkylineEngine.local(
        points, em_config=EMConfig(block_size=64, memory_blocks=32)
    )
    # ... and an 8-shard service (each shard on its own machine).
    sharded = SkylineEngine.sharded(
        points, ServiceConfig(shard_count=8, block_size=64, memory_blocks=32)
    )
    print(
        f"indexed {len(local)} points; build cost: "
        f"local={local.build_io}, sharded={sharded.build_io} block transfers\n"
    )

    # ------------------------------------------------------------------
    # One request, start to finish.
    # ------------------------------------------------------------------
    request = QueryRequest(TopOpenQuery(20_000, 80_000, 60_000), limit=4)

    plan = local.explain(request)  # no I/O happens here
    print("request : top-open rectangle, limit=4")
    print(f"plan    : variant={plan.variant!r} -> structure={plan.structure!r}")
    print(f"          bound {plan.bound}, instantiated: {plan.formula}")

    result = local.query(request)
    report = result.report
    print(
        f"result  : {len(result.points)} of {result.total_results} maxima "
        f"(next_cursor={result.next_cursor})"
    )
    print(
        f"report  : charged {report.blocks} block transfers "
        f"({report.reads} reads + {report.writes} writes); "
        f"bound at k={report.result_size} predicted {report.predicted_io:.1f}"
    )
    cursor = result.next_cursor
    if cursor is not None:
        rest = local.query(QueryRequest(request.rect, limit=100, cursor=cursor))
        print(f"page 2  : {len(rest.points)} more maxima from cursor {cursor:.0f}")
    print()

    # ------------------------------------------------------------------
    # Every query variant of Figure 2, on both backends.
    # ------------------------------------------------------------------
    queries = [
        ("top-open", TopOpenQuery(20_000, 80_000, 60_000)),
        ("right-open", RightOpenQuery(50_000, 20_000, 90_000)),
        ("left-open", LeftOpenQuery(60_000, 20_000, 90_000)),
        ("dominance", DominanceQuery(70_000, 70_000)),
        ("anti-dominance", AntiDominanceQuery(30_000, 30_000)),
        ("contour", ContourQuery(55_000)),
        ("4-sided", FourSidedQuery(25_000, 75_000, 25_000, 75_000)),
    ]
    header = (
        f"{'query':<15} {'structure':<11} {'k':>4} "
        f"{'local I/O':>10} {'sharded I/O':>12} {'visited':>8} {'pruned':>7}"
    )
    print(header)
    print("-" * len(header))
    for name, rect in queries:
        request = QueryRequest(rect, consistency="fresh")
        a = local.query(request)
        b = sharded.query(request)
        assert sorted(p.as_tuple() for p in a.points) == sorted(
            p.as_tuple() for p in b.points
        )
        print(
            f"{name:<15} {a.plan.structure:<11} {a.total_results:>4} "
            f"{a.report.blocks:>10} {b.report.blocks:>12} "
            f"{b.report.shards_visited:>8} {b.report.shards_pruned:>7}"
        )

    # Per-request reports partition the ledger exactly.
    for engine in (local, sharded):
        assert engine.attributed_io() == engine.io_total() - engine.build_io
    print(
        f"\naccounting: every report's block count summed = ledger total "
        f"(local {local.attributed_io()}, sharded {sharded.attributed_io()})"
    )


if __name__ == "__main__":
    main()
