"""The sharded skyline query service facade.

:class:`SkylineService` glues the service tier together: the
:class:`~repro.service.router.ShardRouter` prunes shards per query, each
:class:`~repro.service.shard.Shard` answers locally on its own simulated
machine, :mod:`~repro.service.merge` folds local answers into the global
skyline, the :class:`~repro.service.delta.DeltaBuffer` absorbs writes until
:meth:`SkylineService.compact` rebuilds the static shards, and the
:class:`~repro.service.cache.ResultCache` short-circuits repeated queries
between writes.  The public surface mirrors
:class:`repro.RangeSkylineIndex` (``query``, ``query_many``, ``insert``,
``delete``, ``skyline``, ``io_total``), so the two are interchangeable in
benchmarks and applications.

I/O accounting
--------------
Every shard machine charges a *private* :class:`~repro.em.counters.IOStats`
ledger, and the service-wide total is an
:class:`~repro.em.counters.IOStatsGroup` summing them (plus a retired-ledger
accumulator that keeps totals monotone across compaction rebuilds, and the
durability store's ledger when durability is on).  Nothing is ever shared
between batch workers, so ``parallelism > 1`` charges bit-identical totals
to a serial run.  When a tombstone forces a shard to recompute its local
skyline from resident points, that scan is charged as
``ceil(resident / B)`` block reads on the shard's ledger -- the fallback is
never free, so sharded-vs-monolithic comparisons stay honest under deletes.

Durability
----------
With ``ServiceConfig(durability=True)`` the service runs on a
:class:`~repro.service.durability.DurableStore`: every acknowledged
insert/delete is appended to a group-committed write-ahead log, compactions
log a checkpoint record and (every ``snapshot_every_compactions``-th time)
serialise the rebuilt shards as block-level snapshots, and
:meth:`SkylineService.open` rebuilds the exact durable state after a crash
by loading the newest surviving snapshot and replaying the WAL suffix --
all of it charged to the store's block-transfer ledger.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.point import Point, resolve_victim_index
from repro.core.queries import RangeQuery
from repro.core.skyline import range_skyline
from repro.em.counters import IOMeter, IOSnapshot, IOStats, IOStatsGroup
from repro.service.batch import build_worklists, execute_worklists
from repro.service.cache import ResultCache, make_key
from repro.service.config import ServiceConfig
from repro.service.delta import DeltaBuffer
from repro.service.durability import (
    OP_COMPACT,
    OP_DELETE,
    OP_INSERT,
    DurableStore,
    SnapshotManifest,
    WriteAheadLog,
    load_snapshot,
    write_snapshot_blocks,
)
from repro.service.merge import merge_shard_skylines, merge_with_delta
from repro.service.router import ShardRouter, size_balanced_cuts
from repro.service.shard import Shard


@dataclasses.dataclass(frozen=True)
class QueryExecutionTrace:
    """How one query of a batch was served (``SkylineService.last_traces``).

    ``shard_ids`` are the shards the router selected (the rest were
    pruned); ``cache_hit`` means the result came straight from the result
    cache; ``coalesced`` marks a duplicate served from its in-batch
    leader's answer; ``tombstone_fallback`` says at least one selected
    shard rescanned its resident points because a tombstone invalidated
    its static answer.  Consumers such as
    :class:`repro.engine.ShardedServiceBackend` read these instead of
    re-deriving routing and tombstone facts from service internals.
    """

    shard_ids: Tuple[int, ...]
    cache_hit: bool = False
    coalesced: bool = False
    tombstone_fallback: bool = False


class SkylineService:
    """A sharded, batched, updatable, optionally durable skyline service.

    Parameters
    ----------
    points:
        The initial point set.
    config:
        Service tunables; defaults to :class:`ServiceConfig()`.
    store:
        An existing :class:`~repro.service.durability.DurableStore` to run
        on (implies ``durability=True``); by default a durable service
        creates a fresh store.  :meth:`open` is the recovery entry point
        that rebuilds a service *from* a store.
    overrides:
        Convenience keyword overrides applied on top of ``config``
        (``SkylineService(points, shard_count=8)``).
    """

    def __init__(
        self,
        points: Iterable[Point],
        config: Optional[ServiceConfig] = None,
        store: Optional[DurableStore] = None,
        _recovering: bool = False,
        **overrides: object,
    ) -> None:
        base = config or ServiceConfig()
        self.config = dataclasses.replace(base, **overrides) if overrides else base
        if store is not None and not self.config.durability:
            self.config = dataclasses.replace(self.config, durability=True)
        # Retired ledger: absorbs each dead shard generation's counters on
        # rebuild, so io_total() stays monotone across compactions.
        self._retired = IOStats()
        self.stats = IOStatsGroup([self._retired])
        self.delta = DeltaBuffer()
        self.cache = ResultCache(self.config.cache_capacity)
        self.compactions = 0
        # Duplicate queries coalesced within batches (computed once each).
        self.coalesced = 0
        # Build generation: seeds every shard's epoch so cache keys can
        # never collide across compactions.
        self._generation = 0
        # True while `open` replays the WAL suffix: replayed operations are
        # applied but never re-logged, re-snapshotted or auto-compacted.
        self._replaying = False
        # Set by `open` with the block-transfer cost of the last recovery.
        self.recovery: Optional[Dict[str, int]] = None
        # Per-query traces of the most recent query_many call.
        self.last_traces: List[QueryExecutionTrace] = []
        self.router: ShardRouter
        self.shards: List[Shard] = []
        self.store: Optional[DurableStore] = None
        self.wal: Optional[WriteAheadLog] = None
        self._build_shards(list(points))
        if self.config.durability:
            durable_store = store if store is not None else DurableStore(
                self.config.shard_em_config()
            )
            virgin = (
                durable_store.latest_manifest() is None
                and durable_store.wal_durable == 0
            )
            if not virgin and not _recovering:
                # A used store holds some service's durable state; silently
                # running fresh points on top would make recovery resurrect
                # the old state and lose these points entirely.  Reject
                # before touching the store, so its recorded config and
                # ledgers stay exactly as the owning service left them.
                raise ValueError(
                    "store already holds a service's durable state; recover "
                    "it with SkylineService.open(store), or start on a "
                    "fresh DurableStore"
                )
            self.store = durable_store
            self.store.service_config = self.config
            self.wal = WriteAheadLog(self.store, self.config.wal_group_commit)
            self.stats.add(self.store.stats)
            if virgin:
                # Baseline snapshot at service birth: recovery always has a
                # snapshot to stand on, so a crash before the first
                # compaction replays only the WAL suffix past LSN 0.
                self._write_snapshot(folded_lsn=0, installed_lsn=0)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        store: DurableStore,
        config: Optional[ServiceConfig] = None,
        **overrides: object,
    ) -> "SkylineService":
        """Rebuild the service a crash (or clean shutdown) left on ``store``.

        Loads the newest surviving snapshot (``O(n/B)`` block reads),
        replays the durable WAL suffix past its ``folded_lsn`` (``O(w/B)``
        reads for ``w`` unfolded records), and returns a service whose
        ``live_points()`` and query answers equal the pre-crash durable
        state.  The block-transfer cost is recorded in :attr:`recovery`
        (and surfaced by :meth:`describe`), split into the terms the
        snapshot cadence trades against each other: ``snapshot_load_io``
        (store reads for the point blocks), ``replay_io`` (store reads
        for the WAL suffix) and ``rebuild_io`` (shard-machine transfers
        rebuilding the indexes, including rebuilds replayed compaction
        records trigger), with ``recovery_io`` their sum.
        """
        base = config or store.service_config or ServiceConfig()
        cfg = dataclasses.replace(base, **overrides) if overrides else base
        if not cfg.durability:
            cfg = dataclasses.replace(cfg, durability=True)
        start = store.stats.snapshot()
        manifest = store.latest_manifest()
        if manifest is None:  # virgin store: nothing to load or replay
            points: List[Point] = []
            folded = 0
        else:
            points = load_snapshot(store, manifest)
            folded = manifest.folded_lsn
        loaded = store.stats.snapshot()
        service = cls(points, cfg, store=store, _recovering=True)
        # Measure replay from after the constructor: on a virgin store the
        # constructor writes the baseline snapshot, which is birth cost,
        # not replay.
        constructed = store.stats.snapshot()
        replayed = 0
        service._replaying = True
        try:
            for record in store.read_wal_suffix(folded):
                replayed += 1
                if record.op == OP_INSERT:
                    service.insert(record.point())
                elif record.op == OP_DELETE:
                    service.delete(record.point())
                elif record.op == OP_COMPACT:
                    service.compact()
                else:  # pragma: no cover - corrupt record
                    raise ValueError(f"unknown WAL op {record.op!r}")
        finally:
            service._replaying = False
        snapshot_load = loaded - start
        replay_io = store.stats.snapshot() - constructed
        # Every shard-side transfer so far happened inside this open():
        # the initial rebuild from the snapshot points plus any full
        # rebuilds replayed compaction records triggered.
        rebuild_io = service.query_io_total()
        service.recovery = {
            "snapshot_points": len(points),
            "snapshot_generation": 0 if manifest is None else manifest.generation,
            "folded_lsn": folded,
            "snapshot_load_reads": snapshot_load.reads,
            "snapshot_load_io": snapshot_load.total,
            "replayed_records": replayed,
            "replay_reads": replay_io.reads,
            "replay_writes": replay_io.writes,
            "replay_io": replay_io.total,
            "rebuild_io": rebuild_io,
            "recovery_io": snapshot_load.total + replay_io.total + rebuild_io,
        }
        return service

    # ------------------------------------------------------------------
    # Construction / compaction
    # ------------------------------------------------------------------
    def _build_shards(self, points: List[Point]) -> None:
        """(Re)partition ``points`` into size-balanced x-range shards."""
        self._live_xs = {p.x for p in points}
        self._live_ys = {p.y for p in points}
        if len(self._live_xs) < len(points) or len(self._live_ys) < len(points):
            raise ValueError(
                "points must be in general position (distinct x and distinct y); "
                "pre-process with repro.core.point.ensure_general_position"
            )
        # Retire the outgoing generation's ledgers before the new shards
        # start charging, so the aggregate never loses what was paid.
        for shard in self.shards:
            self._retired.absorb(shard.stats)
        cuts = size_balanced_cuts(points, self.config.shard_count)
        self.router = ShardRouter(cuts)
        buckets: List[List[Point]] = [[] for _ in range(self.router.shard_count)]
        for point in points:
            buckets[self.router.route_point(point.x)].append(point)
        em_config = self.config.shard_em_config()
        self._generation += 1
        self.shards = []
        for sid, bucket in enumerate(buckets):
            x_lo, x_hi = self.router.shard_range(sid)
            self.shards.append(
                Shard(
                    sid,
                    x_lo,
                    x_hi,
                    bucket,
                    em_config,
                    epsilon=self.config.epsilon,
                    epoch=self._generation,
                )
            )
        members = [self._retired] + [shard.stats for shard in self.shards]
        if self.store is not None:
            members.append(self.store.stats)
        self.stats.set_members(members)

    def compact(self) -> None:
        """Fold the delta into the static shards and rebalance boundaries.

        Rebuilds every shard from the live point set (static points minus
        tombstones, plus pending inserts), re-cutting shard boundaries so
        the shards come out size-balanced again; then empties the delta and
        drops the result cache.  Rebuild I/Os are charged to the new
        generation's ledgers -- that is the amortised cost the logarithmic
        method pays for keeping queries on static-structure speeds.

        On a durable service the compaction first logs a checkpoint record
        (forcing the whole WAL tail durable) and, every
        ``snapshot_every_compactions``-th time, serialises the rebuilt
        shards as a block-level snapshot anchored at that record.
        """
        checkpoint = None
        if self.wal is not None and not self._replaying:
            checkpoint = self.wal.log_compact()
        self._build_shards(self.live_points())
        self.delta.clear()
        self.cache.invalidate_all()
        self.compactions += 1
        if (
            checkpoint is not None
            and self.compactions % self.config.snapshot_every_compactions == 0
        ):
            self._write_snapshot(
                folded_lsn=checkpoint.lsn, installed_lsn=checkpoint.lsn
            )

    def _write_snapshot(self, folded_lsn: int, installed_lsn: int) -> None:
        """Serialise the (delta-free) shards to the store and chain a manifest."""
        assert self.store is not None
        blocks, total = write_snapshot_blocks(
            self.store, [shard.points for shard in self.shards]
        )
        self.store.install_manifest(
            SnapshotManifest(
                generation=self._generation,
                folded_lsn=folded_lsn,
                installed_lsn=installed_lsn,
                cuts=tuple(self.router.cuts),
                shard_blocks=blocks,
                point_count=total,
            )
        )

    def delta_exceeds_threshold(self) -> bool:
        """Whether a background scheduler should trigger :meth:`compact`."""
        return len(self.delta) >= self.config.delta_threshold

    def _maybe_compact(self) -> None:
        # During replay, compactions happen exactly where the WAL recorded
        # them, never where the threshold would re-trigger one.
        if self._replaying:
            return
        if self.config.auto_compact and self.delta_exceeds_threshold():
            self.compact()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """Maxima of the live points inside ``query``, sorted by x."""
        return self.query_many([query])[0]

    def query_many(
        self, queries: Sequence[RangeQuery], use_cache: bool = True
    ) -> List[List[Point]]:
        """Answer a batch; ``result[i]`` answers ``queries[i]``.

        Cache hits are served immediately and duplicate queries within the
        batch are coalesced (computed once, copied to every occurrence);
        the remaining misses are regrouped into per-shard worklists
        (sorted by variant and x for buffer-pool locality), executed --
        across a thread pool when the service is configured with
        ``parallelism > 1`` -- and merged per query with the pending
        delta.

        After the call, :attr:`last_traces` holds one
        :class:`QueryExecutionTrace` per query (routing, cache hit,
        coalescing, tombstone fallback), aligned with the results.
        """
        results: List[Optional[List[Point]]] = [None] * len(queries)
        traces: List[Optional[QueryExecutionTrace]] = [None] * len(queries)
        plan: Dict[int, Tuple[Tuple, List[int]]] = {}
        leaders: Dict[Tuple, int] = {}
        followers: List[Tuple[int, int]] = []
        misses: List[Tuple[int, RangeQuery]] = []
        for position, query in enumerate(queries):
            shard_ids = self.router.shards_for(query)
            key = make_key(
                query,
                [(sid, self.shards[sid].epoch) for sid in shard_ids],
                self.delta.version,
            )
            cached = self.cache.get(key) if use_cache else None
            if cached is not None:
                results[position] = cached
                traces[position] = QueryExecutionTrace(
                    shard_ids=tuple(shard_ids), cache_hit=True
                )
                continue
            if key in leaders:
                followers.append((position, leaders[key]))
                continue
            leaders[key] = position
            plan[position] = (key, shard_ids)
            misses.append((position, query))
        if misses:
            worklists = build_worklists(
                misses, {position: plan[position][1] for position, _ in misses}
            )
            local = execute_worklists(
                worklists, self._shard_query, self.config.parallelism
            )
            for position, query in misses:
                key, shard_ids = plan[position]
                merged = merge_shard_skylines(
                    [local[(position, sid)][0] for sid in shard_ids]
                )
                merged = merge_with_delta(merged, self.delta.candidates_in(query))
                if use_cache:
                    self.cache.put(key, merged)
                results[position] = merged
                # The fallback flag comes from the executor itself (each
                # _shard_query computed it once) -- never re-derived here.
                traces[position] = QueryExecutionTrace(
                    shard_ids=tuple(shard_ids),
                    tombstone_fallback=any(
                        local[(position, sid)][1] for sid in shard_ids
                    ),
                )
        self.coalesced += len(followers)
        for position, leader_position in followers:
            results[position] = list(results[leader_position])  # type: ignore[arg-type]
            leader_trace = traces[leader_position]
            assert leader_trace is not None
            traces[position] = dataclasses.replace(leader_trace, coalesced=True)
        self.last_traces = traces  # type: ignore[assignment]
        return results  # type: ignore[return-value]

    def _shard_query(self, sid: int, query: RangeQuery) -> Tuple[List[Point], bool]:
        """One shard's local skyline inside ``query``, tombstone-aware.

        A tombstone inside the rectangle invalidates the shard's static
        answer (the deleted point may have dominated points that must now
        resurface), so the local skyline is recomputed from the shard's
        resident points -- a scan charged as ``ceil(resident / B)`` block
        reads on the shard's own ledger (the fallback is not free, and
        charging the shard keeps parallel totals exact); otherwise the
        static structure answers at full I/O efficiency.  Returns the
        answer plus whether the fallback fired (surfaced in the batch's
        :class:`QueryExecutionTrace`).
        """
        shard = self.shards[sid]
        if self.delta.tombstone_hits(query, shard.x_lo, shard.x_hi, sid):
            scanned = len(shard.points)
            shard.stats.record_read(
                max(1, math.ceil(scanned / self.config.block_size))
            )
            live = [p for p in shard.points if not self.delta.is_deleted(p)]
            return range_skyline(live, query), True
        return shard.query(query), False

    def skyline(self) -> List[Point]:
        """The skyline of the whole live point set."""
        return self.query(RangeQuery())

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Buffer an insert in the delta (visible to queries immediately).

        The general-position assumption every structure of the paper makes
        is enforced here, at the write boundary: a coordinate colliding
        with a live point raises immediately instead of corrupting a later
        compaction rebuild.  On a durable service the accepted insert is
        appended to the WAL before it is applied.
        """
        if point.x in self._live_xs or point.y in self._live_ys:
            raise ValueError(
                f"coordinate collision with a live point: {point}; the service "
                "requires general position (distinct x and distinct y)"
            )
        if self.wal is not None and not self._replaying:
            self.wal.log_insert(point)
        self._live_xs.add(point.x)
        self._live_ys.add(point.y)
        self.delta.insert(point)
        self._maybe_compact()

    def delete(self, point: Point) -> bool:
        """Delete one live point matching ``point``; returns success.

        Among coordinate twins, a point with the same ``ident`` is
        preferred.  A pending insert is simply dropped from the delta; a
        static point gets a tombstone (bucketed under its owning shard)
        until the next compaction.  On a durable service the *exact* victim
        -- coordinates plus ``ident`` -- is logged, so replay removes
        precisely the point the live service removed.
        """
        removed = self.delta.remove_insert(point)
        if removed is not None:
            if self.wal is not None and not self._replaying:
                self.wal.log_delete(removed)
            self._live_xs.discard(removed.x)
            self._live_ys.discard(removed.y)
            return True
        sid = self.router.route_point(point.x)
        shard = self.shards[sid]
        candidates = [
            p
            for p in shard.points
            if p.x == point.x and p.y == point.y and not self.delta.is_deleted(p)
        ]
        victim_index = resolve_victim_index(candidates, point)
        if victim_index is None:
            return False
        victim = candidates[victim_index]
        if self.wal is not None and not self._replaying:
            self.wal.log_delete(victim)
        self.delta.add_tombstone(victim, sid)
        self._live_xs.discard(victim.x)
        self._live_ys.discard(victim.y)
        self._maybe_compact()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_points(self) -> List[Point]:
        """The current point set: static minus tombstones, plus the delta."""
        live = [
            p
            for shard in self.shards
            for p in shard.points
            if not self.delta.is_deleted(p)
        ]
        live.extend(self.delta.inserts.values())
        return live

    def __len__(self) -> int:
        pending = len(self.delta.inserts) - len(self.delta.tombstones)
        return sum(len(shard) for shard in self.shards) + pending

    def io_total(self) -> int:
        """Block transfers charged across every shard machine so far (plus
        the durability store, when durability is on)."""
        return self.stats.total

    def snapshot(self) -> IOSnapshot:
        return self.stats.snapshot()

    def meter(self) -> IOMeter:
        """``with service.meter() as m: ...`` measures I/Os of the block."""
        return IOMeter(self.stats)

    def engine(self) -> "object":
        """Migration shim: this service wrapped as a :class:`repro.engine
        .SkylineEngine` (the recommended request/response front door)."""
        from repro.engine import ShardedServiceBackend, SkylineEngine

        return SkylineEngine(ShardedServiceBackend(self))

    def close(self) -> int:
        """Clean shutdown: force the WAL tail durable; returns records flushed.

        Without it, up to ``wal_group_commit - 1`` acknowledged updates
        sitting in the in-memory tail are lost on a crash -- that is the
        group-commit trade-off, not a bug.  A no-op (returning 0) on a
        non-durable service.
        """
        return 0 if self.wal is None else self.wal.flush()

    def reclaim(self) -> Dict[str, int]:
        """Free superseded snapshots and the folded WAL prefix on the store.

        A long-running durable service otherwise grows its store without
        bound (every snapshot and WAL block is retained forever).  Note
        that reclaimed history can no longer be crash-simulated -- see
        :meth:`repro.service.DurableStore.reclaim`.  A no-op on a
        non-durable service.
        """
        if self.store is None:
            return {"snapshot_blocks_freed": 0, "wal_blocks_freed": 0}
        return self.store.reclaim()

    def durability_io(self) -> int:
        """Block transfers charged to the durability store (0 when off)."""
        return 0 if self.store is None else self.store.stats.total

    def query_io_total(self) -> int:
        """Block transfers excluding durability (query/build path only)."""
        return self.io_total() - self.durability_io()

    def drop_caches(self) -> None:
        """Empty every shard's buffer pool (cold-cache measurements)."""
        for shard in self.shards:
            if shard.storage is not None:
                shard.storage.drop_cache()

    def blocks_in_use(self) -> int:
        """Allocated blocks across all shard machines (space usage)."""
        return sum(
            shard.storage.blocks_in_use()
            for shard in self.shards
            if shard.storage is not None
        )

    def describe(self) -> Dict[str, object]:
        """A status snapshot a service dashboard would render.

        ``result_cache`` and ``delta`` carry the full counter sets
        (cache hits/misses, pending insert/tombstone sizes) so callers
        such as :class:`repro.engine.ShardedServiceBackend` can populate
        per-request execution reports without reaching into private state.
        """
        status: Dict[str, object] = {
            "shard_count": len(self.shards),
            "shard_sizes": [len(shard) for shard in self.shards],
            "shard_epochs": [shard.epoch for shard in self.shards],
            "cuts": list(self.router.cuts),
            "live_points": len(self),
            "delta_inserts": len(self.delta.inserts),
            "delta_tombstones": len(self.delta.tombstones),
            "delta": self.delta.describe(),
            "compactions": self.compactions,
            "cache_entries": len(self.cache),
            "cache_hit_rate": round(self.cache.hit_rate(), 3),
            "result_cache": self.cache.describe(),
            "coalesced": self.coalesced,
            "io_total": self.io_total(),
            "blocks_in_use": self.blocks_in_use(),
            "durability": self.config.durability,
        }
        if self.store is not None and self.wal is not None:
            durability = dict(self.store.describe())
            durability["wal_pending"] = self.wal.pending
            durability["group_commit"] = self.wal.group_commit_size
            if self.recovery is not None:
                durability["recovery"] = dict(self.recovery)
            status["durability_detail"] = durability
        return status
