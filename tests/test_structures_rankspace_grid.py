"""Tests for the rank-space (Theorem 2) and grid (Corollary 1) structures."""

import random

import pytest

from repro.core.point import Point
from repro.core.queries import FourSidedQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.em.config import EMConfig
from repro.em.storage import StorageManager
from repro.structures import GridTopOpenStructure, RankSpaceTopOpenStructure
from repro.structures.chunktree import (
    annotated_skyline,
    build_chunk_tree,
    left_siblings,
    lowest_common_ancestor,
    path_to_child_of,
    right_siblings,
)
from repro.workloads import grid_permutation_points


def make_storage(block_size=16):
    return StorageManager(EMConfig(block_size=block_size, memory_blocks=32))


# ----------------------------------------------------------------------
# Chunk tree skeleton
# ----------------------------------------------------------------------
def test_chunk_tree_shape_and_leaves():
    root, leaves = build_chunk_tree(5)
    assert len(leaves) == 8  # padded to a power of two
    assert root.chunk_lo == 0 and root.chunk_hi == 8
    assert all(leaf.is_leaf for leaf in leaves)
    with pytest.raises(ValueError):
        build_chunk_tree(0)


def test_chunk_tree_paths_and_siblings():
    root, leaves = build_chunk_tree(8)
    leaf = leaves[5]
    path = path_to_child_of(leaf, root)
    assert path[0] is leaf and path[-1].parent is root
    lefts = left_siblings(path[:-1])
    rights = right_siblings(path[:-1])
    covered = set()
    for node in lefts + rights + [leaf]:
        covered.update(range(node.chunk_lo, node.chunk_hi))
    # Left+right siblings of the truncated path plus the leaf tile the half
    # of the root containing the leaf.
    assert covered == set(range(4, 8))
    lca = lowest_common_ancestor(leaves[1], leaves[6])
    assert lca is root
    assert lowest_common_ancestor(leaves[4], leaves[5]).chunk_lo == 4


def test_annotated_skyline_keeps_sources():
    groups = [
        (1, [Point(1, 5), Point(2, 1)]),
        (2, [Point(3, 4)]),
    ]
    result = annotated_skyline(groups)
    assert [(p.x, p.y, src) for p, src in result] == [(1, 5, 1), (3, 4, 2)]


# ----------------------------------------------------------------------
# Rank-space structure (Theorem 2)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,block_size", [(64, 8), (200, 16), (500, 16)])
def test_rankspace_matches_brute_force(n, block_size):
    points = grid_permutation_points(n, seed=n)
    structure = RankSpaceTopOpenStructure(
        make_storage(block_size), points, universe=n
    )
    rng = random.Random(n)
    for _ in range(150):
        lo, hi = sorted(rng.sample(range(n), 2))
        beta = rng.randrange(n)
        query = TopOpenQuery(lo, hi, beta)
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        got = sorted((p.x, p.y) for p in structure.query(query))
        assert expected == got


def test_rankspace_single_chunk_and_rejection():
    points = grid_permutation_points(30, seed=1)
    structure = RankSpaceTopOpenStructure(make_storage(), points, universe=30)
    query = TopOpenQuery(2, 10, 0)
    expected = sorted((p.x, p.y) for p in range_skyline(points, query))
    assert sorted((p.x, p.y) for p in structure.query(query)) == expected
    with pytest.raises(ValueError):
        structure.query(FourSidedQuery(0, 1, 0, 1))
    assert structure.query_top_open(20, 10, 0) == []
    assert structure.block_count() > 0
    assert len(structure) == 30


def test_rankspace_query_io_independent_of_n():
    """The O(1 + k/B) claim: I/Os stay flat while n grows 8x."""
    costs = {}
    for n in [256, 2048]:
        points = grid_permutation_points(n, seed=n)
        storage = make_storage(block_size=32)
        structure = RankSpaceTopOpenStructure(storage, points, universe=n)
        total = 0
        queries = 10
        for i in range(queries):
            lo = (i * 13) % (n // 2)
            query = TopOpenQuery(lo, lo + n // 4, n // 2)
            storage.drop_cache()
            before = storage.snapshot()
            structure.query(query)
            total += (storage.snapshot() - before).total
        costs[n] = total / queries
    assert costs[2048] <= 6 * max(1.0, costs[256])


# ----------------------------------------------------------------------
# Grid structure (Corollary 1)
# ----------------------------------------------------------------------
def test_grid_structure_matches_brute_force():
    universe = 100_000
    rng = random.Random(11)
    xs = rng.sample(range(universe), 300)
    ys = rng.sample(range(universe), 300)
    points = [Point(x, y, i) for i, (x, y) in enumerate(zip(xs, ys))]
    structure = GridTopOpenStructure(make_storage(), points, universe=universe)
    for _ in range(100):
        lo, hi = sorted(rng.sample(range(universe), 2))
        beta = rng.randrange(universe)
        query = TopOpenQuery(lo, hi, beta)
        expected = sorted((p.x, p.y) for p in range_skyline(points, query))
        got = sorted((p.x, p.y) for p in structure.query(query))
        assert expected == got
    assert structure.predecessor_cost() >= 1
    assert structure.block_count() > 0


def test_grid_structure_validation():
    with pytest.raises(ValueError):
        GridTopOpenStructure(make_storage(), [], universe=1)
    structure = GridTopOpenStructure(make_storage(), [Point(1, 2)], universe=10)
    with pytest.raises(ValueError):
        structure.query(FourSidedQuery(0, 1, 0, 1))
    assert structure.query(TopOpenQuery(0, 5, 0)) == [Point(1, 2)]
    empty = GridTopOpenStructure(make_storage(), [], universe=10)
    assert empty.query(TopOpenQuery(0, 5, 0)) == []
