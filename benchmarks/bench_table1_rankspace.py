"""Table 1, row 3 / Theorem 2: top-open queries in rank space.

Claim: O(n/B) space and O(1 + k/B) query I/Os.  The sweep grows n while the
query output size is held roughly constant; the measured I/Os should stay
flat (no dependence on n), unlike the log_B n term of the R^2 structure.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchmarkTable, measure_queries
from repro.bench.harness import make_storage
from repro.core.queries import TopOpenQuery
from repro.structures.grid_topopen import rank_space_query_bound
from repro.structures.rankspace_topopen import RankSpaceTopOpenStructure
from repro.workloads import grid_permutation_points

BLOCK_SIZE = 64
SWEEP_N = [512, 1024, 2048, 4096]
QUERIES_PER_N = 12


def make_queries(n: int, count: int) -> list:
    """Top-open queries with x-extent ~n/4 and beta in the upper half."""
    queries = []
    for i in range(count):
        start = (i * 97) % max(1, n - n // 4)
        queries.append(TopOpenQuery(start, start + n // 4, n // 2))
    return queries


def run_sweep() -> BenchmarkTable:
    table = BenchmarkTable("Table 1 row 3 -- top-open in rank space [O(n)]^2")
    for n in SWEEP_N:
        storage = make_storage(block_size=BLOCK_SIZE)
        points = grid_permutation_points(n, seed=n)
        structure = RankSpaceTopOpenStructure(storage, points, universe=n)
        queries = make_queries(n, QUERIES_PER_N)
        io_per_query, avg_k = measure_queries(storage, structure, queries)
        table.add(
            measured_io=io_per_query,
            predicted=rank_space_query_bound(int(avg_k), BLOCK_SIZE),
            n=n,
            B=BLOCK_SIZE,
            avg_k=round(avg_k, 1),
        )
    return table


@pytest.fixture(scope="module")
def sweep_table() -> BenchmarkTable:
    return run_sweep()


def test_rankspace_query_is_constant(benchmark, sweep_table, capsys):
    """Query I/Os do not grow with n once the output term is accounted for."""
    with capsys.disabled():
        sweep_table.show()
    ratios = sweep_table.ratios()
    assert max(ratios) / max(1e-9, min(ratios)) < 10.0

    storage = make_storage(block_size=BLOCK_SIZE)
    points = grid_permutation_points(1024, seed=11)
    structure = RankSpaceTopOpenStructure(storage, points, universe=1024)
    query = make_queries(1024, 1)[0]
    benchmark(lambda: structure.query(query))
