"""A single x-range shard: one static index over its own simulated machine.

Each shard owns the points whose x-coordinates fall in its half-open range
``[x_lo, x_hi)`` and answers queries with a private
:class:`repro.RangeSkylineIndex` built over a private
:class:`repro.em.StorageManager`.  Every shard machine also owns a *private*
:class:`repro.em.counters.IOStats` ledger: concurrent batch workers then
never touch the same counter, so ``parallelism > 1`` cannot drop
increments.  The service-wide I/O total is the sum over the per-shard
ledgers (see :class:`repro.em.counters.IOStatsGroup`) -- the same quantity
the monolithic index reports, which keeps the benchmark comparison honest.

Identity vs position
--------------------
A shard's *position* (its index in the service's shard list, which routing
returns) shifts whenever an online split or merge inserts or removes a cut
to its left.  Its :attr:`Shard.uid` never does: the service assigns every
shard instance a fresh unique id at creation, and everything that must
survive a topology change keys on it -- result-cache entries embed
``(uid, write_version)`` scopes, so a split two shards over leaves them
reachable, and tombstones are bucketed under :attr:`Shard.owner`, so a
re-numbered shard keeps finding exactly its own tombstones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.api import RangeSkylineIndex
from repro.core.point import Point
from repro.core.queries import RangeQuery
from repro.em.config import EMConfig
from repro.em.counters import IOStats
from repro.em.storage import StorageManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.lsm import LevelManager

#: Owner key of a base shard in the tombstone table -- same shape as a
#: level component's ``("c", comp_id)`` key, distinguishable from it.
ShardOwnerKey = Tuple[str, int]


class Shard:
    """One partition of the service's point set, indexed independently."""

    def __init__(
        self,
        sid: int,
        x_lo: float,
        x_hi: float,
        points: Sequence[Point],
        em_config: EMConfig,
        epsilon: float = 0.5,
        epoch: int = 0,
        uid: int = 0,
    ) -> None:
        self.sid = sid
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.em_config = em_config
        # Always a private ledger -- deliberately not injectable: a shared
        # IOStats across shards is exactly what made parallel batch
        # execution drop increments before the service summed per-shard
        # ledgers through IOStatsGroup.
        self.stats = IOStats()
        self.epsilon = epsilon
        # Epoch increments on every rebuild (the service seeds it with the
        # compaction generation) -- a human-readable "which generation is
        # this" counter for dashboards.
        self.epoch = epoch
        # Stable identity across topology changes; cache keys and
        # tombstone buckets use it, never the positional sid.
        self.uid = uid
        # Bumped by the service on every update routed into this shard's
        # x-range; cache keys embed it so invalidation stays shard-scoped.
        self.write_version = 0
        # The shard's private level tower (leveled update path only; the
        # service assigns it at shard creation).  Topology changes move
        # whole towers and component sets, never point slices.
        self.tower: Optional["LevelManager"] = None
        self.points: List[Point] = []
        self.storage: Optional[StorageManager] = None
        self.index: Optional[RangeSkylineIndex] = None
        self.rebuild(points)

    @property
    def owner(self) -> ShardOwnerKey:
        """This shard's owner key in the tombstone table."""
        return ("s", self.uid)

    # ------------------------------------------------------------------
    # Queries and maintenance
    # ------------------------------------------------------------------
    def query(self, query: RangeQuery) -> List[Point]:
        """The local skyline: maxima of this shard's points inside ``query``."""
        if self.index is None or not self.points:
            return []
        return self.index.query(query)

    def rebuild(self, points: Sequence[Point]) -> None:
        """Re-index ``points`` on a fresh machine and advance the epoch.

        The old disk and buffer pool are dropped wholesale (the service
        charges the build I/Os of the new generation through the shared
        counters, which is exactly the logarithmic-method accounting).
        """
        self.points = sorted(points, key=lambda p: (p.x, p.y))
        self.storage = StorageManager(self.em_config, stats=self.stats)
        self.index = RangeSkylineIndex(
            self.storage, self.points, dynamic=False, epsilon=self.epsilon
        )
        self.epoch += 1

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Shard({self.sid}, [{self.x_lo}, {self.x_hi}), "
            f"{len(self.points)} pts, uid {self.uid}, epoch {self.epoch})"
        )
