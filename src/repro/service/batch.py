"""Batch execution: per-shard worklists, locality ordering, thread fan-out.

``query_many`` work is regrouped from *per-query* to *per-shard*: every
(query, shard) pair the router produces is appended to the owning shard's
worklist, each worklist is sorted by (variant, x_lo, y_lo) so consecutive
sub-queries walk nearby root-to-leaf paths of the same structure and reuse
warm buffer-pool frames, and then the worklists execute -- sequentially by
default, or one worker thread per shard when the service is configured with
``parallelism > 1``.  Parallelising across shards (never within one) means
no two threads ever touch the same simulated machine: each shard owns its
buffer pool *and* its private :class:`~repro.em.counters.IOStats` ledger,
so nothing is shared between workers and no locking is needed.  I/O
accounting is exact at every parallelism level -- ``query_many`` charges
bit-identical totals whether the worklists run serially or fanned out
(asserted by ``tests/test_service.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.analysis import sanitize as _sanitize
from repro.core.point import Point
from repro.core.queries import RangeQuery, classify

# One unit of shard-local work: the index of the query in the caller's batch
# plus the query itself.
WorkItem = Tuple[int, RangeQuery]
# One shard-local answer: the local skyline plus whether a tombstone forced
# the shard to rescan its resident points (computed once, here, and surfaced
# through the service's per-query traces).
ShardAnswer = Tuple[List[Point], bool]
ShardQueryFn = Callable[[int, RangeQuery], ShardAnswer]
# The pluggable batch-executor protocol (``SkylineService.batch_executor``):
# anything with execute_worklists' signature can run the per-shard fan-out,
# e.g. the serving tier's persistent uid-keyed worker pool.
BatchExecutor = Callable[
    [Dict[int, List[WorkItem]], ShardQueryFn, int],
    Dict[Tuple[int, int], ShardAnswer],
]


def build_worklists(
    indexed_queries: Sequence[WorkItem],
    shard_ids_by_position: Mapping[int, Sequence[int]],
) -> Dict[int, List[WorkItem]]:
    """Group a query batch into per-shard worklists in locality order.

    ``shard_ids_by_position`` carries the router's (already computed)
    overlapping-shard list for every query position, so routing happens
    exactly once per query.
    """
    worklists: Dict[int, List[WorkItem]] = {}
    for position, query in indexed_queries:
        for sid in shard_ids_by_position[position]:
            worklists.setdefault(sid, []).append((position, query))
    for items in worklists.values():
        items.sort(key=lambda item: (classify(item[1]), item[1].x_lo, item[1].y_lo))
    return worklists


def execute_worklists(
    worklists: Dict[int, List[WorkItem]],
    shard_query: ShardQueryFn,
    parallelism: int = 1,
) -> Dict[Tuple[int, int], ShardAnswer]:
    """Run every worklist; returns ``(query position, sid) -> local answer``.

    With ``parallelism > 1`` shards are fanned out across a thread pool,
    one worker per shard at most.
    """
    results: Dict[Tuple[int, int], ShardAnswer] = {}

    def run_shard(sid: int) -> List[Tuple[Tuple[int, int], ShardAnswer]]:
        return [
            ((position, sid), shard_query(sid, query))
            for position, query in worklists[sid]
        ]

    shard_ids = sorted(worklists)
    workers = min(parallelism, len(shard_ids))
    if workers <= 1:
        for sid in shard_ids:
            results.update(run_shard(sid))
        return results
    # Dispatch and join are declared handoff points: each shard's private
    # ledger moves to exactly one pool worker for the duration of the
    # fan-out and back to the caller afterwards.
    _sanitize.sync_point()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for shard_results in pool.map(run_shard, shard_ids):
            results.update(shard_results)
    _sanitize.sync_point()
    return results
