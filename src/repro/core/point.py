"""Planar points and the dominance relation of the paper (Section 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A planar point ``(x, y)`` with an optional identifier payload.

    Ordering is lexicographic on ``(x, y)`` so that sorting a list of points
    sorts them by x-coordinate with y as a tie-breaker, the order every
    construction algorithm in the paper assumes.
    """

    x: float
    y: float
    ident: Optional[int] = None

    def dominates(self, other: "Point") -> bool:
        """Whether this point dominates ``other`` (``x >= x'`` and ``y >= y'``).

        Following the paper, a point does not dominate itself (the relation
        is only applied to distinct points), but for convenience we return
        ``False`` on equal coordinates.
        """
        if self.x == other.x and self.y == other.y:
            return False
        return self.x >= other.x and self.y >= other.y

    def strictly_dominates(self, other: "Point") -> bool:
        """Dominance with both coordinates strictly larger."""
        return self.x > other.x and self.y > other.y

    def mirrored_y(self) -> "Point":
        """The point ``(x, -y)`` used by the dynamic structure (Section 4)."""
        return Point(self.x, -self.y, self.ident)

    def as_tuple(self) -> Tuple[float, float]:
        """The bare coordinate pair."""
        return (self.x, self.y)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.x}, {self.y})"


def dominates(p: Point, q: Point) -> bool:
    """Functional form of :meth:`Point.dominates`."""
    return p.dominates(q)


def strictly_dominates(p: Point, q: Point) -> bool:
    """Functional form of :meth:`Point.strictly_dominates`."""
    return p.strictly_dominates(q)


def in_general_position(points: Sequence[Point]) -> bool:
    """Whether no two points share an x- or a y-coordinate."""
    xs = {p.x for p in points}
    ys = {p.y for p in points}
    return len(xs) == len(points) and len(ys) == len(points)


def ensure_general_position(points: Iterable[Point]) -> List[Point]:
    """Perturb duplicated coordinates by symbolic tie-breaking.

    The paper assumes general position and notes that ties can be broken by
    standard techniques.  We break ties deterministically by nudging later
    duplicates by an infinitesimal rank-dependent epsilon, which preserves
    the dominance relation among originally distinct coordinates.
    """
    result: List[Point] = []
    seen_x: dict = {}
    seen_y: dict = {}
    for point in points:
        x, y = point.x, point.y
        if x in seen_x:
            seen_x[x] += 1
            x = x + seen_x[x] * 1e-9
        else:
            seen_x[x] = 0
        if y in seen_y:
            seen_y[y] += 1
            y = y + seen_y[y] * 1e-9
        else:
            seen_y[y] = 0
        result.append(Point(x, y, point.ident))
    return result


def resolve_victim_index(points: Sequence[Point], target: Point) -> Optional[int]:
    """The index of the stored point ``delete(target)`` should remove.

    One-victim semantics shared by every structure in the stack: among
    the points matching ``target``'s coordinates, one whose ``ident``
    equals ``target.ident`` is preferred, otherwise the first coordinate
    match; ``None`` when nothing matches.  Centralised so the facade, the
    dynamic top-open structure and the 4-sided structure can never drift
    apart on which coordinate twin dies.
    """
    fallback: Optional[int] = None
    for index, p in enumerate(points):
        if p.x == target.x and p.y == target.y:
            if p.ident == target.ident:
                return index
            if fallback is None:
                fallback = index
    return fallback


def leftmost_dominator(point: Point, points: Sequence[Point]) -> Optional[Point]:
    """``leftdom(p)``: the leftmost point of ``points`` dominating ``point``.

    Quadratic reference implementation used to validate the sweep in
    :mod:`repro.segments.reduction`.
    """
    best: Optional[Point] = None
    for candidate in points:
        if candidate.dominates(point):
            if best is None or candidate.x < best.x:
                best = candidate
    return best
