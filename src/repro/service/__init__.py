"""repro.service -- a sharded, batched, updatable skyline query service.

This package layers a service tier over the paper's structures: the point
set is partitioned into x-range shards, each backed by its own
:class:`repro.RangeSkylineIndex` on its own simulated machine
(:class:`~repro.service.shard.Shard`); a router prunes the shards whose
x-range misses a query (:class:`~repro.service.router.ShardRouter`);
batches regroup into per-shard worklists with optional thread fan-out
(:mod:`~repro.service.batch`); results are cached in a per-shard-scoped
LRU (:class:`~repro.service.cache.ResultCache`); and writes take the
leveled log-structured path (:mod:`~repro.service.lsm`): the memtable
(:class:`~repro.service.delta.DeltaBuffer`) seals into immutable level
components of geometrically increasing capacity that a
:class:`~repro.service.lsm.CompactionScheduler` merges downward in
bounded incremental steps, with :meth:`SkylineService.drain` as the
explicit full-drain and :meth:`SkylineService.compact` as the
operator-driven major compaction folding everything back into rebuilt,
size-rebalanced static shards.

Why the shard merge is correct
------------------------------
Let the query rectangle be ``Q`` and let shards ``S_0 < S_1 < ... < S_m``
partition the x-axis into disjoint half-open ranges.  Each shard returns
the skyline of its own points inside ``Q``.  Claim: point ``p`` from shard
``S_i``'s local answer belongs to the global skyline of ``P ∩ Q`` iff
``p.y`` strictly exceeds ``maxy_i := max { q.y : q ∈ Q ∩ (S_{i+1} ∪ ... ∪
S_m) }`` -- which is exactly what the right-to-left running-maximum pass in
:func:`~repro.service.merge.merge_shard_skylines` tests.

*Only right shards matter.*  A dominator of ``p`` inside ``Q`` has
``x >= p.x``, so it lives in ``S_i`` itself or in a shard to the right.
Same-shard dominators were already eliminated by the local skyline.

*The running maximum is computable from local answers.*  The highest point
of ``Q ∩ S_j`` is dominated by nothing in its shard, so it appears in
``S_j``'s local answer; hence the maximum y over the local answers of
shards ``> i`` equals ``maxy_i`` even though dominated points were dropped.

*Strictness matches top-open (and every other) semantics.*  A right-shard
point ``q`` has ``q.x > p.x`` strictly (shards are disjoint in x), so ``q``
dominates ``p`` exactly when ``q.y >= p.y``; ``p`` survives iff
``p.y > maxy_i``.  No shape information beyond the local answers is
needed, so the same merge serves top-open, right-open, 4-sided and all
other variants of Figure 2.

*Delta and tombstones.*  Pending inserts are folded in afterwards by
taking the skyline of (merged static answer ∪ delta points inside ``Q``):
any static point absent from the merged answer is dominated by a present
one, so the union's skyline equals the true skyline.  Deletions are not
decomposable this way (removing a maximal point can expose points it
dominated), so a shard whose range contains a tombstone inside ``Q``
recomputes its local answer from its resident live points -- a scan the
service charges as ``ceil(resident / B)`` block reads on the shard's
ledger; all other shards keep their static-structure I/O efficiency.
Compaction restores the tombstone-free fast path.

*Levels.*  On the leveled update path the same two arguments generalise
from 2 sources (delta + base) to ``k + 1``: each level component answers
locally (static structure, or the charged rescan when a tombstone it owns
lies inside ``Q``), and one right-to-left running-max-y pass over the
union of all local answers -- base merge, levels, frozen memtables,
memtable candidates -- yields the global skyline
(:func:`~repro.service.merge.merge_component_skylines` carries the
proof for overlapping x-ranges).

Durability
----------
:mod:`repro.service.durability` adds crash safety on top: a durable
service appends every insert/delete to a group-committed write-ahead log
on a :class:`~repro.service.durability.DurableStore`, logs a checkpoint
record at each compaction, periodically serialises the rebuilt shards as
block-level snapshots, and :meth:`SkylineService.open` recovers the exact
durable state by loading the newest surviving snapshot and replaying the
WAL suffix -- every step charged in the same block-transfer currency as
the query path.
"""

from repro.service.batch import build_worklists, execute_worklists
from repro.service.cache import ResultCache, make_key
from repro.service.config import ServiceConfig
from repro.service.delta import DeltaBuffer, point_key
from repro.service.durability import (
    CrashSimulator,
    DurableStore,
    WriteAheadLog,
    crashed_copy,
)
from repro.service.lsm import Component, CompactionScheduler, LevelManager
from repro.service.merge import (
    merge_component_skylines,
    merge_shard_skylines,
    merge_with_delta,
)
from repro.service.router import (
    ShardRouter,
    size_balanced_cuts,
    size_balanced_midpoint,
)
from repro.service.service import QueryExecutionTrace, SkylineService
from repro.service.shard import Shard
from repro.service.topology import TopologyManager

__all__ = [
    "SkylineService",
    "QueryExecutionTrace",
    "ServiceConfig",
    "Shard",
    "ShardRouter",
    "TopologyManager",
    "DeltaBuffer",
    "Component",
    "LevelManager",
    "CompactionScheduler",
    "ResultCache",
    "DurableStore",
    "WriteAheadLog",
    "CrashSimulator",
    "crashed_copy",
    "size_balanced_cuts",
    "size_balanced_midpoint",
    "merge_shard_skylines",
    "merge_component_skylines",
    "merge_with_delta",
    "build_worklists",
    "execute_worklists",
    "make_key",
    "point_key",
]
