"""Crash and recover a durable skyline service, end to end.

Run with::

    PYTHONPATH=src python examples/service_recovery.py

The scenario mirrors an operator's worst day: a durable
:class:`repro.service.SkylineService` absorbs mixed catalogue traffic
(inserts, deletes, query batches, threshold-triggered compactions), its
write-ahead log group-committing every update and its compactions leaving
block-level shard snapshots behind -- and then the process dies at an
arbitrary point of the durable WAL.  :func:`repro.service.crashed_copy`
materialises the kill (only the durable prefix survives; the in-memory
group-commit tail and any snapshot whose checkpoint record died are gone),
and :meth:`repro.service.SkylineService.open` brings the service back:
load the newest surviving snapshot, replay the WAL suffix, serve traffic
again.  Every step prints its cost in block transfers -- the same ledger
the paper's bounds are stated in -- and the recovered state is verified
against an independently maintained reference.
"""

from __future__ import annotations

import random
import sys

from repro import Point, RangeQuery, TopOpenQuery
from repro.core.skyline import range_skyline
from repro.service import ServiceConfig, SkylineService, crashed_copy
from repro.workloads import clustered_points

N = 2_000
TICKS = 6
WRITES_PER_TICK = 30
QUERIES_PER_TICK = 12
UNIVERSE = 1_000_000


def canon(points):
    return sorted((p.x, p.y, p.ident) for p in points)


def main() -> int:
    rng = random.Random(42)
    base = clustered_points(N, seed=7)
    service = SkylineService(
        base,
        ServiceConfig(
            shard_count=4,
            block_size=32,
            memory_blocks=16,
            delta_threshold=64,
            durability=True,
            wal_group_commit=8,
            snapshot_every_compactions=2,
        ),
    )
    store = service.store
    print(f"durable service up: {len(service)} points, "
          f"baseline snapshot = {store.snapshot_block_count()} blocks")

    # `live` mirrors what the service acknowledged; `durable_live[k]` is
    # the reference state once the first k WAL records are applied (the
    # first record of each write call carries the change, checkpoint
    # records change nothing).
    live = list(base)
    durable_live = {0: canon(live)}

    def note():
        durable_live[service.wal.durable_count + service.wal.pending] = canon(live)

    for tick in range(TICKS):
        for i in range(WRITES_PER_TICK):
            serial = tick * WRITES_PER_TICK + i
            if rng.random() < 0.7:
                point = Point(
                    rng.uniform(0, UNIVERSE) + serial * 1e-4,
                    rng.uniform(0, UNIVERSE) + serial * 1e-4,
                    ident=500_000 + serial,
                )
                service.insert(point)
                live.append(point)
            else:
                victim = live.pop(rng.randrange(len(live)))
                assert service.delete(victim)
            note()
        queries = [
            TopOpenQuery(a, min(a + 0.05 * UNIVERSE, UNIVERSE), rng.uniform(0, UNIVERSE))
            for a in (rng.uniform(0, 0.95 * UNIVERSE) for _ in range(QUERIES_PER_TICK))
        ]
        service.query_many(queries)
        status = service.describe()
        durability = status["durability_detail"]
        print(
            f"tick {tick:2d}: live={status['live_points']} "
            f"compactions={status['compactions']} "
            f"wal={durability['wal_durable_records']}+{durability['wal_pending']} pending "
            f"snapshots={durability['snapshots']} "
            f"durability_io={durability['reads'] + durability['writes']}"
        )
    for k in range(service.wal.durable_count + service.wal.pending + 1):
        if k not in durable_live:
            durable_live[k] = durable_live[
                min(j for j in durable_live if j > k and j in durable_live)
            ]

    # -- the crash -----------------------------------------------------
    durable = store.wal_durable
    lost_tail = service.wal.pending
    kill = rng.randrange(durable // 2, durable + 1)
    crashed = crashed_copy(store, kill)
    print(
        f"\nCRASH: killed at durable record {kill}/{durable} "
        f"(+{lost_tail} acknowledged records in the group-commit tail are gone); "
        f"{len(store.manifests) - len(crashed.manifests)} snapshot(s) dropped "
        f"with their dead checkpoints"
    )

    # -- recovery ------------------------------------------------------
    recovered = SkylineService.open(crashed)
    recovery = recovered.recovery
    print(
        f"recovered: loaded snapshot gen {recovery['snapshot_generation']} "
        f"({recovery['snapshot_points']} points, folded to LSN {recovery['folded_lsn']}), "
        f"replayed {recovery['replayed_records']} WAL records; "
        f"recovery cost = {recovery['recovery_io']} block transfers "
        f"({recovery['snapshot_load_io']} snapshot load + "
        f"{recovery['replay_io']} WAL replay + "
        f"{recovery['rebuild_io']} index rebuild)"
    )

    if canon(recovered.live_points()) != durable_live[kill]:
        print("FAILED: recovered live set diverges from the durable prefix")
        return 1
    expected_skyline = sorted(
        (p.x, p.y)
        for p in range_skyline(
            [Point(x, y, i) for x, y, i in durable_live[kill]], RangeQuery()
        )
    )
    got_skyline = sorted((p.x, p.y) for p in recovered.skyline())
    if got_skyline != expected_skyline:
        print("FAILED: recovered skyline diverges")
        return 1

    # The recovered service serves traffic immediately.
    recovered.insert(Point(UNIVERSE + 1.0, UNIVERSE + 2.0, 999_999))
    assert recovered.delete(Point(UNIVERSE + 1.0, UNIVERSE + 2.0, 999_999))
    print(
        f"verified: {len(recovered.live_points())} live points match the durable "
        f"prefix exactly; skyline({len(got_skyline)} points) matches; "
        f"service is serving writes again"
    )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
