"""Serving many callers at once: coalescing, backpressure, live metrics.

The :class:`~repro.engine.SkylineEngine` answers one caller at a time;
:class:`~repro.serve.SkylineServer` puts an asynchronous runtime in
front of it.  This example drives one server three ways at once:

1. a pool of *sync* reader threads hammering a Zipf-skewed query mix --
   many of them ask the same question inside the same gather window, so
   the server coalesces them onto a single engine computation;
2. a *writer* thread streaming inserts down the serialized write lane;
3. an *asyncio* client awaiting the same server from a coroutine.

Afterwards it prints what the serving tier observed: throughput, latency
percentiles, coalescing fan-in, and the exact block-transfer ledger --
which still satisfies ``attributed + maintenance == total - build`` even
with every lane running concurrently.

Run with::

    PYTHONPATH=src python examples/serving_load.py
"""

from __future__ import annotations

import asyncio
import random
import threading

from repro import Point, RangeQuery
from repro.engine import SkylineEngine, UpdateRequest
from repro.serve import ServerConfig, SkylineServer
from repro.workloads import uniform_points

CLIENTS = 6
REQUESTS_PER_CLIENT = 40
UNIVERSE = 200_000


def build_engine() -> SkylineEngine:
    points = uniform_points(3000, universe=UNIVERSE, seed=11)
    return SkylineEngine.sharded(
        points[:2500], shard_count=4, block_size=16, memory_blocks=16
    )


def query_pool(rng: random.Random, size: int = 16) -> list:
    """Distinct x-bands; Zipf-ranked popularity makes collisions common."""
    pool = []
    for _ in range(size):
        lo = rng.uniform(0, UNIVERSE * 0.8)
        pool.append(RangeQuery(x_lo=lo, x_hi=lo + UNIVERSE * 0.2))
    return pool


def reader(server: SkylineServer, pool: list, seed: int, fanins: list) -> None:
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** 1.2 for rank in range(len(pool))]
    for query in rng.choices(pool, weights=weights, k=REQUESTS_PER_CLIENT):
        served = server.query(query)
        fanins.append(served.serving.coalesce_fanin)


def writer(server: SkylineServer, fresh: list) -> None:
    for point in fresh:
        server.update(UpdateRequest.insert(point))


async def async_client(server: SkylineServer) -> int:
    """The same server, awaited from a coroutine instead of a thread."""
    served = await server.aquery(RangeQuery(x_hi=UNIVERSE / 2))
    await server.ainsert(Point(UNIVERSE + 1, UNIVERSE + 1))
    return len(served)


def main() -> None:
    engine = build_engine()
    fresh = uniform_points(3000, universe=UNIVERSE, seed=11)[2500:2560]
    config = ServerConfig(gather_window=0.004, max_batch=64)

    fanins: list = []
    with SkylineServer(engine, config) as server:
        rng = random.Random(7)
        pool = query_pool(rng)
        threads = [
            threading.Thread(
                target=reader, args=(server, pool, 100 + i, fanins)
            )
            for i in range(CLIENTS)
        ]
        threads.append(threading.Thread(target=writer, args=(server, fresh)))
        for thread in threads:
            thread.start()
        async_answer = asyncio.run(async_client(server))
        for thread in threads:
            thread.join()

        status = server.describe()

    reads = CLIENTS * REQUESTS_PER_CLIENT
    stats = status["server"]
    print(f"clients             : {CLIENTS} sync readers + 1 writer + 1 asyncio")
    print(f"requests served     : {stats['served_reads']} reads, "
          f"{stats['served_writes']} writes")
    print(f"asyncio client got  : {async_answer} skyline points")
    print(f"engine calls        : {stats['read_batches']} read batches "
          f"for {reads + 1} queries (mean fan-in "
          f"{stats['mean_coalesce_fanin']})")
    shared = sum(1 for fanin in fanins if fanin > 1)
    print(f"coalescing          : {shared}/{len(fanins)} reads shared a "
          f"computation (max fan-in {max(fanins)})")
    print(f"latency (ms)        : p50 {stats['latency_p50_s'] * 1e3:.2f}  "
          f"p95 {stats['latency_p95_s'] * 1e3:.2f}  "
          f"p99 {stats['latency_p99_s'] * 1e3:.2f}")
    print(f"worker pool         : {stats['worker_pool']}")

    attributed = engine.attributed_io()
    maintenance = engine.maintenance_io()
    total = engine.io_total() - engine.build_io
    print(f"\nledger partition    : attributed {attributed} + "
          f"maintenance {maintenance} == {total} "
          f"({attributed + maintenance == total})")


if __name__ == "__main__":
    main()
