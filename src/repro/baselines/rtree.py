"""An R-tree with branch-and-bound skyline search (Papadias et al.).

This is the strongest practical baseline the paper cites for range skyline
queries in external memory: the points are packed into an R-tree with the
Sort-Tile-Recursive (STR) heuristic, and a query runs the BBS algorithm --
a best-first traversal ordered by ``mindist`` (the sum of coordinates
mirrored so that dominating corners come first) that prunes every entry
dominated by an already reported point.  BBS is I/O-heuristic: the paper
notes it "cannot guarantee better worst case query I/Os than the naive
solution", which the benchmark tables confirm on adversarial inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.columns import sort_points_by_x
from repro.core.point import Point
from repro.core.pqueue import SkipListPQ
from repro.core.queries import RangeQuery
from repro.em.storage import StorageManager


@dataclass(frozen=True)
class Rect:
    """An axis-parallel bounding rectangle."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def intersects(self, query: RangeQuery) -> bool:
        return not (
            self.x_hi < query.x_lo
            or self.x_lo > query.x_hi
            or self.y_hi < query.y_lo
            or self.y_lo > query.y_hi
        )

    def upper_right(self) -> Tuple[float, float]:
        """The corner that dominates everything inside the rectangle."""
        return (self.x_hi, self.y_hi)

    @classmethod
    def of_points(cls, points: Iterable[Point]) -> "Rect":
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(min(xs), max(xs), min(ys), max(ys))

    @classmethod
    def of_rects(cls, rects: Iterable["Rect"]) -> "Rect":
        rects = list(rects)
        return cls(
            min(r.x_lo for r in rects),
            max(r.x_hi for r in rects),
            min(r.y_lo for r in rects),
            max(r.y_hi for r in rects),
        )


@dataclass
class _RTreeNode:
    is_leaf: bool
    rect: Rect
    points: List[Point] = field(default_factory=list)
    children: List[int] = field(default_factory=list)
    child_rects: List[Rect] = field(default_factory=list)

    def record_size(self) -> int:
        return max(1, len(self.points) if self.is_leaf else len(self.children))


class RTree:
    """A static R-tree bulk-loaded with Sort-Tile-Recursive packing."""

    def __init__(self, storage: StorageManager, points: Iterable[Point]) -> None:
        self.storage = storage
        self.points = list(points)
        self.fanout = storage.block_size
        self.root_id: Optional[int] = None
        self.root_rect: Optional[Rect] = None
        if self.points:
            self.root_id, self.root_rect = self._build(self.points)

    def _build(self, points: List[Point]) -> Tuple[int, Rect]:
        block = self.storage.block_size
        slices = max(1, math.ceil(math.sqrt(math.ceil(len(points) / block))))
        ordered = sorted(points, key=lambda p: p.x)
        slice_size = math.ceil(len(ordered) / slices)
        leaves: List[Tuple[int, Rect]] = []
        for start in range(0, len(ordered), slice_size):
            strip = sorted(ordered[start : start + slice_size], key=lambda p: p.y)
            for leaf_start in range(0, len(strip), block):
                chunk = strip[leaf_start : leaf_start + block]
                rect = Rect.of_points(chunk)
                node = _RTreeNode(is_leaf=True, rect=rect, points=chunk)
                leaves.append((self.storage.create(node), rect))
        level = leaves
        while len(level) > 1:
            next_level: List[Tuple[int, Rect]] = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                rect = Rect.of_rects(r for _, r in group)
                node = _RTreeNode(
                    is_leaf=False,
                    rect=rect,
                    children=[node_id for node_id, _ in group],
                    child_rects=[r for _, r in group],
                )
                next_level.append((self.storage.create(node), rect))
            level = next_level
        return level[0]

    def block_count(self) -> int:
        """Blocks occupied by the tree."""
        if self.root_id is None:
            return 0
        count, stack = 0, [self.root_id]
        while stack:
            node = self.storage.read(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count


class RTreeBBS:
    """Branch-and-bound range skyline search over an :class:`RTree`."""

    def __init__(self, storage: StorageManager, points: Iterable[Point]) -> None:
        self.tree = RTree(storage, points)
        self.storage = storage

    def query(self, query: RangeQuery) -> List[Point]:
        """Skyline of ``P ∩ Q`` via best-first traversal with dominance pruning."""
        if self.tree.root_id is None:
            return []
        result: List[Point] = []
        queue = SkipListPQ()
        counter = 0

        def push(kind: str, payload: object, corner: Tuple[float, float]) -> None:
            nonlocal counter
            # Max-ordering on x + y of the dominating corner: entries whose
            # best possible point is most dominant are expanded first.  The
            # unique counter makes keys totally ordered, so the pooled
            # queue pops in exactly the order the old binary heap did.
            queue.push((-(corner[0] + corner[1]), counter, kind, payload))
            counter += 1

        push("node", self.tree.root_id, self.tree.root_rect.upper_right())
        while queue:
            _, _, kind, payload = queue.pop()
            if kind == "point":
                point = payload  # type: ignore[assignment]
                if not self._dominated(point, result):
                    result.append(point)
                continue
            node = self.storage.read(payload)
            if not node.rect.intersects(query):
                continue
            if self._corner_dominated(node.rect, query, result):
                continue
            if node.is_leaf:
                for point in node.points:
                    if query.contains(point) and not self._dominated(point, result):
                        push("point", point, (point.x, point.y))
            else:
                for child_id, rect in zip(node.children, node.child_rects):
                    if rect.intersects(query) and not self._corner_dominated(
                        rect, query, result
                    ):
                        push("node", child_id, rect.upper_right())
        return sort_points_by_x(result)

    def _dominated(self, point: Point, result: List[Point]) -> bool:
        return any(other.dominates(point) for other in result)

    def _corner_dominated(
        self, rect: Rect, query: RangeQuery, result: List[Point]
    ) -> bool:
        """Whether the best corner of ``rect`` (clipped to Q) is already dominated."""
        corner = Point(min(rect.x_hi, query.x_hi), min(rect.y_hi, query.y_hi))
        return any(
            other.dominates(corner) or (other.x >= corner.x and other.y >= corner.y)
            for other in result
        )

    def block_count(self) -> int:
        """Blocks occupied by the underlying R-tree."""
        return self.tree.block_count()

    def __len__(self) -> int:
        return len(self.tree.points)
