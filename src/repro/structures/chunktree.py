"""The chunk tree skeleton shared by the rank-space top-open structure.

Theorem 2 divides the x-dimension of the rank-space universe into chunks of
``lambda = B log2 U`` consecutive columns, builds a complete binary tree
over the chunks, and augments every node ``u`` with:

* ``high(u)``      -- the (at most) B highest points of the skyline of P(u);
* ``highend(u)``   -- the lowest point of ``high(u)`` when |high(u)| = B;
* ``MAX(u)``       -- the skyline of the union of ``high(v)`` over the right
                      siblings of the path from ``highend(u)``'s chunk to u;

and every leaf chunk ``z`` with, for every proper ancestor ``u``:

* ``LMAX(z, u)`` / ``RMAX(z, u)`` -- the skylines of the unions of
  ``high(v)`` over the left / right siblings of the path from z to u.

The skeleton (child pointers, chunk ranges) is kept in memory -- it is
O(U / lambda) words, asymptotically smaller than the data -- while every
point list above is stored in blocks and read through the storage manager,
so all I/O charged to queries is real.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.point import Point
from repro.core.skyline import skyline
from repro.em.storage import StorageManager

AnnotatedPoint = Tuple[Point, int]  # (point, source node id)


@dataclass
class ChunkTreeNode:
    """A node of the complete binary tree over chunks."""

    node_id: int
    level: int
    chunk_lo: int  # inclusive chunk index range covered by the subtree
    chunk_hi: int  # exclusive
    left: Optional["ChunkTreeNode"] = None
    right: Optional["ChunkTreeNode"] = None
    parent: Optional["ChunkTreeNode"] = None
    high_block: Optional[int] = None
    high_size: int = 0
    highend: Optional[Point] = None
    max_blocks: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def is_left_child(self) -> bool:
        return self.parent is not None and self.parent.left is self

    def is_right_child(self) -> bool:
        return self.parent is not None and self.parent.right is self


class BlockedPointList:
    """Helper for storing an x-sorted annotated point list in B-sized blocks."""

    def __init__(self, storage: StorageManager) -> None:
        self.storage = storage

    def write(self, points: Sequence[AnnotatedPoint]) -> List[int]:
        """Store ``points`` (sorted by x) into consecutive blocks."""
        block_size = self.storage.block_size
        block_ids: List[int] = []
        for start in range(0, len(points), block_size):
            chunk = list(points[start : start + block_size])
            block_ids.append(self.storage.create(chunk))
        return block_ids

    def read_above(
        self, block_ids: Sequence[int], y_threshold: float
    ) -> List[AnnotatedPoint]:
        """The prefix of the stored staircase with y strictly above ``y_threshold``.

        Because the list is a staircase (x increasing, y decreasing), the
        qualifying points form a prefix, so only ``O(1 + k/B)`` blocks are
        read.
        """
        result: List[AnnotatedPoint] = []
        for block_id in block_ids:
            block: List[AnnotatedPoint] = self.storage.read(block_id)
            for point, source in block:
                if point.y > y_threshold:
                    result.append((point, source))
                else:
                    return result
        return result


def build_chunk_tree(num_chunks: int) -> Tuple[ChunkTreeNode, List[ChunkTreeNode]]:
    """A complete binary tree over ``num_chunks`` leaves (padded to a power of 2).

    Returns the root and the list of leaf nodes indexed by chunk.
    """
    if num_chunks < 1:
        raise ValueError("need at least one chunk")
    leaf_count = 1 << max(0, math.ceil(math.log2(num_chunks)))
    counter = [0]

    def make(level: int, lo: int, hi: int) -> ChunkTreeNode:
        node = ChunkTreeNode(node_id=counter[0], level=level, chunk_lo=lo, chunk_hi=hi)
        counter[0] += 1
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = make(level + 1, lo, mid)
            node.right = make(level + 1, mid, hi)
            node.left.parent = node
            node.right.parent = node
        return node

    root = make(0, 0, leaf_count)
    leaves: List[ChunkTreeNode] = [None] * leaf_count  # type: ignore[list-item]

    def collect(node: ChunkTreeNode) -> None:
        if node.is_leaf:
            leaves[node.chunk_lo] = node
            return
        collect(node.left)  # type: ignore[arg-type]
        collect(node.right)  # type: ignore[arg-type]

    collect(root)
    return root, leaves[:leaf_count]


def path_to_child_of(leaf: ChunkTreeNode, ancestor: ChunkTreeNode) -> List[ChunkTreeNode]:
    """Nodes on the path from ``leaf`` up to (and including) the child of ``ancestor``."""
    path: List[ChunkTreeNode] = []
    node: Optional[ChunkTreeNode] = leaf
    while node is not None and node is not ancestor:
        path.append(node)
        node = node.parent
    if node is not ancestor:
        raise ValueError("ancestor is not actually an ancestor of leaf")
    return path


def right_siblings(path: Sequence[ChunkTreeNode]) -> List[ChunkTreeNode]:
    """Right siblings of the nodes on ``path``, ordered by increasing x-range."""
    siblings = [
        node.parent.right
        for node in path
        if node.is_left_child() and node.parent is not None and node.parent.right is not None
    ]
    return sorted(siblings, key=lambda node: node.chunk_lo)


def left_siblings(path: Sequence[ChunkTreeNode]) -> List[ChunkTreeNode]:
    """Left siblings of the nodes on ``path``, ordered by increasing x-range."""
    siblings = [
        node.parent.left
        for node in path
        if node.is_right_child() and node.parent is not None and node.parent.left is not None
    ]
    return sorted(siblings, key=lambda node: node.chunk_lo)


def lowest_common_ancestor(a: ChunkTreeNode, b: ChunkTreeNode) -> ChunkTreeNode:
    """LCA of two nodes of the chunk tree."""
    ancestors = set()
    node: Optional[ChunkTreeNode] = a
    while node is not None:
        ancestors.add(id(node))
        node = node.parent
    node = b
    while node is not None:
        if id(node) in ancestors:
            return node
        node = node.parent
    raise ValueError("nodes belong to different trees")


def annotated_skyline(
    groups: Sequence[Tuple[int, Sequence[Point]]]
) -> List[AnnotatedPoint]:
    """Skyline of the union of several ``high`` sets, keeping source labels.

    ``groups`` is a list of ``(node_id, points)``; the result is sorted by
    increasing x, each surviving point annotated with the node it came from.
    """
    source_of: Dict[Tuple[float, float], int] = {}
    union: List[Point] = []
    for node_id, points in groups:
        for point in points:
            union.append(point)
            source_of[(point.x, point.y)] = node_id
    maxima = skyline(union)
    return [(point, source_of[(point.x, point.y)]) for point in maxima]
