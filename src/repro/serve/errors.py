"""Typed serving failures, each carrying its ServingReport.

Both exceptions are *admission* outcomes, not execution errors: the
request never reached the engine.  They surface on the submission's
future (and therefore from the blocking helpers and the ``await``-side of
the async API), so a caller distinguishes "the service is saturated,
back off" (:class:`Overloaded`) from "my deadline passed while I queued"
(:class:`DeadlineExceeded`) without string matching.
"""

from __future__ import annotations

from repro.serve.report import ServingReport


class ServingError(RuntimeError):
    """Base class of serving-tier failures; carries the serving report."""

    def __init__(self, message: str, serving: ServingReport) -> None:
        super().__init__(message)
        self.serving = serving


class Overloaded(ServingError):
    """Admission control shed the submission (queue full under the
    ``shed`` policy, or the ``block`` policy's ``submit_timeout``
    expired before space freed up).  ``serving.shed`` is True."""


class DeadlineExceeded(ServingError):
    """The submission's deadline expired while it was still queued.
    ``serving.timed_out`` is True."""


class ServerClosed(RuntimeError):
    """The server is not accepting submissions (stopped or never started)."""
