"""Durability tier benchmarks: WAL amortisation and recovery cost.

Two sweeps, both charging every durability byte through the
:class:`~repro.service.durability.DurableStore`'s dedicated block-transfer
ledger so the overhead is measured in the same currency as the paper's
bounds:

1. :func:`run_wal_overhead_sweep` -- the group-commit trade-off.  With
   compaction disabled, ``U`` updates cost exactly
   ``floor(U / g) * ceil(g / B)`` WAL block writes at group-commit size
   ``g`` (the unflushed tail is acknowledged-but-volatile work a crash may
   lose), so the measured/predicted ratio must sit at 1.0 across the
   sweep and the write count must fall monotonically as ``g`` grows.

2. :func:`run_recovery_sweep` -- the snapshot-cadence trade-off.  At
   cadence ``c`` (a snapshot every ``c``-th compaction), recovery costs
   ``O(n/B)`` snapshot reads plus ``O(w/B)`` WAL-suffix reads where ``w``
   grows with ``c``: sparser snapshots write fewer blocks up front and
   replay more records after a crash.  Every recovered service is checked
   point-for-point against the clean pre-shutdown state before its row is
   recorded.

``benchmarks/bench_durability.py`` drives both (pytest or ``--quick`` CLI)
and persists the tables plus the final store counters to
``BENCH_durability.json`` via :func:`repro.bench.reporting.write_json_report`.
"""

from __future__ import annotations

import math
import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import BenchmarkTable
from repro.core.point import Point
from repro.core.queries import RangeQuery, TopOpenQuery
from repro.service import ServiceConfig, SkylineService
from repro.workloads import uniform_points

Summary = Dict[str, Dict[str, float]]


def _canon(points: Sequence[Point]) -> List[Tuple[float, float, object]]:
    return sorted((p.x, p.y, p.ident) for p in points)


def _fresh_updates(count: int, seed: int) -> List[Point]:
    """Insert payloads at coordinates disjoint from the base workload."""
    rng = random.Random(seed)
    xs = rng.sample(range(2_000_000, 2_000_000 + 20 * count), count)
    ys = rng.sample(range(2_000_000, 2_000_000 + 20 * count), count)
    return [
        Point(float(x), float(y), 1_000_000 + i)
        for i, (x, y) in enumerate(zip(xs, ys))
    ]


def run_wal_overhead_sweep(
    n: int = 2048,
    updates: int = 512,
    group_commits: Sequence[int] = (1, 4, 16, 64),
    block_size: int = 16,
    memory_blocks: int = 8,
    seed: int = 0,
) -> Tuple[BenchmarkTable, Summary]:
    """WAL block writes per ``updates`` inserts at each group-commit size.

    Compaction is disabled so the measured writes are purely the log's:
    ``floor(updates / g) * ceil(g / B)`` with a ratio of exactly 1.0.
    """
    table = BenchmarkTable(
        f"WAL group-commit amortisation -- {updates} updates, n={n}, B={block_size}"
    )
    summary: Summary = {}
    base = uniform_points(n, universe=1_000_000, seed=seed)
    payloads = _fresh_updates(updates, seed=seed + 1)
    for group in group_commits:
        service = SkylineService(
            base,
            ServiceConfig(
                shard_count=4,
                block_size=block_size,
                memory_blocks=memory_blocks,
                delta_threshold=10 * updates,
                auto_compact=False,
                durability=True,
                wal_group_commit=group,
            ),
        )
        before = service.store.stats.snapshot()
        started = time.perf_counter()
        for point in payloads:
            service.insert(point)
        elapsed = time.perf_counter() - started
        charged = service.store.stats.snapshot() - before
        flushes = updates // group
        predicted = flushes * math.ceil(group / block_size)
        summary[f"group={group}"] = {
            "wal_writes": charged.writes,
            "wal_blocks": service.store.wal_block_count(),
            "pending_lost_on_crash": service.wal.pending,
        }
        table.add(
            measured_io=charged.writes,
            predicted=float(predicted),
            seconds=elapsed,
            group_commit=group,
            updates=updates,
            wal_blocks=service.store.wal_block_count(),
            pending=service.wal.pending,
        )
    return table, summary


def run_recovery_sweep(
    n: int = 4096,
    updates: int = 480,
    snapshot_cadences: Sequence[int] = (1, 2, 4),
    block_size: int = 16,
    memory_blocks: int = 8,
    delta_threshold: int = 48,
    seed: int = 3,
) -> Tuple[BenchmarkTable, Summary]:
    """Recovery block transfers vs snapshot cadence, equivalence-checked.

    Each run drives the same insert/delete mix through a durable service,
    crashes nothing (clean shutdown: the WAL tail is flushed), reopens the
    store and records the recovery cost split into snapshot reads and
    WAL-suffix replay.  The recovered live set and a skyline probe must
    match the pre-shutdown service exactly.

    The sweep pins the legacy ``threshold-compact`` update path: its
    auto-compactions are what drive the snapshot cadence being measured
    (the leveled path checkpoints at explicit drains instead; its
    update-cost profile is benchmarked by ``bench_updates``).
    """
    table = BenchmarkTable(
        f"Recovery cost vs snapshot cadence -- n={n}, {updates} updates, "
        f"B={block_size}, delta_threshold={delta_threshold}"
    )
    summary: Summary = {}
    base = uniform_points(n, universe=1_000_000, seed=seed)
    payloads = _fresh_updates(updates, seed=seed + 1)
    probe = TopOpenQuery(0.0, 3_000_000.0, 0.0)
    for cadence in snapshot_cadences:
        # Same seed for every cadence: identical op sequences make the
        # replay/snapshot columns directly comparable across rows.
        rng = random.Random(seed + 1)
        service = SkylineService(
            base,
            ServiceConfig(
                shard_count=4,
                block_size=block_size,
                memory_blocks=memory_blocks,
                delta_threshold=delta_threshold,
                update_path="threshold-compact",
                durability=True,
                wal_group_commit=8,
                snapshot_every_compactions=cadence,
            ),
        )
        live = list(base)
        for i, point in enumerate(payloads):
            service.insert(point)
            live.append(point)
            if i % 3 == 0:
                victim = live.pop(rng.randrange(len(live)))
                assert service.delete(victim)
        service.close()  # clean shutdown
        expected_live = _canon(service.live_points())
        expected_probe = _canon(service.query(probe))

        started = time.perf_counter()
        recovered = SkylineService.open(service.store)
        recovery_seconds = time.perf_counter() - started
        recovery = recovered.recovery or {}
        if _canon(recovered.live_points()) != expected_live:
            raise AssertionError(f"recovery diverges at cadence {cadence}")
        if _canon(recovered.query(probe)) != expected_probe:
            raise AssertionError(f"recovered answers diverge at cadence {cadence}")
        summary[f"cadence={cadence}"] = {
            "snapshots": len(service.store.manifests),
            "snapshot_blocks": service.store.snapshot_block_count(),
            "replayed_records": recovery.get("replayed_records", 0),
            "snapshot_load_io": recovery.get("snapshot_load_io", 0),
            "replay_io": recovery.get("replay_io", 0),
            "rebuild_io": recovery.get("rebuild_io", 0),
            "recovery_io": recovery.get("recovery_io", 0),
        }
        table.add(
            measured_io=recovery.get("recovery_io", 0),
            seconds=recovery_seconds,
            snapshot_every=cadence,
            compactions=service.compactions,
            snapshots=len(service.store.manifests),
            snapshot_blocks=service.store.snapshot_block_count(),
            replayed_records=recovery.get("replayed_records", 0),
            snapshot_load_io=recovery.get("snapshot_load_io", 0),
            replay_io=recovery.get("replay_io", 0),
            rebuild_io=recovery.get("rebuild_io", 0),
        )
    return table, summary
